//! Typed tables with primary keys and secondary indexes.
//!
//! The web server stores user profiles, code submissions, attempts, and
//! grades (§III-B, §IV). Records are any `serde` type; the table
//! assigns `u64` primary keys and maintains instructor-defined
//! secondary indexes (e.g. submissions by `(user, lab)`), which is what
//! the roster and history views query.

use crate::codec::{decode, encode};
use parking_lot::RwLock;
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Table errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableError {
    /// Primary key not present.
    NotFound(u64),
    /// Serialization failed.
    Codec(String),
    /// Optimistic update conflict: the row changed since it was read.
    Conflict(u64),
    /// Named index does not exist.
    NoSuchIndex(String),
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::NotFound(id) => write!(f, "row {id} not found"),
            TableError::Codec(m) => write!(f, "encoding failure: {m}"),
            TableError::Conflict(id) => write!(f, "row {id} was modified concurrently"),
            TableError::NoSuchIndex(n) => write!(f, "no index named {n:?}"),
        }
    }
}

impl std::error::Error for TableError {}

type KeyFn<T> = Box<dyn Fn(&T) -> String + Send + Sync>;

struct Row {
    bytes: Vec<u8>,
    version: u64,
}

struct Index<T> {
    key_fn: KeyFn<T>,
    map: BTreeMap<String, Vec<u64>>,
}

struct Inner<T> {
    rows: HashMap<u64, Row>,
    indexes: HashMap<String, Index<T>>,
    next_id: u64,
    writes: u64,
}

/// A thread-safe typed table. Rows are stored encoded, so reads return
/// fresh decoded copies (no aliasing into the store).
pub struct Table<T> {
    inner: RwLock<Inner<T>>,
}

impl<T: Serialize + DeserializeOwned> Default for Table<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Serialize + DeserializeOwned> Table<T> {
    /// Create an empty table.
    pub fn new() -> Self {
        Table {
            inner: RwLock::new(Inner {
                rows: HashMap::new(),
                indexes: HashMap::new(),
                next_id: 1,
                writes: 0,
            }),
        }
    }

    /// Register a secondary index computed from each record. Existing
    /// rows are re-indexed.
    pub fn create_index(
        &self,
        name: impl Into<String>,
        key_fn: impl Fn(&T) -> String + Send + Sync + 'static,
    ) {
        let mut g = self.inner.write();
        let mut map: BTreeMap<String, Vec<u64>> = BTreeMap::new();
        let pairs: Vec<(u64, T)> = g
            .rows
            .iter()
            .filter_map(|(&id, row)| decode::<T>(&row.bytes).ok().map(|v| (id, v)))
            .collect();
        for (id, v) in &pairs {
            map.entry(key_fn(v)).or_default().push(*id);
        }
        for ids in map.values_mut() {
            ids.sort_unstable();
        }
        g.indexes.insert(
            name.into(),
            Index {
                key_fn: Box::new(key_fn),
                map,
            },
        );
    }

    /// Insert a record, returning its primary key.
    pub fn insert(&self, value: &T) -> Result<u64, TableError> {
        let bytes = encode(value).map_err(|e| TableError::Codec(e.0))?;
        let mut g = self.inner.write();
        let id = g.next_id;
        g.next_id += 1;
        g.writes += 1;
        g.rows.insert(id, Row { bytes, version: 1 });
        for idx in g.indexes.values_mut() {
            let key = (idx.key_fn)(value);
            let ids = idx.map.entry(key).or_default();
            ids.push(id);
            ids.sort_unstable();
        }
        Ok(id)
    }

    /// Insert a record under an explicit primary key. Used by
    /// replication snapshots, which must reproduce the primary's ids
    /// exactly; `next_id` advances past `id`. Fails on a duplicate key.
    pub fn insert_with_id(&self, id: u64, value: &T) -> Result<(), TableError> {
        let bytes = encode(value).map_err(|e| TableError::Codec(e.0))?;
        let mut g = self.inner.write();
        if g.rows.contains_key(&id) {
            return Err(TableError::Conflict(id));
        }
        g.next_id = g.next_id.max(id + 1);
        g.writes += 1;
        g.rows.insert(id, Row { bytes, version: 1 });
        for idx in g.indexes.values_mut() {
            let key = (idx.key_fn)(value);
            let ids = idx.map.entry(key).or_default();
            ids.push(id);
            ids.sort_unstable();
        }
        Ok(())
    }

    /// Fetch a record by primary key.
    pub fn get(&self, id: u64) -> Result<T, TableError> {
        let g = self.inner.read();
        let row = g.rows.get(&id).ok_or(TableError::NotFound(id))?;
        decode(&row.bytes).map_err(|e| TableError::Codec(e.0))
    }

    /// Fetch a record together with its version (for optimistic update).
    pub fn get_versioned(&self, id: u64) -> Result<(T, u64), TableError> {
        let g = self.inner.read();
        let row = g.rows.get(&id).ok_or(TableError::NotFound(id))?;
        let v = decode(&row.bytes).map_err(|e| TableError::Codec(e.0))?;
        Ok((v, row.version))
    }

    /// Unconditional update.
    pub fn update(&self, id: u64, value: &T) -> Result<(), TableError> {
        self.update_inner(id, value, None)
    }

    /// Optimistic update: fails with [`TableError::Conflict`] when the
    /// row's version no longer matches `expected_version`.
    pub fn update_if(&self, id: u64, value: &T, expected_version: u64) -> Result<(), TableError> {
        self.update_inner(id, value, Some(expected_version))
    }

    fn update_inner(&self, id: u64, value: &T, expected: Option<u64>) -> Result<(), TableError> {
        let bytes = encode(value).map_err(|e| TableError::Codec(e.0))?;
        let mut g = self.inner.write();
        // Decode the old value first for index maintenance.
        let old = {
            let row = g.rows.get(&id).ok_or(TableError::NotFound(id))?;
            if let Some(want) = expected {
                if row.version != want {
                    return Err(TableError::Conflict(id));
                }
            }
            decode::<T>(&row.bytes).map_err(|e| TableError::Codec(e.0))?
        };
        for idx in g.indexes.values_mut() {
            let old_key = (idx.key_fn)(&old);
            let new_key = (idx.key_fn)(value);
            if old_key != new_key {
                if let Some(ids) = idx.map.get_mut(&old_key) {
                    ids.retain(|&x| x != id);
                    if ids.is_empty() {
                        idx.map.remove(&old_key);
                    }
                }
                let ids = idx.map.entry(new_key).or_default();
                ids.push(id);
                ids.sort_unstable();
            }
        }
        let row = g.rows.get_mut(&id).expect("checked above");
        row.bytes = bytes;
        row.version += 1;
        g.writes += 1;
        Ok(())
    }

    /// Delete a record.
    pub fn delete(&self, id: u64) -> Result<(), TableError> {
        let mut g = self.inner.write();
        let row = g.rows.remove(&id).ok_or(TableError::NotFound(id))?;
        if let Ok(old) = decode::<T>(&row.bytes) {
            for idx in g.indexes.values_mut() {
                let key = (idx.key_fn)(&old);
                if let Some(ids) = idx.map.get_mut(&key) {
                    ids.retain(|&x| x != id);
                    if ids.is_empty() {
                        idx.map.remove(&key);
                    }
                }
            }
        }
        g.writes += 1;
        Ok(())
    }

    /// Primary keys matching an index key.
    pub fn find(&self, index: &str, key: &str) -> Result<Vec<u64>, TableError> {
        let g = self.inner.read();
        let idx = g
            .indexes
            .get(index)
            .ok_or_else(|| TableError::NoSuchIndex(index.to_string()))?;
        Ok(idx.map.get(key).cloned().unwrap_or_default())
    }

    /// All `(id, record)` pairs, ordered by id (full scan).
    pub fn scan(&self) -> Vec<(u64, T)> {
        let g = self.inner.read();
        let mut out: Vec<(u64, T)> = g
            .rows
            .iter()
            .filter_map(|(&id, row)| decode(&row.bytes).ok().map(|v| (id, v)))
            .collect();
        out.sort_by_key(|(id, _)| *id);
        out
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.inner.read().rows.len()
    }

    /// True when the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total writes performed (insert/update/delete) — replication and
    /// WAL bookkeeping.
    pub fn write_count(&self) -> u64 {
        self.inner.read().writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Submission {
        user: String,
        lab: String,
        score: f32,
    }

    fn sub(user: &str, lab: &str, score: f32) -> Submission {
        Submission {
            user: user.into(),
            lab: lab.into(),
            score,
        }
    }

    #[test]
    fn insert_get_roundtrip() {
        let t = Table::new();
        let id = t.insert(&sub("alice", "vecadd", 90.0)).unwrap();
        assert_eq!(t.get(id).unwrap(), sub("alice", "vecadd", 90.0));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn missing_row_errors() {
        let t: Table<Submission> = Table::new();
        assert_eq!(t.get(99).unwrap_err(), TableError::NotFound(99));
        assert_eq!(t.delete(99).unwrap_err(), TableError::NotFound(99));
    }

    #[test]
    fn ids_are_sequential_and_unique() {
        let t = Table::new();
        let a = t.insert(&sub("a", "l", 0.0)).unwrap();
        let b = t.insert(&sub("b", "l", 0.0)).unwrap();
        assert_ne!(a, b);
        assert!(b > a);
    }

    #[test]
    fn secondary_index_finds_rows() {
        let t = Table::new();
        t.create_index("by_user", |s: &Submission| s.user.clone());
        let a1 = t.insert(&sub("alice", "vecadd", 1.0)).unwrap();
        let _b = t.insert(&sub("bob", "vecadd", 2.0)).unwrap();
        let a2 = t.insert(&sub("alice", "matmul", 3.0)).unwrap();
        assert_eq!(t.find("by_user", "alice").unwrap(), vec![a1, a2]);
        assert_eq!(t.find("by_user", "carol").unwrap(), Vec::<u64>::new());
    }

    #[test]
    fn index_created_after_rows_backfills() {
        let t = Table::new();
        let id = t.insert(&sub("alice", "vecadd", 1.0)).unwrap();
        t.create_index("by_lab", |s: &Submission| s.lab.clone());
        assert_eq!(t.find("by_lab", "vecadd").unwrap(), vec![id]);
    }

    #[test]
    fn update_maintains_indexes() {
        let t = Table::new();
        t.create_index("by_lab", |s: &Submission| s.lab.clone());
        let id = t.insert(&sub("alice", "vecadd", 1.0)).unwrap();
        t.update(id, &sub("alice", "matmul", 1.0)).unwrap();
        assert!(t.find("by_lab", "vecadd").unwrap().is_empty());
        assert_eq!(t.find("by_lab", "matmul").unwrap(), vec![id]);
    }

    #[test]
    fn delete_maintains_indexes() {
        let t = Table::new();
        t.create_index("by_user", |s: &Submission| s.user.clone());
        let id = t.insert(&sub("alice", "vecadd", 1.0)).unwrap();
        t.delete(id).unwrap();
        assert!(t.find("by_user", "alice").unwrap().is_empty());
        assert!(t.is_empty());
    }

    #[test]
    fn optimistic_update_detects_conflicts() {
        let t = Table::new();
        let id = t.insert(&sub("alice", "vecadd", 1.0)).unwrap();
        let (_, v1) = t.get_versioned(id).unwrap();
        // A concurrent writer bumps the version.
        t.update(id, &sub("alice", "vecadd", 2.0)).unwrap();
        let r = t.update_if(id, &sub("alice", "vecadd", 3.0), v1);
        assert_eq!(r.unwrap_err(), TableError::Conflict(id));
        // Retrying with the fresh version succeeds.
        let (_, v2) = t.get_versioned(id).unwrap();
        t.update_if(id, &sub("alice", "vecadd", 3.0), v2).unwrap();
        assert_eq!(t.get(id).unwrap().score, 3.0);
    }

    #[test]
    fn scan_orders_by_id() {
        let t = Table::new();
        for i in 0..5 {
            t.insert(&sub(&format!("u{i}"), "l", i as f32)).unwrap();
        }
        let all = t.scan();
        assert_eq!(all.len(), 5);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn unknown_index_errors() {
        let t: Table<Submission> = Table::new();
        assert!(matches!(
            t.find("nope", "x"),
            Err(TableError::NoSuchIndex(_))
        ));
    }

    #[test]
    fn write_count_tracks_mutations() {
        let t = Table::new();
        let id = t.insert(&sub("a", "l", 0.0)).unwrap();
        t.update(id, &sub("a", "l", 1.0)).unwrap();
        t.delete(id).unwrap();
        assert_eq!(t.write_count(), 3);
    }

    #[test]
    fn concurrent_inserts_are_safe() {
        let t = std::sync::Arc::new(Table::new());
        t.create_index("by_user", |s: &Submission| s.user.clone());
        crossbeam_scope(&t);
        assert_eq!(t.len(), 8 * 50);
    }

    fn crossbeam_scope(t: &std::sync::Arc<Table<Submission>>) {
        let mut handles = Vec::new();
        for w in 0..8 {
            let t = std::sync::Arc::clone(t);
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    t.insert(&sub(&format!("u{w}"), &format!("l{i}"), 0.0))
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
