//! Write-ahead log and snapshots.
//!
//! Durability in the simulated database: every mutation is appended to
//! a WAL as an encoded record; a snapshot compacts the log. The WAL is
//! an in-memory byte log with the same framing it would have on disk
//! (length-prefixed entries with a sequence number and checksum), so
//! recovery and truncation-corruption behaviour are testable.

use crate::codec::{decode, encode, CodecError};
use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};

/// One framed WAL entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WalRecord<T> {
    /// Monotonic sequence number.
    pub seq: u64,
    /// The logged operation.
    pub op: T,
}

/// An append-only log of encoded operations.
#[derive(Debug, Default, Clone)]
pub struct Wal {
    frames: Vec<Vec<u8>>,
    next_seq: u64,
    /// Sequence number the latest snapshot covers (frames before it
    /// have been compacted away).
    snapshot_seq: u64,
}

impl Wal {
    /// Empty log.
    pub fn new() -> Self {
        Wal::default()
    }

    /// Append an operation; returns its sequence number.
    pub fn append<T: Serialize>(&mut self, op: &T) -> Result<u64, CodecError> {
        let seq = self.next_seq;
        let rec = WalRecord { seq, op };
        // Serialize with a tiny borrowed wrapper to avoid cloning op.
        #[derive(Serialize)]
        struct Borrowed<'a, T> {
            seq: u64,
            op: &'a T,
        }
        let bytes = encode(&Borrowed { seq, op: rec.op })?;
        let framed = frame(&bytes);
        self.frames.push(framed);
        self.next_seq += 1;
        Ok(seq)
    }

    /// Replay every entry at or after `from_seq`.
    pub fn replay<T: DeserializeOwned>(
        &self,
        from_seq: u64,
    ) -> Result<Vec<WalRecord<T>>, CodecError> {
        let mut out = Vec::new();
        for f in &self.frames {
            let bytes = unframe(f)?;
            let rec: WalRecord<T> = decode(&bytes)?;
            if rec.seq >= from_seq {
                out.push(rec);
            }
        }
        Ok(out)
    }

    /// Next sequence number to be assigned.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Sequence covered by the last snapshot.
    pub fn snapshot_seq(&self) -> u64 {
        self.snapshot_seq
    }

    /// Compact: drop entries before `through_seq` (they are captured by
    /// a snapshot taken by the caller).
    pub fn compact<T: DeserializeOwned>(&mut self, through_seq: u64) -> Result<(), CodecError> {
        let mut kept = Vec::new();
        for f in &self.frames {
            let bytes = unframe(f)?;
            let rec: WalRecord<T> = decode(&bytes)?;
            if rec.seq >= through_seq {
                kept.push(f.clone());
            }
        }
        self.frames = kept;
        self.snapshot_seq = through_seq;
        Ok(())
    }

    /// Number of live frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// True when no frames are retained.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Raw bytes as they would sit on disk (for corruption tests).
    pub fn raw_bytes(&self) -> Vec<u8> {
        self.frames.concat()
    }

    /// Recover from raw bytes, stopping cleanly at the first corrupt or
    /// truncated frame (standard WAL recovery semantics).
    pub fn recover<T: DeserializeOwned>(bytes: &[u8]) -> (Wal, Vec<WalRecord<T>>) {
        let mut frames = Vec::new();
        let mut records = Vec::new();
        let mut at = 0usize;
        let mut next_seq = 0u64;
        while at + 12 <= bytes.len() {
            let len = u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8")) as usize;
            if at + 12 + len > bytes.len() {
                break; // truncated tail
            }
            let frame_bytes = &bytes[at..at + 12 + len];
            match unframe(frame_bytes) {
                Ok(payload) => match decode::<WalRecord<T>>(&payload) {
                    Ok(rec) => {
                        next_seq = rec.seq + 1;
                        records.push(rec);
                        frames.push(frame_bytes.to_vec());
                        at += 12 + len;
                    }
                    Err(_) => break,
                },
                Err(_) => break, // checksum mismatch
            }
        }
        (
            Wal {
                frames,
                next_seq,
                snapshot_seq: 0,
            },
            records,
        )
    }
}

/// Frame: `len: u64 | crc: u32 | payload`.
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 12);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&checksum(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

fn unframe(frame: &[u8]) -> Result<Vec<u8>, CodecError> {
    if frame.len() < 12 {
        return Err(CodecError("frame too short".into()));
    }
    let len = u64::from_le_bytes(frame[..8].try_into().expect("8")) as usize;
    let crc = u32::from_le_bytes(frame[8..12].try_into().expect("4"));
    if frame.len() != 12 + len {
        return Err(CodecError("frame length mismatch".into()));
    }
    let payload = &frame[12..];
    if checksum(payload) != crc {
        return Err(CodecError("frame checksum mismatch".into()));
    }
    Ok(payload.to_vec())
}

/// FNV-1a, plenty for corruption detection in the simulation.
fn checksum(data: &[u8]) -> u32 {
    let mut h: u32 = 0x811c9dc5;
    for &b in data {
        h ^= b as u32;
        h = h.wrapping_mul(0x01000193);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq, Serialize, serde::Deserialize)]
    enum Op {
        Put(u64, String),
        Delete(u64),
    }

    #[test]
    fn append_and_replay() {
        let mut wal = Wal::new();
        wal.append(&Op::Put(1, "a".into())).unwrap();
        wal.append(&Op::Delete(1)).unwrap();
        let recs: Vec<WalRecord<Op>> = wal.replay(0).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].seq, 0);
        assert_eq!(recs[1].op, Op::Delete(1));
    }

    #[test]
    fn replay_from_offset() {
        let mut wal = Wal::new();
        for i in 0..5 {
            wal.append(&Op::Delete(i)).unwrap();
        }
        let recs: Vec<WalRecord<Op>> = wal.replay(3).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].seq, 3);
    }

    #[test]
    fn compact_drops_old_frames() {
        let mut wal = Wal::new();
        for i in 0..10 {
            wal.append(&Op::Delete(i)).unwrap();
        }
        wal.compact::<Op>(7).unwrap();
        assert_eq!(wal.len(), 3);
        assert_eq!(wal.snapshot_seq(), 7);
        let recs: Vec<WalRecord<Op>> = wal.replay(0).unwrap();
        assert_eq!(recs[0].seq, 7);
        // Sequence numbers keep increasing after compaction.
        assert_eq!(wal.append(&Op::Delete(99)).unwrap(), 10);
    }

    #[test]
    fn recovery_roundtrip() {
        let mut wal = Wal::new();
        wal.append(&Op::Put(1, "x".into())).unwrap();
        wal.append(&Op::Put(2, "y".into())).unwrap();
        let bytes = wal.raw_bytes();
        let (recovered, recs) = Wal::recover::<Op>(&bytes);
        assert_eq!(recs.len(), 2);
        assert_eq!(recovered.next_seq(), 2);
    }

    #[test]
    fn recovery_stops_at_truncation() {
        let mut wal = Wal::new();
        wal.append(&Op::Put(1, "x".into())).unwrap();
        wal.append(&Op::Put(2, "a-longer-value".into())).unwrap();
        let mut bytes = wal.raw_bytes();
        bytes.truncate(bytes.len() - 5); // torn write on the last frame
        let (_, recs) = Wal::recover::<Op>(&bytes);
        assert_eq!(recs.len(), 1, "only the intact frame survives");
        assert_eq!(recs[0].op, Op::Put(1, "x".into()));
    }

    #[test]
    fn recovery_stops_at_corruption() {
        let mut wal = Wal::new();
        wal.append(&Op::Put(1, "x".into())).unwrap();
        wal.append(&Op::Put(2, "y".into())).unwrap();
        let mut bytes = wal.raw_bytes();
        // Flip a payload byte in the first frame.
        bytes[13] ^= 0xFF;
        let (_, recs) = Wal::recover::<Op>(&bytes);
        assert!(recs.is_empty(), "corrupt first frame stops recovery");
    }

    #[test]
    fn empty_wal_recovers_empty() {
        let (wal, recs) = Wal::recover::<Op>(&[]);
        assert!(recs.is_empty());
        assert!(wal.is_empty());
        assert_eq!(wal.next_seq(), 0);
    }
}
