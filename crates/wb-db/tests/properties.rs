//! Property-based tests: codec round-trips, model-checked tables, WAL
//! recovery under arbitrary truncation.

use proptest::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use wb_db::{decode, encode, Table, Wal};

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, proptest_derive::Arbitrary)]
struct Rec {
    id: u64,
    name: String,
    score: f32,
    tags: Vec<u32>,
    parent: Option<i64>,
    kind: Kind,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, proptest_derive::Arbitrary)]
enum Kind {
    Student,
    Instructor { courses: Vec<String> },
    Bot(u8, bool),
}

proptest! {
    /// The binary codec round-trips arbitrary nested values.
    #[test]
    fn codec_roundtrips_records(rec in any::<Rec>()) {
        // NaN-free floats only: NaN != NaN breaks equality, not codec.
        prop_assume!(!rec.score.is_nan());
        let bytes = encode(&rec).unwrap();
        let back: Rec = decode(&bytes).unwrap();
        prop_assert_eq!(back, rec);
    }

    /// Collections and maps round-trip.
    #[test]
    fn codec_roundtrips_maps(m in prop::collection::btree_map(any::<String>(), any::<u64>(), 0..16)) {
        let bytes = encode(&m).unwrap();
        let back: BTreeMap<String, u64> = decode(&bytes).unwrap();
        prop_assert_eq!(back, m);
    }

    /// Decoding random garbage never panics (errors are fine).
    #[test]
    fn codec_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _: Result<Rec, _> = decode(&bytes);
        let _: Result<Vec<String>, _> = decode(&bytes);
        let _: Result<(u64, Option<bool>), _> = decode(&bytes);
    }

    /// Truncating an encoding always fails to decode (no silent
    /// partial reads).
    #[test]
    fn codec_truncation_detected(rec in any::<Rec>(), cut in 1usize..64) {
        let bytes = encode(&rec).unwrap();
        prop_assume!(cut < bytes.len());
        let r: Result<Rec, _> = decode(&bytes[..bytes.len() - cut]);
        prop_assert!(r.is_err());
    }
}

/// Model-based test: the Table agrees with a HashMap across arbitrary
/// operation sequences.
#[derive(Debug, Clone, proptest_derive::Arbitrary)]
enum Op {
    Insert(String),
    Update(u8, String),
    Delete(u8),
    Get(u8),
    Find(String),
}

proptest! {
    #[test]
    fn table_matches_model(ops in prop::collection::vec(any::<Op>(), 0..64)) {
        let table: Table<String> = Table::new();
        table.create_index("by_value", |v: &String| v.clone());
        let mut model: HashMap<u64, String> = HashMap::new();
        let mut ids: Vec<u64> = Vec::new();
        for op in ops {
            match op {
                Op::Insert(v) => {
                    let id = table.insert(&v).unwrap();
                    model.insert(id, v);
                    ids.push(id);
                }
                Op::Update(k, v) => {
                    if ids.is_empty() { continue; }
                    let id = ids[k as usize % ids.len()];
                    let expect = model.contains_key(&id);
                    let got = table.update(id, &v).is_ok();
                    prop_assert_eq!(got, expect);
                    if expect { model.insert(id, v); }
                }
                Op::Delete(k) => {
                    if ids.is_empty() { continue; }
                    let id = ids[k as usize % ids.len()];
                    let expect = model.remove(&id).is_some();
                    prop_assert_eq!(table.delete(id).is_ok(), expect);
                }
                Op::Get(k) => {
                    if ids.is_empty() { continue; }
                    let id = ids[k as usize % ids.len()];
                    match model.get(&id) {
                        Some(v) => prop_assert_eq!(&table.get(id).unwrap(), v),
                        None => prop_assert!(table.get(id).is_err()),
                    }
                }
                Op::Find(v) => {
                    let found = table.find("by_value", &v).unwrap();
                    let mut expect: Vec<u64> = model
                        .iter()
                        .filter(|(_, mv)| **mv == v)
                        .map(|(k, _)| *k)
                        .collect();
                    expect.sort_unstable();
                    prop_assert_eq!(found, expect);
                }
            }
            prop_assert_eq!(table.len(), model.len());
        }
    }

    /// WAL recovery from any truncation point yields a prefix of the
    /// appended records, never garbage.
    #[test]
    fn wal_recovery_is_a_prefix(
        values in prop::collection::vec(any::<String>(), 1..16),
        cut in 0usize..512,
    ) {
        let mut wal = Wal::new();
        for v in &values {
            wal.append(v).unwrap();
        }
        let bytes = wal.raw_bytes();
        let cut = cut.min(bytes.len());
        let (_, recs) = Wal::recover::<String>(&bytes[..bytes.len() - cut]);
        prop_assert!(recs.len() <= values.len());
        for (i, rec) in recs.iter().enumerate() {
            prop_assert_eq!(rec.seq, i as u64);
            prop_assert_eq!(&rec.op, &values[i]);
        }
        // Untruncated input recovers everything.
        if cut == 0 {
            prop_assert_eq!(recs.len(), values.len());
        }
    }
}
