//! BFS Queuing — hierarchical queuing performance effects.
//!
//! Level-synchronous breadth-first search: each iteration launches a
//! kernel that expands the current frontier into the next, appending
//! with `atomicAdd` on a queue cursor; `atomicMin` claims each vertex
//! exactly once.

use crate::common::{case, exact_check, make_lab, skeleton_banner, LabScale};
use libwb::{gen, Dataset};
use wb_server::{LabDefinition, Rubric};
use wb_worker::{DatasetCase, LabSpec};

/// Reference solution.
pub const SOLUTION: &str = r#"
__global__ void bfsLevel(int* rowPtr, int* neighbors, int* levels,
                         int* frontier, int frontierSize,
                         int* nextFrontier, int* nextSize, int depth) {
    int t = blockIdx.x * blockDim.x + threadIdx.x;
    if (t < frontierSize) {
        int u = frontier[t];
        int start = rowPtr[u];
        int end = rowPtr[u + 1];
        for (int k = start; k < end; k++) {
            int v = neighbors[k];
            // Claim v exactly once: only the thread that lowers the
            // level from INT_MAX-ish sentinel enqueues it.
            int old = atomicMin(&levels[v], depth);
            if (old > depth) {
                int slot = atomicAdd(nextSize, 1);
                nextFrontier[slot] = v;
            }
        }
    }
}

int main() {
    int numNodes; int numEdges;
    int* hostRowPtr = wbImportGraphRowPtr(0, &numNodes);
    int* hostNeighbors = wbImportGraphNeighbors(0, &numEdges);
    int* hostLevels = (int*) malloc(numNodes * sizeof(int));

    int* dRowPtr; int* dNeighbors; int* dLevels;
    int* dFrontierA; int* dFrontierB; int* dNextSize;
    cudaMalloc(&dRowPtr, (numNodes + 1) * sizeof(int));
    cudaMalloc(&dNeighbors, numEdges * sizeof(int));
    cudaMalloc(&dLevels, numNodes * sizeof(int));
    cudaMalloc(&dFrontierA, numNodes * sizeof(int));
    cudaMalloc(&dFrontierB, numNodes * sizeof(int));
    cudaMalloc(&dNextSize, sizeof(int));
    cudaMemcpy(dRowPtr, hostRowPtr, (numNodes + 1) * sizeof(int), cudaMemcpyHostToDevice);
    cudaMemcpy(dNeighbors, hostNeighbors, numEdges * sizeof(int), cudaMemcpyHostToDevice);

    // levels = "infinity" sentinel; source gets 0.
    int* hostInit = (int*) malloc(numNodes * sizeof(int));
    for (int i = 0; i < numNodes; i++) { hostInit[i] = 1000000000; }
    hostInit[0] = 0;
    cudaMemcpy(dLevels, hostInit, numNodes * sizeof(int), cudaMemcpyHostToDevice);

    // frontier = {source}
    int* hostFrontier = (int*) malloc(sizeof(int));
    hostFrontier[0] = 0;
    cudaMemcpy(dFrontierA, hostFrontier, sizeof(int), cudaMemcpyHostToDevice);

    int frontierSize = 1;
    int depth = 1;
    int* hostSize = (int*) malloc(sizeof(int));
    while (frontierSize > 0 && depth <= numNodes) {
        hostSize[0] = 0;
        cudaMemcpy(dNextSize, hostSize, sizeof(int), cudaMemcpyHostToDevice);
        bfsLevel<<<(frontierSize + 127) / 128, 128>>>(dRowPtr, dNeighbors, dLevels,
            dFrontierA, frontierSize, dFrontierB, dNextSize, depth);
        cudaMemcpy(hostSize, dNextSize, sizeof(int), cudaMemcpyDeviceToHost);
        frontierSize = hostSize[0];
        // swap frontiers
        int* tmp = dFrontierA;
        dFrontierA = dFrontierB;
        dFrontierB = tmp;
        depth = depth + 1;
    }

    cudaMemcpy(hostLevels, dLevels, numNodes * sizeof(int), cudaMemcpyDeviceToHost);
    // Unreached nodes report -1, matching the golden model.
    for (int i = 0; i < numNodes; i++) {
        if (hostLevels[i] >= 1000000000) { hostLevels[i] = -1; }
    }
    wbSolutionInt(hostLevels, numNodes);
    return 0;
}
"#;

/// Generate dataset cases. Source is always node 0; graphs are
/// generated connected so every node has a deterministic level.
pub fn datasets(scale: LabScale) -> Vec<DatasetCase> {
    let sizes = match scale {
        LabScale::Small => vec![(6usize, 0.2f64), (40, 0.05)],
        LabScale::Full => vec![(500, 0.01), (2_000, 0.002)],
    };
    sizes
        .into_iter()
        .enumerate()
        .map(|(i, (n, p))| {
            let g = gen::random_connected_graph(n, p, 0xB10 + i as u64);
            let levels = g.bfs_levels(0).expect("source 0 valid");
            case(
                &format!("d{i}"),
                vec![Dataset::Graph(g)],
                Dataset::IntVector(levels),
            )
        })
        .collect()
}

/// Build the lab.
pub fn definition(scale: LabScale) -> LabDefinition {
    let mut spec = LabSpec::cuda_test("bfs");
    spec.check = exact_check();
    // Frontier loops relaunch kernels; give a generous host budget.
    spec.limits.max_host_steps *= 2;
    make_lab(
        "bfs",
        "BFS Queuing",
        DESCRIPTION,
        &format!(
            "{}__global__ void bfsLevel(int* rowPtr, int* neighbors, int* levels,\n                         int* frontier, int frontierSize,\n                         int* nextFrontier, int* nextSize, int depth) {{\n    // TODO: expand the frontier; claim vertices with atomicMin;\n    // append to the next frontier with atomicAdd on nextSize\n}}\n\nint main() {{\n    // TODO: level loop with frontier swap\n    return 0;\n}}\n",
            skeleton_banner("BFS Queuing")
        ),
        datasets(scale),
        vec![
            "Why is atomicMin the right claim primitive here?",
            "How would a per-block queue reduce contention on nextSize?",
        ],
        spec,
        Rubric {
            compile_points: 10.0,
            dataset_points: 75.0,
            question_points: 10.0,
            keyword_points: vec![("atomicAdd".to_string(), 5.0)],
        },
    )
}

const DESCRIPTION: &str = "# BFS Queuing\n\nLevel-synchronous BFS from node 0 over a CSR graph. \
Each kernel launch expands the frontier into a queue built with `atomicAdd`; unreached nodes \
report level `-1`.\n";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::grade_solution;

    #[test]
    fn reference_solution_passes() {
        grade_solution(&definition(LabScale::Small), SOLUTION);
    }

    #[test]
    fn datasets_are_fully_reachable() {
        for case in datasets(LabScale::Small) {
            let levels = case.expected.as_int_vector().unwrap();
            assert!(levels.iter().all(|&l| l >= 0));
            assert_eq!(levels[0], 0, "source level");
        }
    }

    #[test]
    fn duplicate_enqueue_bug_still_converges_or_fails_cleanly() {
        use wb_worker::{execute_job, JobAction, JobRequest};
        // Claiming with a plain load instead of atomicMin enqueues
        // duplicates; the queue can overflow the frontier buffer, which
        // the simulator reports as an out-of-bounds error rather than
        // corrupting memory.
        let lab = definition(LabScale::Small);
        let buggy = SOLUTION.replace(
            "int old = atomicMin(&levels[v], depth);\n            if (old > depth) {",
            "int old = levels[v];\n            if (old > depth) { levels[v] = depth;",
        );
        assert_ne!(buggy, SOLUTION);
        let req = JobRequest {
            job_id: 1,
            user: "t".into(),
            source: buggy,
            spec: lab.spec.clone(),
            datasets: lab.datasets.clone(),
            action: JobAction::FullGrade,
        };
        let out = execute_job(&req, &minicuda::DeviceConfig::test_small(), 0, 0);
        assert!(out.compiled());
        // Either a wrong answer, a reported overflow, or (on the tiny
        // serialized device) a lucky pass — never a crash.
        let _ = out.passed_count();
    }
}
