//! Input Binning — and its performance effects.
//!
//! Points in `[0, 1)` are counted into 64 uniform bins with atomics —
//! the first half of the course's binning optimization story (the
//! second half, privatized histograms, is one of the questions).

use crate::common::{case, exact_check, make_lab, skeleton_banner, LabScale};
use libwb::{gen, Dataset};
use wb_server::{LabDefinition, Rubric};
use wb_worker::{DatasetCase, LabSpec};

/// Number of bins.
pub const BINS: usize = 64;

/// Reference solution.
pub const SOLUTION: &str = r#"
#define BINS 64

__global__ void bin(float* points, int* counts, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        int b = (int) (points[i] * BINS);
        if (b >= BINS) { b = BINS - 1; }
        if (b < 0) { b = 0; }
        atomicAdd(&counts[b], 1);
    }
}

int main() {
    int n;
    float* hostPoints = wbImportVector(0, &n);
    int* hostCounts = (int*) malloc(BINS * sizeof(int));

    float* dPoints; int* dCounts;
    cudaMalloc(&dPoints, n * sizeof(float));
    cudaMalloc(&dCounts, BINS * sizeof(int));
    cudaMemcpy(dPoints, hostPoints, n * sizeof(float), cudaMemcpyHostToDevice);

    bin<<<(n + 255) / 256, 256>>>(dPoints, dCounts, n);

    cudaMemcpy(hostCounts, dCounts, BINS * sizeof(int), cudaMemcpyDeviceToHost);
    wbSolutionInt(hostCounts, BINS);
    return 0;
}
"#;

/// CPU golden model.
pub fn golden(points: &[f32]) -> Vec<i32> {
    let mut counts = vec![0i32; BINS];
    for &p in points {
        let b = ((p * BINS as f32) as isize).clamp(0, BINS as isize - 1) as usize;
        counts[b] += 1;
    }
    counts
}

/// Generate dataset cases.
pub fn datasets(scale: LabScale) -> Vec<DatasetCase> {
    let sizes = match scale {
        LabScale::Small => vec![16usize, 333],
        LabScale::Full => vec![10_000usize, 100_000],
    };
    sizes
        .into_iter()
        .enumerate()
        .map(|(i, n)| {
            let points = gen::random_positive_vector(n, 0xA10 + i as u64);
            let expected = golden(&points);
            case(
                &format!("d{i}"),
                vec![Dataset::Vector(points)],
                Dataset::IntVector(expected),
            )
        })
        .collect()
}

/// Build the lab.
pub fn definition(scale: LabScale) -> LabDefinition {
    let mut spec = LabSpec::cuda_test("binning");
    spec.check = exact_check();
    make_lab(
        "binning",
        "Input Binning",
        DESCRIPTION,
        &format!(
            "{}#define BINS 64\n\n__global__ void bin(float* points, int* counts, int n) {{\n    // TODO: compute the bin and atomicAdd into it\n}}\n\nint main() {{\n    // TODO\n    return 0;\n}}\n",
            skeleton_banner("Input Binning")
        ),
        datasets(scale),
        vec![
            "How does bin skew affect atomic contention?",
            "How would a per-block privatized histogram help?",
        ],
        spec,
        Rubric {
            compile_points: 10.0,
            dataset_points: 75.0,
            question_points: 10.0,
            keyword_points: vec![("atomicAdd".to_string(), 5.0)],
        },
    )
}

const DESCRIPTION: &str = "# Input Binning\n\nCount points from `[0, 1)` into 64 uniform bins. \
Integer counts are compared **exactly** — integer atomic addition is order-independent, so your \
kernel must not lose updates.\n";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::grade_solution;

    #[test]
    fn reference_solution_passes() {
        grade_solution(&definition(LabScale::Small), SOLUTION);
    }

    #[test]
    fn golden_counts_sum_to_n() {
        let points = gen::random_positive_vector(500, 1);
        let counts = golden(&points);
        assert_eq!(counts.iter().sum::<i32>(), 500);
        assert_eq!(counts.len(), BINS);
    }

    #[test]
    fn golden_edge_values() {
        assert_eq!(golden(&[0.0])[0], 1);
        // 0.999… lands in the last bin.
        assert_eq!(golden(&[0.9999])[BINS - 1], 1);
    }
}
