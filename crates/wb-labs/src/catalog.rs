//! Course catalog — Table II of the paper.
//!
//! Maps the 15 hosted labs onto the four course offerings:
//! Heterogeneous Parallel Programming (Coursera MOOC), ECE 408 and
//! ECE 598HK at UIUC, and the PUMPS summer school at UPC Barcelona.

use serde::{Deserialize, Serialize};

/// A row of Table II.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabEntry {
    /// Catalog id.
    pub id: &'static str,
    /// Table II display name.
    pub name: &'static str,
    /// Table II description column.
    pub teaches: &'static str,
    /// Which courses use it: `[HPP, 408, 598, PUMPS]`.
    pub courses: [bool; 4],
}

/// One course offering.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Course {
    /// Short id (`hpp`, `ece408`, `ece598`, `pumps`).
    pub id: &'static str,
    /// Full name.
    pub name: &'static str,
    /// Column index in Table II.
    pub column: usize,
    /// Weeks the offering runs.
    pub weeks: u32,
    /// Whether the offering used peer review (§IV-D: only the MOOC).
    pub peer_review: bool,
    /// Typical enrollment (sets simulated cohort sizes).
    pub enrollment: u32,
}

/// The four courses of Table II.
pub fn courses() -> Vec<Course> {
    vec![
        Course {
            id: "hpp",
            name: "Heterogeneous Parallel Programming (Coursera)",
            column: 0,
            weeks: 9,
            peer_review: true,
            enrollment: 35_940,
        },
        Course {
            id: "ece408",
            name: "ECE 408 (UIUC)",
            column: 1,
            weeks: 16,
            peer_review: false,
            enrollment: 220,
        },
        Course {
            id: "ece598",
            name: "ECE 598HK (UIUC + 3 partner institutions)",
            column: 2,
            weeks: 16,
            peer_review: false,
            enrollment: 80,
        },
        Course {
            id: "pumps",
            name: "PUMPS summer school (UPC Barcelona)",
            column: 3,
            weeks: 1,
            peer_review: false,
            enrollment: 120,
        },
    ]
}

/// Look up a course.
pub fn course(id: &str) -> Option<Course> {
    courses().into_iter().find(|c| c.id == id)
}

/// The rows of Table II. Course assignments follow the paper's table:
/// intro labs run in HPP and ECE 408, advanced algorithmic labs in
/// ECE 598HK and PUMPS, and the MPI capstone in PUMPS.
pub fn table() -> Vec<LabEntry> {
    vec![
        LabEntry {
            id: "device-query",
            name: "Device Query",
            teaches: "Demo lab to introduce WebGPU to students.",
            courses: [true, true, true, true],
        },
        LabEntry {
            id: "vecadd",
            name: "Vector Addition",
            teaches: "CUDA kernels.",
            courses: [true, true, false, false],
        },
        LabEntry {
            id: "matmul",
            name: "Basic Matrix Multiplication",
            teaches: "Boundary checking and indexing.",
            courses: [true, true, false, false],
        },
        LabEntry {
            id: "tiled-matmul",
            name: "Tiled Matrix Multiplication",
            teaches: "Introduce shared memory tiling.",
            courses: [true, true, false, false],
        },
        LabEntry {
            id: "conv2d",
            name: "2D Convolution",
            teaches: "Constant memory and shared memory.",
            courses: [true, true, false, false],
        },
        LabEntry {
            id: "scan",
            name: "Reduction and Scan",
            teaches: "Floating-point, work-efficiency, tree-like structures.",
            courses: [true, true, false, false],
        },
        LabEntry {
            id: "equalization",
            name: "Image Equalization",
            teaches: "Atomic operations.",
            courses: [true, true, false, false],
        },
        LabEntry {
            id: "opencl-vecadd",
            name: "OpenCL Vector Addition",
            teaches: "OpenCL",
            courses: [true, false, false, false],
        },
        LabEntry {
            id: "scatter-gather",
            name: "Scatter to Gather",
            teaches: "Transformation between scatter and gather.",
            courses: [false, false, true, true],
        },
        LabEntry {
            id: "stencil",
            name: "Stencil",
            teaches: "Register tiling and thread-coarsening.",
            courses: [false, false, true, false],
        },
        LabEntry {
            id: "sgemm",
            name: "SGEMM",
            teaches: "Register tiling and thread-coarsening.",
            courses: [false, false, true, false],
        },
        LabEntry {
            id: "spmv",
            name: "SPMV",
            teaches: "Sparse matrix formats and performance effects.",
            courses: [false, false, true, true],
        },
        LabEntry {
            id: "binning",
            name: "Input Binning",
            teaches: "Input Binning and performance effects.",
            courses: [false, false, true, true],
        },
        LabEntry {
            id: "bfs",
            name: "BFS Queuing",
            teaches: "Hierarchical queuing performance effects.",
            courses: [false, false, true, true],
        },
        LabEntry {
            id: "mpi-stencil",
            name: "Multi-GPU Stencil with MPI",
            teaches: "Multi-GPU programming and MPI.",
            courses: [false, false, false, true],
        },
    ]
}

/// All catalog lab ids in Table II order.
pub fn lab_ids() -> Vec<&'static str> {
    table().into_iter().map(|e| e.id).collect()
}

/// Lab ids used by a course.
pub fn labs_for_course(course_id: &str) -> Vec<&'static str> {
    let Some(c) = course(course_id) else {
        return Vec::new();
    };
    table()
        .into_iter()
        .filter(|e| e.courses[c.column])
        .map(|e| e.id)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifteen_labs_four_courses() {
        assert_eq!(table().len(), 15);
        assert_eq!(courses().len(), 4);
    }

    #[test]
    fn device_query_everywhere() {
        let e = &table()[0];
        assert!(e.courses.iter().all(|&x| x));
    }

    #[test]
    fn mpi_lab_only_in_pumps() {
        let labs = labs_for_course("pumps");
        assert!(labs.contains(&"mpi-stencil"));
        assert!(!labs_for_course("hpp").contains(&"mpi-stencil"));
        assert!(!labs_for_course("ece408").contains(&"mpi-stencil"));
    }

    #[test]
    fn hpp_is_the_intro_sequence() {
        let labs = labs_for_course("hpp");
        assert!(labs.contains(&"vecadd"));
        assert!(labs.contains(&"opencl-vecadd"));
        assert!(!labs.contains(&"sgemm"));
    }

    #[test]
    fn only_the_mooc_used_peer_review() {
        assert!(course("hpp").unwrap().peer_review);
        assert!(!course("ece408").unwrap().peer_review);
        assert!(!course("ece598").unwrap().peer_review);
        assert!(!course("pumps").unwrap().peer_review);
    }

    #[test]
    fn unknown_course_is_empty() {
        assert!(labs_for_course("cs101").is_empty());
        assert!(course("cs101").is_none());
    }

    #[test]
    fn every_lab_in_at_least_one_course() {
        for e in table() {
            assert!(e.courses.iter().any(|&x| x), "{} orphaned", e.id);
        }
    }
}
