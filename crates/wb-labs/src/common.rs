//! Shared helpers for lab construction and a test harness that grades
//! reference solutions.

use libwb::{CheckPolicy, Dataset};
use wb_server::{LabDefinition, Rubric};
use wb_worker::{DatasetCase, LabSpec};

/// Dataset sizes: `Small` keeps unit tests fast; `Full` is what the
/// course and benches deploy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabScale {
    /// Tiny datasets for unit tests.
    Small,
    /// Course-sized datasets.
    Full,
}

impl LabScale {
    /// Pick a size by scale.
    pub fn pick(self, small: usize, full: usize) -> usize {
        match self {
            LabScale::Small => small,
            LabScale::Full => full,
        }
    }
}

/// Assemble a [`LabDefinition`] from the pieces every lab module
/// produces.
#[allow(clippy::too_many_arguments)]
pub fn make_lab(
    id: &str,
    title: &str,
    description_md: &str,
    skeleton: &str,
    datasets: Vec<DatasetCase>,
    questions: Vec<&str>,
    mut spec: LabSpec,
    rubric: Rubric,
) -> LabDefinition {
    spec.lab_id = id.to_string();
    LabDefinition {
        id: id.to_string(),
        title: title.to_string(),
        description_md: description_md.to_string(),
        skeleton: skeleton.to_string(),
        datasets,
        questions: questions.into_iter().map(String::from).collect(),
        spec,
        rubric,
        deadline_ms: 7 * 24 * 3600 * 1000,
    }
}

/// Build one dataset case.
pub fn case(name: &str, inputs: Vec<Dataset>, expected: Dataset) -> DatasetCase {
    DatasetCase {
        name: name.to_string(),
        inputs,
        expected,
    }
}

/// Default float tolerance for GPU labs.
pub fn float_check() -> CheckPolicy {
    CheckPolicy::default()
}

/// Exact comparison for integer labs.
pub fn exact_check() -> CheckPolicy {
    CheckPolicy::exact()
}

/// Grade a source against a lab on a small in-process worker; panics
/// with the failure report unless every dataset passes. Used by each
/// lab module's tests to prove the reference solution is correct.
#[doc(hidden)]
pub fn grade_solution(lab: &LabDefinition, source: &str) {
    use wb_worker::{execute_job, JobAction, JobRequest};
    let req = JobRequest {
        job_id: 1,
        user: "reference".into(),
        source: source.to_string(),
        spec: lab.spec.clone(),
        datasets: lab.datasets.clone(),
        action: JobAction::FullGrade,
    };
    let out = execute_job(&req, &minicuda::DeviceConfig::test_small(), 0, 0);
    assert!(
        out.compiled(),
        "reference solution for {} failed to compile: {}",
        lab.id,
        out.compile_error.unwrap_or_default()
    );
    for d in &out.datasets {
        assert!(
            d.passed(),
            "reference solution for {} failed {}: error={:?} check={:?}",
            lab.id,
            d.name,
            d.error,
            d.check.as_ref().map(|c| c.summary())
        );
    }
}

/// A skeleton banner shared by all labs (what students first see).
pub fn skeleton_banner(lab: &str) -> String {
    format!(
        "// {lab}\n// Complete the TODO sections. The wb.h support library is\n// preloaded; see the Description tab for the API you need.\n#include \"wb.h\"\n\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_picks() {
        assert_eq!(LabScale::Small.pick(4, 1024), 4);
        assert_eq!(LabScale::Full.pick(4, 1024), 1024);
    }

    #[test]
    fn make_lab_stamps_spec_id() {
        let lab = make_lab(
            "x",
            "X",
            "# x",
            "// skeleton",
            vec![],
            vec!["q1"],
            LabSpec::cuda_test("other"),
            Rubric::default(),
        );
        assert_eq!(lab.spec.lab_id, "x");
        assert_eq!(lab.questions.len(), 1);
    }
}
