//! 2D Convolution — constant memory and shared memory.
//!
//! A 5×5 mask is placed in `__constant__` memory via
//! `cudaMemcpyToSymbol`; halo cells outside the image are treated as
//! zero (the "ghost cell" convention the course uses).

use crate::common::{case, float_check, make_lab, skeleton_banner, LabScale};
use libwb::{gen, Dataset, Image};
use wb_server::{LabDefinition, Rubric};
use wb_worker::{DatasetCase, LabSpec};

/// Mask is always 5×5.
pub const MASK_DIM: usize = 5;

/// Reference solution.
pub const SOLUTION: &str = r#"
#define MASK_DIM 5
#define MASK_RADIUS 2

__constant__ float mask[25];

__global__ void conv2d(float* in, float* out, int width, int height) {
    int col = blockIdx.x * blockDim.x + threadIdx.x;
    int row = blockIdx.y * blockDim.y + threadIdx.y;
    if (col < width && row < height) {
        float acc = 0.0;
        for (int my = 0; my < MASK_DIM; my++) {
            for (int mx = 0; mx < MASK_DIM; mx++) {
                int y = row + my - MASK_RADIUS;
                int x = col + mx - MASK_RADIUS;
                if (x >= 0 && x < width && y >= 0 && y < height) {
                    acc += in[y * width + x] * mask[my * MASK_DIM + mx];
                }
            }
        }
        out[row * width + col] = acc;
    }
}

int main() {
    int width; int height; int channels;
    float* hostIn = wbImportImage(0, &width, &height, &channels);
    int maskRows; int maskCols;
    float* hostMask = wbImportMatrix(1, &maskRows, &maskCols);
    float* hostOut = (float*) malloc(width * height * sizeof(float));

    cudaMemcpyToSymbol(mask, hostMask, 25 * sizeof(float));

    float* dIn; float* dOut;
    cudaMalloc(&dIn, width * height * sizeof(float));
    cudaMalloc(&dOut, width * height * sizeof(float));
    cudaMemcpy(dIn, hostIn, width * height * sizeof(float), cudaMemcpyHostToDevice);

    conv2d<<<dim3((width + 15) / 16, (height + 15) / 16), dim3(16, 16)>>>(dIn, dOut, width, height);

    cudaMemcpy(hostOut, dOut, width * height * sizeof(float), cudaMemcpyDeviceToHost);
    wbSolutionImage(hostOut, width, height, 1);
    return 0;
}
"#;

/// CPU golden model (zero ghost cells).
pub fn golden(img: &Image, mask: &[f32]) -> Image {
    let (w, h) = (img.width(), img.height());
    let r = MASK_DIM as isize / 2;
    let mut out = Image::zeros(w, h, 1);
    for y in 0..h as isize {
        for x in 0..w as isize {
            let mut acc = 0.0f32;
            for my in 0..MASK_DIM as isize {
                for mx in 0..MASK_DIM as isize {
                    let sy = y + my - r;
                    let sx = x + mx - r;
                    if sx >= 0 && sx < w as isize && sy >= 0 && sy < h as isize {
                        acc += img.at(sx as usize, sy as usize, 0)
                            * mask[(my * MASK_DIM as isize + mx) as usize];
                    }
                }
            }
            out.set(x as usize, y as usize, 0, acc);
        }
    }
    out
}

/// Generate dataset cases.
pub fn datasets(scale: LabScale) -> Vec<DatasetCase> {
    let shapes = match scale {
        LabScale::Small => vec![(6usize, 5usize), (16, 9)],
        LabScale::Full => vec![(64, 64), (101, 67)],
    };
    shapes
        .into_iter()
        .enumerate()
        .map(|(i, (w, h))| {
            let img = gen::random_image(w, h, 1, 0xC0 + i as u64);
            let mask = gen::random_matrix(MASK_DIM, MASK_DIM, 0xD0 + i as u64);
            let out = golden(&img, &mask);
            case(
                &format!("d{i}"),
                vec![
                    Dataset::Image(img),
                    Dataset::Matrix {
                        rows: MASK_DIM,
                        cols: MASK_DIM,
                        data: mask,
                    },
                ],
                Dataset::Image(out),
            )
        })
        .collect()
}

/// Build the lab.
pub fn definition(scale: LabScale) -> LabDefinition {
    let mut spec = LabSpec::cuda_test("conv2d");
    spec.check = float_check();
    make_lab(
        "conv2d",
        "2D Convolution",
        DESCRIPTION,
        &format!(
            "{}#define MASK_DIM 5\n__constant__ float mask[25];\n\n__global__ void conv2d(float* in, float* out, int width, int height) {{\n    // TODO: accumulate the 5x5 neighborhood; outside pixels are 0\n}}\n\nint main() {{\n    // TODO: import image + mask, cudaMemcpyToSymbol, launch\n    return 0;\n}}\n",
            skeleton_banner("2D Convolution")
        ),
        datasets(scale),
        vec![
            "Why is the mask a good fit for constant memory?",
            "How would shared-memory tiling change the number of global loads?",
        ],
        spec,
        Rubric {
            compile_points: 10.0,
            dataset_points: 75.0,
            question_points: 10.0,
            keyword_points: vec![("__constant__".to_string(), 5.0)],
        },
    )
}

const DESCRIPTION: &str =
    "# 2D Convolution\n\nConvolve a grayscale image with a 5×5 mask.\n\n- the \
mask lives in `__constant__` memory; fill it with `cudaMemcpyToSymbol`\n- pixels outside the image \
are **zero** (ghost cells)\n- submit with `wbSolutionImage(out, width, height, 1)`\n";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::grade_solution;

    #[test]
    fn reference_solution_passes() {
        grade_solution(&definition(LabScale::Small), SOLUTION);
    }

    #[test]
    fn golden_identity_mask() {
        let img = gen::random_image(4, 3, 1, 7);
        let mut mask = vec![0.0f32; 25];
        mask[12] = 1.0; // center
        let out = golden(&img, &mask);
        assert_eq!(out.data(), img.data());
    }

    #[test]
    fn golden_ghost_cells_are_zero() {
        // An all-ones mask over an all-ones 3x3 image sums the whole
        // image from every position (the 5x5 window covers it all).
        let img = Image::from_data(3, 3, 1, vec![1.0; 9]).unwrap();
        let mask = vec![1.0f32; 25];
        let out = golden(&img, &mask);
        assert_eq!(out.at(0, 0, 0), 9.0);
        assert_eq!(out.at(1, 1, 0), 9.0);
    }

    #[test]
    fn missing_ghost_check_fails() {
        use wb_worker::{execute_job, JobAction, JobRequest};
        let lab = definition(LabScale::Small);
        let buggy = SOLUTION.replace("if (x >= 0 && x < width && y >= 0 && y < height)", "if (1)");
        assert_ne!(buggy, SOLUTION, "replacement must apply");
        let req = JobRequest {
            job_id: 1,
            user: "t".into(),
            source: buggy,
            spec: lab.spec.clone(),
            datasets: lab.datasets.clone(),
            action: JobAction::FullGrade,
        };
        let out = execute_job(&req, &minicuda::DeviceConfig::test_small(), 0, 0);
        // Without the bounds check the kernel reads out of bounds.
        assert!(out.datasets.iter().any(|d| d.error.is_some()));
    }
}
