//! Device Query — the demo lab that introduces WebGPU to students.
//!
//! Used by every course in Table II. The program queries the device
//! count, logs it, and submits it as the solution, proving the student
//! can edit, compile, run, and submit.

use crate::common::{case, exact_check, make_lab, skeleton_banner, LabScale};
use libwb::Dataset;
use wb_server::{LabDefinition, Rubric};
use wb_worker::LabSpec;

/// Reference solution.
pub const SOLUTION: &str = r#"
int main() {
    int deviceCount;
    cudaGetDeviceCount(&deviceCount);
    wbLog(TRACE, "There is", deviceCount, "device supporting CUDA");
    wbLog(TRACE, "Device 0 name: SimGPU");
    wbLog(TRACE, "Computational capabilities: simulated");
    wbSolutionScalar(deviceCount);
    return 0;
}
"#;

/// Build the lab.
pub fn definition(_scale: LabScale) -> LabDefinition {
    let datasets = vec![case("d0", vec![], Dataset::Scalar(1.0))];
    let mut spec = LabSpec::cuda_test("device-query");
    spec.check = exact_check();
    make_lab(
        "device-query",
        "Device Query",
        DESCRIPTION,
        &format!(
            "{}int main() {{\n    int deviceCount;\n    // TODO: query the device count and log it\n    wbSolutionScalar(deviceCount);\n    return 0;\n}}\n",
            skeleton_banner("Device Query")
        ),
        datasets,
        vec!["How many devices does the worker node expose?"],
        spec,
        Rubric {
            compile_points: 50.0,
            dataset_points: 40.0,
            question_points: 10.0,
            keyword_points: vec![],
        },
    )
}

const DESCRIPTION: &str =
    "# Device Query\n\nThis demo lab walks you through the WebGPU workflow: edit the code, \
compile it, run it against the dataset, and submit.\n\n\
Use `cudaGetDeviceCount(&count)` to query the number of GPUs and submit it \
with `wbSolutionScalar`.\n";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::grade_solution;

    #[test]
    fn reference_solution_passes() {
        grade_solution(&definition(LabScale::Small), SOLUTION);
    }

    #[test]
    fn skeleton_compiles_but_fails() {
        // The skeleton submits an uninitialized count (0); it should
        // compile yet not pass the dataset — students must do work.
        use wb_worker::{execute_job, JobAction, JobRequest};
        let lab = definition(LabScale::Small);
        let req = JobRequest {
            job_id: 1,
            user: "t".into(),
            source: lab.skeleton.clone(),
            spec: lab.spec.clone(),
            datasets: lab.datasets.clone(),
            action: JobAction::FullGrade,
        };
        let out = execute_job(&req, &minicuda::DeviceConfig::test_small(), 0, 0);
        assert!(out.compiled(), "{:?}", out.compile_error);
        assert_eq!(out.passed_count(), 0);
    }
}
