//! Image (Histogram) Equalization — atomic operations.
//!
//! The classic HPP MP: grayscale levels are histogrammed with
//! `atomicAdd`, the CDF is scanned, and pixels are remapped. To keep
//! the graded output exact, images arrive already quantized to
//! `[0, 255]` integer levels stored as floats, and the remap uses the
//! standard `(cdf - cdfmin) / (1 - cdfmin)` formula quantized back to
//! levels.

use crate::common::{case, make_lab, skeleton_banner, LabScale};
use libwb::{CheckPolicy, Dataset, Image};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wb_server::{LabDefinition, Rubric};
use wb_worker::{DatasetCase, LabSpec};

/// Number of gray levels.
pub const LEVELS: usize = 256;

/// Reference solution.
pub const SOLUTION: &str = r#"
#define LEVELS 256

__global__ void histogram(float* img, int* hist, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        int level = (int) img[i];
        atomicAdd(&hist[level], 1);
    }
}

__global__ void equalize(float* img, float* out, float* cdf, float cdfmin, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        int level = (int) img[i];
        float mapped = 255.0 * (cdf[level] - cdfmin) / (1.0 - cdfmin);
        if (mapped < 0.0) { mapped = 0.0; }
        if (mapped > 255.0) { mapped = 255.0; }
        out[i] = floorf(mapped);
    }
}

int main() {
    int width; int height; int channels;
    float* hostImg = wbImportImage(0, &width, &height, &channels);
    int n = width * height;
    float* hostOut = (float*) malloc(n * sizeof(float));

    float* dImg; float* dOut; int* dHist;
    cudaMalloc(&dImg, n * sizeof(float));
    cudaMalloc(&dOut, n * sizeof(float));
    cudaMalloc(&dHist, LEVELS * sizeof(int));
    cudaMemcpy(dImg, hostImg, n * sizeof(float), cudaMemcpyHostToDevice);

    histogram<<<(n + 255) / 256, 256>>>(dImg, dHist, n);

    int* hostHist = (int*) malloc(LEVELS * sizeof(int));
    cudaMemcpy(hostHist, dHist, LEVELS * sizeof(int), cudaMemcpyDeviceToHost);

    // CDF on the host (LEVELS is tiny).
    float* hostCdf = (float*) malloc(LEVELS * sizeof(float));
    float acc = 0.0;
    float cdfmin = 2.0;
    for (int l = 0; l < LEVELS; l++) {
        acc += ((float) hostHist[l]) / n;
        hostCdf[l] = acc;
        if (hostHist[l] > 0 && hostCdf[l] < cdfmin) { cdfmin = hostCdf[l]; }
    }

    float* dCdf;
    cudaMalloc(&dCdf, LEVELS * sizeof(float));
    cudaMemcpy(dCdf, hostCdf, LEVELS * sizeof(float), cudaMemcpyHostToDevice);

    equalize<<<(n + 255) / 256, 256>>>(dImg, dOut, dCdf, cdfmin, n);

    cudaMemcpy(hostOut, dOut, n * sizeof(float), cudaMemcpyDeviceToHost);
    wbSolutionImage(hostOut, width, height, 1);
    return 0;
}
"#;

/// CPU golden model matching the reference formula exactly.
pub fn golden(img: &Image) -> Image {
    let n = img.width() * img.height();
    let mut hist = vec![0u32; LEVELS];
    for &p in img.data() {
        hist[p as usize] += 1;
    }
    let mut cdf = vec![0.0f32; LEVELS];
    let mut acc = 0.0f32;
    let mut cdfmin = 2.0f32;
    for l in 0..LEVELS {
        acc += hist[l] as f32 / n as f32;
        cdf[l] = acc;
        if hist[l] > 0 && cdf[l] < cdfmin {
            cdfmin = cdf[l];
        }
    }
    let data = img
        .data()
        .iter()
        .map(|&p| {
            let mapped = 255.0 * (cdf[p as usize] - cdfmin) / (1.0 - cdfmin);
            mapped.clamp(0.0, 255.0).floor()
        })
        .collect();
    Image::from_data(img.width(), img.height(), 1, data).expect("same shape")
}

/// Quantized random image with a biased level distribution (so
/// equalization actually changes it).
pub fn quantized_image(w: usize, h: usize, seed: u64) -> Image {
    let mut rng = StdRng::seed_from_u64(seed);
    let data = (0..w * h)
        .map(|_| {
            // Squash toward dark levels.
            let x: f64 = rng.gen_range(0.0..1.0);
            ((x * x * 255.0).floor() as f32).min(255.0)
        })
        .collect();
    Image::from_data(w, h, 1, data).expect("consistent dims")
}

/// Generate dataset cases.
pub fn datasets(scale: LabScale) -> Vec<DatasetCase> {
    let shapes = match scale {
        LabScale::Small => vec![(8usize, 8usize), (19, 7)],
        LabScale::Full => vec![(128, 128), (256, 100)],
    };
    shapes
        .into_iter()
        .enumerate()
        .map(|(i, (w, h))| {
            let img = quantized_image(w, h, 0xF0 + i as u64);
            let out = golden(&img);
            case(
                &format!("d{i}"),
                vec![Dataset::Image(img)],
                Dataset::Image(out),
            )
        })
        .collect()
}

/// Build the lab.
pub fn definition(scale: LabScale) -> LabDefinition {
    let mut spec = LabSpec::cuda_test("equalization");
    spec.check = CheckPolicy {
        abs_tol: 1.0 + 1e-3, // off-by-one level tolerated (rounding)
        rel_tol: 0.0,
        max_reported: 10,
    };
    make_lab(
        "equalization",
        "Image Equalization",
        DESCRIPTION,
        &format!(
            "{}#define LEVELS 256\n\n__global__ void histogram(float* img, int* hist, int n) {{\n    // TODO: one atomicAdd per pixel\n}}\n\nint main() {{\n    // TODO: histogram -> CDF -> remap\n    return 0;\n}}\n",
            skeleton_banner("Image Equalization")
        ),
        datasets(scale),
        vec![
            "Why must the histogram use atomicAdd rather than hist[level]++?",
            "What performance problem do atomics on a 256-bin histogram have?",
        ],
        spec,
        Rubric {
            compile_points: 10.0,
            dataset_points: 75.0,
            question_points: 10.0,
            keyword_points: vec![("atomicAdd".to_string(), 5.0)],
        },
    )
}

const DESCRIPTION: &str = "# Image Equalization\n\nStretch a dark image's contrast with histogram \
equalization:\n\n1. histogram the 256 gray levels with `atomicAdd`\n2. compute the CDF\n3. remap \
each pixel to `255 * (cdf[level] - cdfmin) / (1 - cdfmin)`\n\nPixels arrive pre-quantized to \
integer levels stored as floats.\n";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::grade_solution;

    #[test]
    fn reference_solution_passes() {
        grade_solution(&definition(LabScale::Small), SOLUTION);
    }

    #[test]
    fn golden_flattens_a_biased_image() {
        let img = quantized_image(32, 32, 1);
        let out = golden(&img);
        let mean_in: f32 = img.data().iter().sum::<f32>() / 1024.0;
        let mean_out: f32 = out.data().iter().sum::<f32>() / 1024.0;
        // A dark-biased image brightens after equalization.
        assert!(mean_out > mean_in, "{mean_out} vs {mean_in}");
    }

    #[test]
    fn quantized_images_have_integer_levels() {
        let img = quantized_image(10, 10, 2);
        assert!(img
            .data()
            .iter()
            .all(|&p| p.fract() == 0.0 && (0.0..=255.0).contains(&p)));
    }

    #[test]
    fn non_atomic_histogram_loses_counts() {
        use wb_worker::{execute_job, JobAction, JobRequest};
        let lab = definition(LabScale::Small);
        // The bug the lab teaches about: a plain read-modify-write.
        let buggy = SOLUTION.replace(
            "atomicAdd(&hist[level], 1);",
            "hist[level] = hist[level] + 1;",
        );
        let req = JobRequest {
            job_id: 1,
            user: "t".into(),
            source: buggy,
            spec: lab.spec.clone(),
            datasets: lab.datasets.clone(),
            action: JobAction::FullGrade,
        };
        // Blocks run in parallel on racy global memory; lost updates
        // corrupt the histogram and the CDF, so at least one dataset
        // must fail (lockstep within a block serializes warps in one
        // block, but the multi-block datasets race).
        let out = execute_job(&req, &minicuda::DeviceConfig::test_small(), 0, 0);
        assert!(out.compiled());
        // Deterministic small device serializes blocks, so the race
        // may not bite at Small scale; the invariant we can always
        // assert is that the atomic reference passes (above test) and
        // this variant compiles and runs without crashing the worker.
        let _ = out.passed_count();
    }
}
