//! `wb-labs` — the WebGPU-hosted lab catalog (Table II).
//!
//! Every lab the paper lists is implemented end-to-end:
//!
//! | Lab | Module | Teaches |
//! |---|---|---|
//! | Device Query | [`device_query`] | introducing WebGPU |
//! | Vector Addition | [`vecadd`] | CUDA kernels |
//! | Basic Matrix Multiplication | [`matmul`] | boundary checking, indexing |
//! | Tiled Matrix Multiplication | [`tiled_matmul`] | shared-memory tiling |
//! | 2D Convolution | [`conv2d`] | constant + shared memory |
//! | Reduction and Scan | [`scan`] | work efficiency, tree structures |
//! | Image Equalization | [`equalization`] | atomic operations |
//! | OpenCL Vector Addition | [`opencl_vecadd`] | OpenCL |
//! | Scatter to Gather | [`scatter_gather`] | access-pattern transformation |
//! | Stencil | [`stencil`] | register tiling, thread coarsening |
//! | SGEMM | [`sgemm`] | register tiling, coarsening |
//! | SPMV | [`spmv`] | sparse formats |
//! | Input Binning | [`binning`] | binning and its performance |
//! | BFS Queuing | [`bfs`] | hierarchical queuing |
//! | Multi-GPU Stencil with MPI | [`mpi_stencil`] | multi-GPU + MPI |
//!
//! Each module provides `definition(scale)` — a deployable
//! [`wb_server::LabDefinition`] with generated datasets — and
//! `solution()`, the instructor reference solution in minicuda source,
//! which the tests compile and grade to 100%.
//!
//! [`catalog`] maps labs onto the four courses of Table II.

pub mod bfs;
pub mod binning;
pub mod catalog;
pub mod common;
pub mod conv2d;
pub mod device_query;
pub mod equalization;
pub mod matmul;
pub mod mpi_stencil;
pub mod opencl_vecadd;
pub mod scan;
pub mod scatter_gather;
pub mod sgemm;
pub mod spmv;
pub mod stencil;
pub mod tiled_matmul;
pub mod vecadd;

pub use catalog::{course, courses, lab_ids, Course, LabEntry};
pub use common::LabScale;

use wb_server::LabDefinition;

/// Build a lab by catalog id.
pub fn definition(lab_id: &str, scale: LabScale) -> Option<LabDefinition> {
    Some(match lab_id {
        "device-query" => device_query::definition(scale),
        "vecadd" => vecadd::definition(scale),
        "matmul" => matmul::definition(scale),
        "tiled-matmul" => tiled_matmul::definition(scale),
        "conv2d" => conv2d::definition(scale),
        "scan" => scan::definition(scale),
        "equalization" => equalization::definition(scale),
        "opencl-vecadd" => opencl_vecadd::definition(scale),
        "scatter-gather" => scatter_gather::definition(scale),
        "stencil" => stencil::definition(scale),
        "sgemm" => sgemm::definition(scale),
        "spmv" => spmv::definition(scale),
        "binning" => binning::definition(scale),
        "bfs" => bfs::definition(scale),
        "mpi-stencil" => mpi_stencil::definition(scale),
        _ => return None,
    })
}

/// Reference solution source by catalog id.
pub fn solution(lab_id: &str) -> Option<&'static str> {
    Some(match lab_id {
        "device-query" => device_query::SOLUTION,
        "vecadd" => vecadd::SOLUTION,
        "matmul" => matmul::SOLUTION,
        "tiled-matmul" => tiled_matmul::SOLUTION,
        "conv2d" => conv2d::SOLUTION,
        "scan" => scan::SOLUTION,
        "equalization" => equalization::SOLUTION,
        "opencl-vecadd" => opencl_vecadd::SOLUTION,
        "scatter-gather" => scatter_gather::SOLUTION,
        "stencil" => stencil::SOLUTION,
        "sgemm" => sgemm::SOLUTION,
        "spmv" => spmv::SOLUTION,
        "binning" => binning::SOLUTION,
        "bfs" => bfs::SOLUTION,
        "mpi-stencil" => mpi_stencil::SOLUTION,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_catalog_id_resolves() {
        for id in lab_ids() {
            assert!(definition(id, LabScale::Small).is_some(), "missing {id}");
            assert!(solution(id).is_some(), "missing solution for {id}");
        }
        assert!(definition("no-such-lab", LabScale::Small).is_none());
        assert!(solution("no-such-lab").is_none());
    }
}
