//! Basic Matrix Multiplication — boundary checking and 2-D indexing.

use crate::common::{case, float_check, make_lab, skeleton_banner, LabScale};
use libwb::{gen, Dataset};
use wb_server::{LabDefinition, Rubric};
use wb_worker::{DatasetCase, LabSpec};

/// Reference solution: one thread per output element.
pub const SOLUTION: &str = r#"
__global__ void matMul(float* A, float* B, float* C, int m, int k, int n) {
    int row = blockIdx.y * blockDim.y + threadIdx.y;
    int col = blockIdx.x * blockDim.x + threadIdx.x;
    if (row < m && col < n) {
        float acc = 0.0;
        for (int t = 0; t < k; t++) {
            acc += A[row * k + t] * B[t * n + col];
        }
        C[row * n + col] = acc;
    }
}

int main() {
    int m; int kDim; int k2; int n;
    float* hostA = wbImportMatrix(0, &m, &kDim);
    float* hostB = wbImportMatrix(1, &k2, &n);
    float* hostC = (float*) malloc(m * n * sizeof(float));

    float* dA; float* dB; float* dC;
    cudaMalloc(&dA, m * kDim * sizeof(float));
    cudaMalloc(&dB, kDim * n * sizeof(float));
    cudaMalloc(&dC, m * n * sizeof(float));
    cudaMemcpy(dA, hostA, m * kDim * sizeof(float), cudaMemcpyHostToDevice);
    cudaMemcpy(dB, hostB, kDim * n * sizeof(float), cudaMemcpyHostToDevice);

    matMul<<<dim3((n + 15) / 16, (m + 15) / 16), dim3(16, 16)>>>(dA, dB, dC, m, kDim, n);

    cudaMemcpy(hostC, dC, m * n * sizeof(float), cudaMemcpyDeviceToHost);
    wbSolutionMatrix(hostC, m, n);
    return 0;
}
"#;

/// CPU golden model shared with the tiled and SGEMM labs.
pub fn golden(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
    let mut c = vec![0.0f32; m * n];
    for i in 0..m {
        for t in 0..k {
            let av = a[i * k + t];
            for j in 0..n {
                c[i * n + j] += av * b[t * n + j];
            }
        }
    }
    c
}

/// Dataset cases: rectangular shapes that are not tile multiples.
pub fn datasets(scale: LabScale, seed: u64) -> Vec<DatasetCase> {
    let shapes: Vec<(usize, usize, usize)> = match scale {
        LabScale::Small => vec![(3, 4, 5), (17, 9, 11)],
        LabScale::Full => vec![(16, 16, 16), (65, 33, 17), (128, 100, 96)],
    };
    shapes
        .into_iter()
        .enumerate()
        .map(|(idx, (m, k, n))| {
            let a = gen::random_matrix(m, k, seed + idx as u64 * 2);
            let b = gen::random_matrix(k, n, seed + idx as u64 * 2 + 1);
            let c = golden(m, k, n, &a, &b);
            case(
                &format!("d{idx}"),
                vec![
                    Dataset::Matrix {
                        rows: m,
                        cols: k,
                        data: a,
                    },
                    Dataset::Matrix {
                        rows: k,
                        cols: n,
                        data: b,
                    },
                ],
                Dataset::Matrix {
                    rows: m,
                    cols: n,
                    data: c,
                },
            )
        })
        .collect()
}

/// Build the lab.
pub fn definition(scale: LabScale) -> LabDefinition {
    let mut spec = LabSpec::cuda_test("matmul");
    spec.check = float_check();
    make_lab(
        "matmul",
        "Basic Matrix Multiplication",
        DESCRIPTION,
        &format!(
            "{}__global__ void matMul(float* A, float* B, float* C, int m, int k, int n) {{\n    // TODO: one thread per output element; check both boundaries\n}}\n\nint main() {{\n    int m; int k; int k2; int n;\n    float* hostA = wbImportMatrix(0, &m, &k);\n    float* hostB = wbImportMatrix(1, &k2, &n);\n    float* hostC = (float*) malloc(m * n * sizeof(float));\n    // TODO\n    wbSolutionMatrix(hostC, m, n);\n    return 0;\n}}\n",
            skeleton_banner("Basic Matrix Multiplication")
        ),
        datasets(scale, 0x1234),
        vec![
            "What is the arithmetic intensity (flops per byte) of your kernel?",
            "Which matrix is accessed with a stride, A or B?",
        ],
        spec,
        Rubric::default(),
    )
}

const DESCRIPTION: &str =
    "# Basic Matrix Multiplication\n\nCompute `C = A × B` with one thread per \
output element.\n\n- `A` is `m × k`, `B` is `k × n`, `C` is `m × n`, all row-major\n- launch a 2-D \
grid of 2-D blocks\n- **check both the row and column boundary** — the datasets are not multiples \
of the block size\n";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::grade_solution;

    #[test]
    fn reference_solution_passes() {
        grade_solution(&definition(LabScale::Small), SOLUTION);
    }

    #[test]
    fn golden_model_small_case() {
        // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
        let c = golden(2, 2, 2, &[1.0, 2.0, 3.0, 4.0], &[5.0, 6.0, 7.0, 8.0]);
        assert_eq!(c, vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn swapped_index_bug_caught() {
        use wb_worker::{execute_job, JobAction, JobRequest};
        let lab = definition(LabScale::Small);
        // The classic bug: C[col * n + row].
        let buggy = SOLUTION.replace("C[row * n + col] = acc;", "C[col * m + row] = acc;");
        let req = JobRequest {
            job_id: 1,
            user: "t".into(),
            source: buggy,
            spec: lab.spec.clone(),
            datasets: lab.datasets.clone(),
            action: JobAction::FullGrade,
        };
        let out = execute_job(&req, &minicuda::DeviceConfig::test_small(), 0, 0);
        assert_eq!(out.passed_count(), 0, "rectangular datasets expose it");
    }
}
