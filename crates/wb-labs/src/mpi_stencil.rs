//! Multi-GPU Stencil with MPI — the capstone PUMPS lab.
//!
//! Two ranks, each with its own simulated GPU, split a vector in half,
//! exchange one-element halos over the MPI layer, run a 3-point
//! stencil on their half, and gather the result on rank 0.

use crate::common::{case, float_check, make_lab, skeleton_banner, LabScale};
use libwb::{gen, Dataset};
use wb_sandbox::SyscallWhitelist;
use wb_server::{LabDefinition, Rubric};
use wb_worker::{DatasetCase, LabSpec};

/// 3-point stencil coefficients.
pub const COEFFS: [f32; 3] = [0.25, 0.5, 0.25];

/// Reference solution (world size 2).
pub const SOLUTION: &str = r#"
__global__ void stencil3(float* in, float* out, int n) {
    // in has a halo cell on each side: in[1..n+1] are this rank's
    // elements, in[0] and in[n+1] are the halos.
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        out[i] = 0.25 * in[i] + 0.5 * in[i + 1] + 0.25 * in[i + 2];
    }
}

int main() {
    int rank = wbMPI_rank();
    int n;
    float* hostFull = wbImportVector(0, &n);
    int half = n / 2;
    int mine = (rank == 0) ? half : (n - half);
    int offset = (rank == 0) ? 0 : half;

    // Local buffer with two halo cells.
    float* hostLocal = (float*) malloc((mine + 2) * sizeof(float));
    for (int i = 0; i < mine; i++) { hostLocal[i + 1] = hostFull[offset + i]; }

    // Boundary halos clamp to the edge value; interior halos are
    // exchanged with the neighbor rank.
    float* sendBuf = (float*) malloc(sizeof(float));
    float* recvBuf = (float*) malloc(sizeof(float));
    if (rank == 0) {
        hostLocal[0] = hostFull[0];
        sendBuf[0] = hostLocal[mine];        // my last element
        wbMPI_sendFloat(1, sendBuf, 1);
        wbMPI_recvFloat(1, recvBuf, 1);
        hostLocal[mine + 1] = recvBuf[0];
    } else {
        hostLocal[mine + 1] = hostFull[n - 1];
        wbMPI_recvFloat(0, recvBuf, 1);
        hostLocal[0] = recvBuf[0];
        sendBuf[0] = hostLocal[1];           // my first element
        wbMPI_sendFloat(0, sendBuf, 1);
    }

    float* dIn; float* dOut;
    cudaMalloc(&dIn, (mine + 2) * sizeof(float));
    cudaMalloc(&dOut, mine * sizeof(float));
    cudaMemcpy(dIn, hostLocal, (mine + 2) * sizeof(float), cudaMemcpyHostToDevice);

    stencil3<<<(mine + 127) / 128, 128>>>(dIn, dOut, mine);

    float* hostOut = (float*) malloc(mine * sizeof(float));
    cudaMemcpy(hostOut, dOut, mine * sizeof(float), cudaMemcpyDeviceToHost);

    // Gather on rank 0 and submit.
    if (rank == 1) {
        wbMPI_sendFloat(0, hostOut, mine);
    } else {
        float* hostAll = (float*) malloc(n * sizeof(float));
        for (int i = 0; i < mine; i++) { hostAll[i] = hostOut[i]; }
        float* theirs = (float*) malloc((n - half) * sizeof(float));
        wbMPI_recvFloat(1, theirs, n - half);
        for (int i = 0; i < n - half; i++) { hostAll[half + i] = theirs[i]; }
        wbSolution(hostAll, n);
    }
    wbMPI_barrier();
    return 0;
}
"#;

/// CPU golden model: 3-point stencil with clamped edges over the full
/// vector (what the two ranks jointly compute).
pub fn golden(input: &[f32]) -> Vec<f32> {
    let n = input.len();
    (0..n)
        .map(|i| {
            let left = input[i.saturating_sub(1)];
            let right = input[(i + 1).min(n - 1)];
            COEFFS[0] * left + COEFFS[1] * input[i] + COEFFS[2] * right
        })
        .collect()
}

/// Generate dataset cases (even and odd lengths, so the uneven split
/// path is exercised).
pub fn datasets(scale: LabScale) -> Vec<DatasetCase> {
    let sizes = match scale {
        LabScale::Small => vec![8usize, 31],
        LabScale::Full => vec![4_096usize, 10_001],
    };
    sizes
        .into_iter()
        .enumerate()
        .map(|(i, n)| {
            let input = gen::random_vector(n, 0xC10 + i as u64);
            let expected = golden(&input);
            case(
                &format!("d{i}"),
                vec![Dataset::Vector(input)],
                Dataset::Vector(expected),
            )
        })
        .collect()
}

/// Build the lab.
pub fn definition(scale: LabScale) -> LabDefinition {
    let mut spec = LabSpec::cuda_test("mpi-stencil");
    spec.check = float_check();
    spec.whitelist = SyscallWhitelist::mpi_profile();
    spec.limits.world_size = 2;
    spec.tags = ["mpi".to_string(), "multi-gpu".to_string()]
        .into_iter()
        .collect();
    spec.toolchain = "mpi".to_string();
    make_lab(
        "mpi-stencil",
        "Multi-GPU Stencil with MPI",
        DESCRIPTION,
        &format!(
            "{}__global__ void stencil3(float* in, float* out, int n) {{\n    // in[0] and in[n+1] are halo cells\n}}\n\nint main() {{\n    int rank = wbMPI_rank();\n    // TODO: split, exchange halos, compute, gather on rank 0\n    return 0;\n}}\n",
            skeleton_banner("Multi-GPU Stencil with MPI")
        ),
        datasets(scale),
        vec![
            "Why must the halo exchange happen before the kernel launch?",
            "What deadlock exists if both ranks recv before sending?",
        ],
        spec,
        Rubric {
            compile_points: 10.0,
            dataset_points: 80.0,
            question_points: 10.0,
            keyword_points: vec![],
        },
    )
}

const DESCRIPTION: &str = "# Multi-GPU Stencil with MPI\n\nTwo ranks, two GPUs: split the vector, \
exchange one-element halos with `wbMPI_sendFloat`/`wbMPI_recvFloat`, run the 3-point stencil \
`[0.25, 0.5, 0.25]` on your half, and gather the result on rank 0. Edges clamp.\n\nThis lab is \
tagged `mpi` + `multi-gpu`: in WebGPU 2.0 only workers advertising those capabilities accept it.\n";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::grade_solution;

    #[test]
    fn reference_solution_passes() {
        grade_solution(&definition(LabScale::Small), SOLUTION);
    }

    #[test]
    fn golden_constant_is_fixed_point() {
        let out = golden(&[5.0; 9]);
        assert!(out.iter().all(|&x| (x - 5.0).abs() < 1e-6));
    }

    #[test]
    fn lab_is_tagged_for_capable_workers() {
        let lab = definition(LabScale::Small);
        assert!(lab.spec.tags.contains("mpi"));
        assert!(lab.spec.tags.contains("multi-gpu"));
        assert_eq!(lab.spec.limits.world_size, 2);
    }

    #[test]
    fn cuda_whitelist_kills_the_mpi_solution() {
        use wb_worker::{execute_job, JobAction, JobRequest};
        // Running the MPI lab under the plain CUDA whitelist dies with
        // a security diagnostic — the per-lab whitelist is real.
        let mut lab = definition(LabScale::Small);
        lab.spec.whitelist = SyscallWhitelist::cuda_default();
        let req = JobRequest {
            job_id: 1,
            user: "t".into(),
            source: SOLUTION.to_string(),
            spec: lab.spec.clone(),
            datasets: lab.datasets.clone(),
            action: JobAction::RunDataset(0),
        };
        let out = execute_job(&req, &minicuda::DeviceConfig::test_small(), 0, 0);
        let err = out.datasets[0].error.as_ref().expect("must be denied");
        assert_eq!(err.phase, minicuda::Phase::Security);
    }
}
