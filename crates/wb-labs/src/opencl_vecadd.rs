//! OpenCL Vector Addition — the OpenCL surface (HPP only in Table II).

use crate::common::{case, float_check, make_lab, LabScale};
use libwb::{gen, Dataset};
use minicuda::Dialect;
use wb_server::{LabDefinition, Rubric};
use wb_worker::{DatasetCase, LabSpec};

/// Reference solution in the OpenCL dialect: `__kernel`, `__global`
/// qualifiers, `get_global_id`, and an OpenCL-style barrier are all
/// canonicalized by the toolchain's dialect front end.
pub const SOLUTION: &str = r#"
__kernel void vadd(__global float* a, __global float* b, __global float* out, int n) {
    int i = get_global_id(0);
    if (i < n) { out[i] = a[i] + b[i]; }
}

int main() {
    int n;
    float* hostA = wbImportVector(0, &n);
    float* hostB = wbImportVector(1, &n);
    float* hostC = (float*) malloc(n * sizeof(float));

    float* dA; float* dB; float* dC;
    cudaMalloc(&dA, n * sizeof(float));
    cudaMalloc(&dB, n * sizeof(float));
    cudaMalloc(&dC, n * sizeof(float));
    cudaMemcpy(dA, hostA, n * sizeof(float), cudaMemcpyHostToDevice);
    cudaMemcpy(dB, hostB, n * sizeof(float), cudaMemcpyHostToDevice);

    vadd<<<(n + 63) / 64, 64>>>(dA, dB, dC, n);

    cudaMemcpy(hostC, dC, n * sizeof(float), cudaMemcpyDeviceToHost);
    wbSolution(hostC, n);
    return 0;
}
"#;

/// Generate dataset cases.
pub fn datasets(scale: LabScale) -> Vec<DatasetCase> {
    let sizes = match scale {
        LabScale::Small => vec![5usize, 70],
        LabScale::Full => vec![129usize, 10_000],
    };
    sizes
        .into_iter()
        .enumerate()
        .map(|(i, n)| {
            let a = gen::random_vector(n, 0x300 + i as u64);
            let b = gen::random_vector(n, 0x400 + i as u64);
            let expected: Vec<f32> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
            case(
                &format!("d{i}"),
                vec![Dataset::Vector(a), Dataset::Vector(b)],
                Dataset::Vector(expected),
            )
        })
        .collect()
}

/// Build the lab.
pub fn definition(scale: LabScale) -> LabDefinition {
    let mut spec = LabSpec::cuda_test("opencl-vecadd");
    spec.dialect = Dialect::OpenCl;
    spec.toolchain = "opencl".to_string();
    spec.check = float_check();
    make_lab(
        "opencl-vecadd",
        "OpenCL Vector Addition",
        DESCRIPTION,
        "// OpenCL Vector Addition\n__kernel void vadd(__global float* a, __global float* b, __global float* out, int n) {\n    // TODO: use get_global_id(0)\n}\n\nint main() {\n    // host code as in the CUDA lab\n    return 0;\n}\n",
        datasets(scale),
        vec!["How does get_global_id(0) relate to blockIdx/blockDim/threadIdx?"],
        spec,
        Rubric::default(),
    )
}

const DESCRIPTION: &str = "# OpenCL Vector Addition\n\nThe same vector addition, written against \
the OpenCL work-item model: `__kernel`, `__global` pointers, and `get_global_id(0)` instead of \
the CUDA builtins.\n";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::grade_solution;

    #[test]
    fn reference_solution_passes() {
        grade_solution(&definition(LabScale::Small), SOLUTION);
    }

    #[test]
    fn lab_is_tagged_opencl() {
        let lab = definition(LabScale::Small);
        assert_eq!(lab.spec.dialect, Dialect::OpenCl);
        assert_eq!(lab.spec.toolchain, "opencl");
    }

    #[test]
    fn cuda_compiler_rejects_the_opencl_source() {
        // Submitting OpenCL source to a CUDA-configured lab fails to
        // compile — matching the real toolchain split.
        assert!(minicuda::compile(SOLUTION, Dialect::Cuda).is_err());
        assert!(minicuda::compile(SOLUTION, Dialect::OpenCl).is_ok());
    }
}
