//! Reduction and Scan — floating point, work efficiency, tree-shaped
//! algorithms.
//!
//! The graded artifact is an **inclusive prefix sum**: a
//! work-efficient Blelloch scan within each block, a scan of the block
//! sums, and a uniform add — the full three-kernel structure the
//! course teaches.

use crate::common::{case, make_lab, skeleton_banner, LabScale};
use libwb::{gen, CheckPolicy, Dataset};
use wb_server::{LabDefinition, Rubric};
use wb_worker::{DatasetCase, LabSpec};

/// Reference solution (block size 64, handles any input length).
pub const SOLUTION: &str = r#"
#define BLOCK 64

__global__ void scanBlock(float* in, float* out, float* blockSums, int n) {
    __shared__ float buf[128];
    int t = threadIdx.x;
    int start = blockIdx.x * BLOCK * 2;
    buf[t] = (start + t < n) ? in[start + t] : 0.0;
    buf[t + BLOCK] = (start + t + BLOCK < n) ? in[start + t + BLOCK] : 0.0;
    __syncthreads();

    // Up-sweep (reduce).
    for (int stride = 1; stride <= BLOCK; stride = stride * 2) {
        int idx = (t + 1) * stride * 2 - 1;
        if (idx < 2 * BLOCK) { buf[idx] += buf[idx - stride]; }
        __syncthreads();
    }
    // Down-sweep.
    for (int stride = BLOCK / 2; stride > 0; stride = stride / 2) {
        int idx = (t + 1) * stride * 2 - 1;
        if (idx + stride < 2 * BLOCK) { buf[idx + stride] += buf[idx]; }
        __syncthreads();
    }

    if (start + t < n) { out[start + t] = buf[t]; }
    if (start + t + BLOCK < n) { out[start + t + BLOCK] = buf[t + BLOCK]; }
    if (t == 0) { blockSums[blockIdx.x] = buf[2 * BLOCK - 1]; }
}

__global__ void addOffsets(float* out, float* scannedSums, int n) {
    int start = blockIdx.x * BLOCK * 2;
    int t = threadIdx.x;
    if (blockIdx.x > 0) {
        float offset = scannedSums[blockIdx.x - 1];
        if (start + t < n) { out[start + t] += offset; }
        if (start + t + BLOCK < n) { out[start + t + BLOCK] += offset; }
    }
}

int main() {
    int n;
    float* hostIn = wbImportVector(0, &n);
    float* hostOut = (float*) malloc(n * sizeof(float));

    int blocks = (n + 2 * BLOCK - 1) / (2 * BLOCK);
    float* dIn; float* dOut; float* dSums;
    cudaMalloc(&dIn, n * sizeof(float));
    cudaMalloc(&dOut, n * sizeof(float));
    cudaMalloc(&dSums, blocks * sizeof(float));
    cudaMemcpy(dIn, hostIn, n * sizeof(float), cudaMemcpyHostToDevice);

    scanBlock<<<blocks, BLOCK>>>(dIn, dOut, dSums, n);

    // Scan the per-block sums on the host (blocks is small), then add.
    float* hostSums = (float*) malloc(blocks * sizeof(float));
    cudaMemcpy(hostSums, dSums, blocks * sizeof(float), cudaMemcpyDeviceToHost);
    for (int i = 1; i < blocks; i++) { hostSums[i] += hostSums[i - 1]; }
    cudaMemcpy(dSums, hostSums, blocks * sizeof(float), cudaMemcpyHostToDevice);

    addOffsets<<<blocks, BLOCK>>>(dOut, dSums, n);

    cudaMemcpy(hostOut, dOut, n * sizeof(float), cudaMemcpyDeviceToHost);
    wbSolution(hostOut, n);
    return 0;
}
"#;

/// CPU golden model: inclusive prefix sum.
pub fn golden(input: &[f32]) -> Vec<f32> {
    let mut out = Vec::with_capacity(input.len());
    let mut acc = 0.0f32;
    for &x in input {
        acc += x;
        out.push(acc);
    }
    out
}

/// Dataset cases: lengths crossing none/one/many block boundaries.
pub fn datasets(scale: LabScale) -> Vec<DatasetCase> {
    let sizes = match scale {
        LabScale::Small => vec![1usize, 128, 300],
        LabScale::Full => vec![1usize, 128, 1_000, 65_536],
    };
    sizes
        .into_iter()
        .enumerate()
        .map(|(i, n)| {
            let input = gen::random_positive_vector(n, 0xE0 + i as u64);
            let expected = golden(&input);
            case(
                &format!("d{i}"),
                vec![Dataset::Vector(input)],
                Dataset::Vector(expected),
            )
        })
        .collect()
}

/// Build the lab.
pub fn definition(scale: LabScale) -> LabDefinition {
    let mut spec = LabSpec::cuda_test("scan");
    // Scans accumulate rounding error with length; loosen the
    // relative tolerance accordingly.
    spec.check = CheckPolicy {
        abs_tol: 1e-2,
        rel_tol: 1e-3,
        max_reported: 10,
    };
    make_lab(
        "scan",
        "Reduction and Scan",
        DESCRIPTION,
        &format!(
            "{}#define BLOCK 64\n\n__global__ void scanBlock(float* in, float* out, float* blockSums, int n) {{\n    __shared__ float buf[128];\n    // TODO: load two elements per thread, up-sweep, down-sweep\n}}\n\nint main() {{\n    // TODO: scan blocks, scan block sums, add offsets\n    return 0;\n}}\n",
            skeleton_banner("Reduction and Scan")
        ),
        datasets(scale),
        vec![
            "What is the work complexity of the Blelloch scan vs the naive scan?",
            "Why are the datasets strictly positive?",
        ],
        spec,
        Rubric {
            compile_points: 10.0,
            dataset_points: 75.0,
            question_points: 10.0,
            keyword_points: vec![("__syncthreads".to_string(), 5.0)],
        },
    )
}

const DESCRIPTION: &str = "# Reduction and Scan\n\nCompute the **inclusive prefix sum** of a \
vector using the work-efficient tree-shaped scan:\n\n1. each block scans `2 * BLOCK` elements in \
shared memory (up-sweep, down-sweep)\n2. the per-block totals are scanned\n3. each block adds its \
predecessor's total\n";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::grade_solution;

    #[test]
    fn reference_solution_passes() {
        grade_solution(&definition(LabScale::Small), SOLUTION);
    }

    #[test]
    fn golden_model_simple() {
        assert_eq!(golden(&[1.0, 2.0, 3.0]), vec![1.0, 3.0, 6.0]);
        assert_eq!(golden(&[]), Vec::<f32>::new());
    }

    #[test]
    fn missing_offset_add_fails_multi_block() {
        use wb_worker::{execute_job, JobAction, JobRequest};
        let lab = definition(LabScale::Small);
        let buggy = SOLUTION.replace("addOffsets<<<blocks, BLOCK>>>(dOut, dSums, n);", "");
        let req = JobRequest {
            job_id: 1,
            user: "t".into(),
            source: buggy,
            spec: lab.spec.clone(),
            datasets: lab.datasets.clone(),
            action: JobAction::FullGrade,
        };
        let out = execute_job(&req, &minicuda::DeviceConfig::test_small(), 0, 0);
        assert!(out.compiled());
        // Single-block datasets still pass; the 300-element one fails.
        assert!(out.passed_count() < out.datasets.len());
        assert!(out.passed_count() >= 1);
    }
}
