//! Scatter to Gather — transforming write conflicts into reads.
//!
//! Students receive a permutation map and must produce
//! `out[i] = in[map[i]]` (the *gather* form). The pedagogical point is
//! that the equivalent scatter (`out[map[i]] = in[i]` with an inverted
//! map) would race without atomics, while the gather form has
//! conflict-free writes.

use crate::common::{case, float_check, make_lab, skeleton_banner, LabScale};
use libwb::{gen, Dataset};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use wb_server::{LabDefinition, Rubric};
use wb_worker::{DatasetCase, LabSpec};

/// Reference solution (gather form).
pub const SOLUTION: &str = r#"
__global__ void gather(float* in, int* map, float* out, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        out[i] = in[map[i]];
    }
}

int main() {
    int n; int m;
    float* hostIn = wbImportVector(0, &n);
    int* hostMap = wbImportIntVector(1, &m);
    float* hostOut = (float*) malloc(n * sizeof(float));

    float* dIn; float* dOut; int* dMap;
    cudaMalloc(&dIn, n * sizeof(float));
    cudaMalloc(&dOut, n * sizeof(float));
    cudaMalloc(&dMap, n * sizeof(int));
    cudaMemcpy(dIn, hostIn, n * sizeof(float), cudaMemcpyHostToDevice);
    cudaMemcpy(dMap, hostMap, n * sizeof(int), cudaMemcpyHostToDevice);

    gather<<<(n + 127) / 128, 128>>>(dIn, dMap, dOut, n);

    cudaMemcpy(hostOut, dOut, n * sizeof(float), cudaMemcpyDeviceToHost);
    wbSolution(hostOut, n);
    return 0;
}
"#;

/// CPU golden model.
pub fn golden(input: &[f32], map: &[i32]) -> Vec<f32> {
    map.iter().map(|&j| input[j as usize]).collect()
}

/// A random permutation map.
pub fn permutation(n: usize, seed: u64) -> Vec<i32> {
    let mut map: Vec<i32> = (0..n as i32).collect();
    map.shuffle(&mut StdRng::seed_from_u64(seed));
    map
}

/// Generate dataset cases.
pub fn datasets(scale: LabScale) -> Vec<DatasetCase> {
    let sizes = match scale {
        LabScale::Small => vec![4usize, 97],
        LabScale::Full => vec![1_000usize, 50_000],
    };
    sizes
        .into_iter()
        .enumerate()
        .map(|(i, n)| {
            let input = gen::random_vector(n, 0x510 + i as u64);
            let map = permutation(n, 0x520 + i as u64);
            let expected = golden(&input, &map);
            case(
                &format!("d{i}"),
                vec![Dataset::Vector(input), Dataset::IntVector(map)],
                Dataset::Vector(expected),
            )
        })
        .collect()
}

/// Build the lab.
pub fn definition(scale: LabScale) -> LabDefinition {
    let mut spec = LabSpec::cuda_test("scatter-gather");
    spec.check = float_check();
    make_lab(
        "scatter-gather",
        "Scatter to Gather",
        DESCRIPTION,
        &format!(
            "{}__global__ void gather(float* in, int* map, float* out, int n) {{\n    // TODO: out[i] = in[map[i]]\n}}\n\nint main() {{\n    // TODO\n    return 0;\n}}\n",
            skeleton_banner("Scatter to Gather")
        ),
        datasets(scale),
        vec![
            "Why is the gather form free of write conflicts while the scatter form is not?",
            "Which form has better memory coalescing on the write side?",
        ],
        spec,
        Rubric::default(),
    )
}

const DESCRIPTION: &str = "# Scatter to Gather\n\nGiven a permutation `map`, produce \
`out[i] = in[map[i]]`.\n\nRewriting a scatter as a gather removes write conflicts: each output \
element is owned by exactly one thread.\n";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::grade_solution;

    #[test]
    fn reference_solution_passes() {
        grade_solution(&definition(LabScale::Small), SOLUTION);
    }

    #[test]
    fn golden_is_a_permutation() {
        let input = vec![10.0, 20.0, 30.0];
        let map = vec![2, 0, 1];
        assert_eq!(golden(&input, &map), vec![30.0, 10.0, 20.0]);
    }

    #[test]
    fn permutation_covers_all_indices() {
        let p = permutation(50, 3);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<i32>>());
    }

    #[test]
    fn scatter_written_as_gather_of_same_map_fails() {
        use wb_worker::{execute_job, JobAction, JobRequest};
        // Students who confuse the direction write out[map[i]] = in[i],
        // which equals gathering through the inverse permutation — a
        // wrong answer on a random (non-involution) map.
        let lab = definition(LabScale::Small);
        let buggy = SOLUTION.replace("out[i] = in[map[i]];", "out[map[i]] = in[i];");
        let req = JobRequest {
            job_id: 1,
            user: "t".into(),
            source: buggy,
            spec: lab.spec.clone(),
            datasets: lab.datasets.clone(),
            action: JobAction::FullGrade,
        };
        let out = execute_job(&req, &minicuda::DeviceConfig::test_small(), 0, 0);
        assert!(out.compiled());
        assert!(out.passed_count() < out.datasets.len());
    }
}
