//! SGEMM — register tiling and thread coarsening on matrix multiply.
//!
//! ECE 598HK's heavier sibling of the tiled lab: each thread computes a
//! 2×1 register tile, halving the shared-memory reads per output.

use crate::common::{case, float_check, make_lab, skeleton_banner, LabScale};
use crate::matmul::golden;
use libwb::{gen, Dataset};
use wb_server::{LabDefinition, Rubric};
use wb_worker::{DatasetCase, LabSpec};

/// Reference solution: 16×16 shared tiles, 2 rows per thread.
pub const SOLUTION: &str = r#"
#define TILE 16

__global__ void sgemm(float* A, float* B, float* C, int m, int k, int n) {
    __shared__ float tileA[2 * TILE][TILE + 1];
    __shared__ float tileB[TILE][TILE + 1];
    int ty = threadIdx.y;
    int tx = threadIdx.x;
    int row0 = blockIdx.y * 2 * TILE + ty;
    int row1 = row0 + TILE;
    int col = blockIdx.x * TILE + tx;
    float acc0 = 0.0;
    float acc1 = 0.0;
    int phases = (k + TILE - 1) / TILE;
    for (int p = 0; p < phases; p++) {
        int aCol = p * TILE + tx;
        int bRow = p * TILE + ty;
        tileA[ty][tx] = (row0 < m && aCol < k) ? A[row0 * k + aCol] : 0.0;
        tileA[ty + TILE][tx] = (row1 < m && aCol < k) ? A[row1 * k + aCol] : 0.0;
        tileB[ty][tx] = (bRow < k && col < n) ? B[bRow * n + col] : 0.0;
        __syncthreads();
        for (int t = 0; t < TILE; t++) {
            float b = tileB[t][tx];
            acc0 += tileA[ty][t] * b;
            acc1 += tileA[ty + TILE][t] * b;
        }
        __syncthreads();
    }
    if (col < n) {
        if (row0 < m) { C[row0 * n + col] = acc0; }
        if (row1 < m) { C[row1 * n + col] = acc1; }
    }
}

int main() {
    int m; int kDim; int k2; int n;
    float* hostA = wbImportMatrix(0, &m, &kDim);
    float* hostB = wbImportMatrix(1, &k2, &n);
    float* hostC = (float*) malloc(m * n * sizeof(float));

    float* dA; float* dB; float* dC;
    cudaMalloc(&dA, m * kDim * sizeof(float));
    cudaMalloc(&dB, kDim * n * sizeof(float));
    cudaMalloc(&dC, m * n * sizeof(float));
    cudaMemcpy(dA, hostA, m * kDim * sizeof(float), cudaMemcpyHostToDevice);
    cudaMemcpy(dB, hostB, kDim * n * sizeof(float), cudaMemcpyHostToDevice);

    sgemm<<<dim3((n + TILE - 1) / TILE, (m + 2 * TILE - 1) / (2 * TILE)), dim3(TILE, TILE)>>>(dA, dB, dC, m, kDim, n);

    cudaMemcpy(hostC, dC, m * n * sizeof(float), cudaMemcpyDeviceToHost);
    wbSolutionMatrix(hostC, m, n);
    return 0;
}
"#;

/// Generate dataset cases: taller matrices so the 2-row coarsening has
/// work on both halves, including ragged shapes.
pub fn datasets(scale: LabScale) -> Vec<DatasetCase> {
    let shapes: Vec<(usize, usize, usize)> = match scale {
        LabScale::Small => vec![(33, 8, 9), (40, 16, 16)],
        LabScale::Full => vec![(128, 64, 64), (200, 96, 50)],
    };
    shapes
        .into_iter()
        .enumerate()
        .map(|(i, (m, k, n))| {
            let a = gen::random_matrix(m, k, 0x810 + i as u64);
            let b = gen::random_matrix(k, n, 0x820 + i as u64);
            let c = golden(m, k, n, &a, &b);
            case(
                &format!("d{i}"),
                vec![
                    Dataset::Matrix {
                        rows: m,
                        cols: k,
                        data: a,
                    },
                    Dataset::Matrix {
                        rows: k,
                        cols: n,
                        data: b,
                    },
                ],
                Dataset::Matrix {
                    rows: m,
                    cols: n,
                    data: c,
                },
            )
        })
        .collect()
}

/// Build the lab.
pub fn definition(scale: LabScale) -> LabDefinition {
    let mut spec = LabSpec::cuda_test("sgemm");
    spec.check = float_check();
    // SGEMM is the heavyweight lab; give it a bigger budget like the
    // real course did around deadlines.
    spec.limits = spec.limits.scaled(2.0);
    make_lab(
        "sgemm",
        "SGEMM",
        DESCRIPTION,
        &format!(
            "{}#define TILE 16\n\n__global__ void sgemm(float* A, float* B, float* C, int m, int k, int n) {{\n    // TODO: shared tiles + a register tile of 2 outputs per thread\n}}\n\nint main() {{\n    // TODO\n    return 0;\n}}\n",
            skeleton_banner("SGEMM")
        ),
        datasets(scale),
        vec![
            "How many outputs per thread does your kernel compute, and why stop there?",
            "Estimate the register pressure added by the coarsening.",
        ],
        spec,
        Rubric {
            compile_points: 10.0,
            dataset_points: 70.0,
            question_points: 10.0,
            keyword_points: vec![("__shared__".to_string(), 10.0)],
        },
    )
}

const DESCRIPTION: &str =
    "# SGEMM\n\nProduction-style matrix multiply: shared-memory tiles plus a \
**register tile** — each thread accumulates two output rows, reusing each loaded `B` element \
twice.\n";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::grade_solution;

    #[test]
    fn reference_solution_passes() {
        grade_solution(&definition(LabScale::Small), SOLUTION);
    }

    #[test]
    fn coarsened_kernel_issues_fewer_instructions_than_tiled() {
        use wb_worker::{execute_job, JobAction, JobRequest};
        // Same datasets through the tiled lab's kernel vs SGEMM: the
        // register-tiled kernel does the same flops with fewer shared
        // loads per output.
        // A shape whose row count is a multiple of 2*TILE, so the
        // coarsened grid really has half the blocks.
        let (m, k, n) = (64usize, 16usize, 16usize);
        let a = gen::random_matrix(m, k, 1);
        let b = gen::random_matrix(k, n, 2);
        let c = golden(m, k, n, &a, &b);
        let sets = vec![case(
            "bench",
            vec![
                Dataset::Matrix {
                    rows: m,
                    cols: k,
                    data: a,
                },
                Dataset::Matrix {
                    rows: k,
                    cols: n,
                    data: b,
                },
            ],
            Dataset::Matrix {
                rows: m,
                cols: n,
                data: c,
            },
        )];
        let spec = definition(LabScale::Small).spec;
        let run = |source: &str| {
            let req = JobRequest {
                job_id: 1,
                user: "t".into(),
                source: source.to_string(),
                spec: spec.clone(),
                datasets: sets.clone(),
                action: JobAction::RunDataset(0),
            };
            execute_job(&req, &minicuda::DeviceConfig::test_small(), 0, 0)
        };
        let sgemm = run(SOLUTION);
        let tiled = run(crate::tiled_matmul::SOLUTION);
        assert!(sgemm.datasets[0].passed());
        assert!(tiled.datasets[0].passed());
        let s = &sgemm.datasets[0].cost;
        let t = &tiled.datasets[0].cost;
        assert!(
            s.shared_accesses < t.shared_accesses,
            "register tiling must cut shared traffic: sgemm {} vs tiled {}",
            s.shared_accesses,
            t.shared_accesses
        );
    }
}
