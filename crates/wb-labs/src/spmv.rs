//! SPMV — sparse matrix formats and their performance effects.
//!
//! CSR sparse matrix–vector multiply, one row per thread (the course's
//! first sparse kernel; the load imbalance across rows is what the
//! performance questions probe).

use crate::common::{case, make_lab, skeleton_banner, LabScale};
use libwb::{gen, CheckPolicy, Dataset};
use wb_server::{LabDefinition, Rubric};
use wb_worker::{DatasetCase, LabSpec};

/// Reference solution.
pub const SOLUTION: &str = r#"
__global__ void spmvCsr(int* rowPtr, int* colIdx, float* values, float* x, float* y, int numRows) {
    int row = blockIdx.x * blockDim.x + threadIdx.x;
    if (row < numRows) {
        float acc = 0.0;
        int start = rowPtr[row];
        int end = rowPtr[row + 1];
        for (int k = start; k < end; k++) {
            acc += values[k] * x[colIdx[k]];
        }
        y[row] = acc;
    }
}

int main() {
    int numRows; int nnz; int nnz2; int n;
    int* hostRowPtr = wbImportCsrRowPtr(0, &numRows);
    int* hostColIdx = wbImportCsrColIdx(0, &nnz);
    float* hostValues = wbImportCsrValues(0, &nnz2);
    float* hostX = wbImportVector(1, &n);
    float* hostY = (float*) malloc(numRows * sizeof(float));

    int* dRowPtr; int* dColIdx; float* dValues; float* dX; float* dY;
    cudaMalloc(&dRowPtr, (numRows + 1) * sizeof(int));
    cudaMalloc(&dColIdx, nnz * sizeof(int));
    cudaMalloc(&dValues, nnz * sizeof(float));
    cudaMalloc(&dX, n * sizeof(float));
    cudaMalloc(&dY, numRows * sizeof(float));
    cudaMemcpy(dRowPtr, hostRowPtr, (numRows + 1) * sizeof(int), cudaMemcpyHostToDevice);
    cudaMemcpy(dColIdx, hostColIdx, nnz * sizeof(int), cudaMemcpyHostToDevice);
    cudaMemcpy(dValues, hostValues, nnz * sizeof(float), cudaMemcpyHostToDevice);
    cudaMemcpy(dX, hostX, n * sizeof(float), cudaMemcpyHostToDevice);

    spmvCsr<<<(numRows + 127) / 128, 128>>>(dRowPtr, dColIdx, dValues, dX, dY, numRows);

    cudaMemcpy(hostY, dY, numRows * sizeof(float), cudaMemcpyDeviceToHost);
    wbSolution(hostY, numRows);
    return 0;
}
"#;

/// Generate dataset cases (golden model is `CsrMatrix::spmv`).
pub fn datasets(scale: LabScale) -> Vec<DatasetCase> {
    let shapes = match scale {
        LabScale::Small => vec![(5usize, 7usize, 0.4f64), (23, 23, 0.15)],
        LabScale::Full => vec![(256, 256, 0.05), (1000, 800, 0.01)],
    };
    shapes
        .into_iter()
        .enumerate()
        .map(|(i, (rows, cols, density))| {
            let m = gen::random_sparse(rows, cols, density, 0x910 + i as u64);
            let x = gen::random_vector(cols, 0x920 + i as u64);
            let y = m.spmv(&x).expect("shapes match");
            case(
                &format!("d{i}"),
                vec![Dataset::Sparse(m), Dataset::Vector(x)],
                Dataset::Vector(y),
            )
        })
        .collect()
}

/// Build the lab.
pub fn definition(scale: LabScale) -> LabDefinition {
    let mut spec = LabSpec::cuda_test("spmv");
    spec.check = CheckPolicy {
        abs_tol: 1e-3,
        rel_tol: 1e-3,
        max_reported: 10,
    };
    make_lab(
        "spmv",
        "SPMV",
        DESCRIPTION,
        &format!(
            "{}__global__ void spmvCsr(int* rowPtr, int* colIdx, float* values, float* x, float* y, int numRows) {{\n    // TODO: one row per thread\n}}\n\nint main() {{\n    // Import the CSR arrays with wbImportCsrRowPtr / ColIdx / Values.\n    return 0;\n}}\n",
            skeleton_banner("SPMV")
        ),
        datasets(scale),
        vec![
            "Why does one-row-per-thread underutilize warps on skewed matrices?",
            "What format change (ELL, JDS) would improve coalescing?",
        ],
        spec,
        Rubric::default(),
    )
}

const DESCRIPTION: &str = "# SPMV\n\nMultiply a CSR sparse matrix by a dense vector: \
`y[row] = Σ values[k] * x[colIdx[k]]` over the row's extent in `rowPtr`.\n";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::grade_solution;

    #[test]
    fn reference_solution_passes() {
        grade_solution(&definition(LabScale::Small), SOLUTION);
    }

    #[test]
    fn off_by_one_row_extent_fails() {
        use wb_worker::{execute_job, JobAction, JobRequest};
        let lab = definition(LabScale::Small);
        let buggy = SOLUTION.replace("int end = rowPtr[row + 1];", "int end = rowPtr[row];");
        let req = JobRequest {
            job_id: 1,
            user: "t".into(),
            source: buggy,
            spec: lab.spec.clone(),
            datasets: lab.datasets.clone(),
            action: JobAction::FullGrade,
        };
        let out = execute_job(&req, &minicuda::DeviceConfig::test_small(), 0, 0);
        assert!(out.compiled());
        assert_eq!(out.passed_count(), 0, "all rows come out zero");
    }
}
