//! Stencil — register tiling and thread coarsening.
//!
//! A 1-D 5-point stencil with clamped boundaries. The reference
//! solution coarsens: each thread produces `COARSEN` outputs, carrying
//! the window in registers, which the cost model rewards with fewer
//! global transactions than the naive one-output-per-thread kernel.

use crate::common::{case, float_check, make_lab, skeleton_banner, LabScale};
use libwb::{gen, Dataset};
use wb_server::{LabDefinition, Rubric};
use wb_worker::{DatasetCase, LabSpec};

/// Stencil coefficients (symmetric 5-point).
pub const COEFFS: [f32; 5] = [0.1, 0.2, 0.4, 0.2, 0.1];

/// Reference solution with 4× thread coarsening.
pub const SOLUTION: &str = r#"
#define COARSEN 4

__global__ void stencil(float* in, float* out, int n) {
    int base = (blockIdx.x * blockDim.x + threadIdx.x) * COARSEN;
    for (int k = 0; k < COARSEN; k++) {
        int i = base + k;
        if (i < n) {
            // Clamped neighbor loads kept in registers.
            int im2 = max(i - 2, 0);
            int im1 = max(i - 1, 0);
            int ip1 = min(i + 1, n - 1);
            int ip2 = min(i + 2, n - 1);
            out[i] = 0.1 * in[im2] + 0.2 * in[im1] + 0.4 * in[i]
                   + 0.2 * in[ip1] + 0.1 * in[ip2];
        }
    }
}

int main() {
    int n;
    float* hostIn = wbImportVector(0, &n);
    float* hostOut = (float*) malloc(n * sizeof(float));

    float* dIn; float* dOut;
    cudaMalloc(&dIn, n * sizeof(float));
    cudaMalloc(&dOut, n * sizeof(float));
    cudaMemcpy(dIn, hostIn, n * sizeof(float), cudaMemcpyHostToDevice);

    int outputsPerBlock = 128 * COARSEN;
    stencil<<<(n + outputsPerBlock - 1) / outputsPerBlock, 128>>>(dIn, dOut, n);

    cudaMemcpy(hostOut, dOut, n * sizeof(float), cudaMemcpyDeviceToHost);
    wbSolution(hostOut, n);
    return 0;
}
"#;

/// CPU golden model with clamped boundaries.
pub fn golden(input: &[f32]) -> Vec<f32> {
    let n = input.len();
    (0..n)
        .map(|i| {
            let at = |j: isize| -> f32 {
                let k = j.clamp(0, n as isize - 1) as usize;
                input[k]
            };
            COEFFS[0] * at(i as isize - 2)
                + COEFFS[1] * at(i as isize - 1)
                + COEFFS[2] * at(i as isize)
                + COEFFS[3] * at(i as isize + 1)
                + COEFFS[4] * at(i as isize + 2)
        })
        .collect()
}

/// Generate dataset cases.
pub fn datasets(scale: LabScale) -> Vec<DatasetCase> {
    let sizes = match scale {
        LabScale::Small => vec![1usize, 9, 517],
        LabScale::Full => vec![1_000usize, 65_537],
    };
    sizes
        .into_iter()
        .enumerate()
        .map(|(i, n)| {
            let input = gen::random_vector(n, 0x610 + i as u64);
            let expected = golden(&input);
            case(
                &format!("d{i}"),
                vec![Dataset::Vector(input)],
                Dataset::Vector(expected),
            )
        })
        .collect()
}

/// Build the lab.
pub fn definition(scale: LabScale) -> LabDefinition {
    let mut spec = LabSpec::cuda_test("stencil");
    spec.check = float_check();
    make_lab(
        "stencil",
        "Stencil",
        DESCRIPTION,
        &format!(
            "{}__global__ void stencil(float* in, float* out, int n) {{\n    // TODO: 5-point stencil, clamp at the boundaries,\n    // coarsen so each thread produces several outputs\n}}\n\nint main() {{\n    // TODO\n    return 0;\n}}\n",
            skeleton_banner("Stencil")
        ),
        datasets(scale),
        vec![
            "How does thread coarsening reduce redundant loads here?",
            "What limits how far you can coarsen?",
        ],
        spec,
        Rubric::default(),
    )
}

const DESCRIPTION: &str = "# Stencil\n\nApply the symmetric 5-point stencil \
`[0.1, 0.2, 0.4, 0.2, 0.1]` to a vector. Out-of-range neighbors clamp to the edge value.\n\n\
Coarsen your threads: one thread, several adjacent outputs, neighbors carried in registers.\n";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::grade_solution;

    #[test]
    fn reference_solution_passes() {
        grade_solution(&definition(LabScale::Small), SOLUTION);
    }

    #[test]
    fn golden_constant_input_is_fixed_point() {
        // Coefficients sum to 1, so a constant vector is unchanged.
        let out = golden(&[2.0; 10]);
        assert!(out.iter().all(|&x| (x - 2.0).abs() < 1e-6));
    }

    #[test]
    fn golden_single_element() {
        let out = golden(&[3.0]);
        assert!((out[0] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn unclamped_boundary_fails() {
        use wb_worker::{execute_job, JobAction, JobRequest};
        let lab = definition(LabScale::Small);
        let buggy = SOLUTION
            .replace("int im2 = max(i - 2, 0);", "int im2 = i - 2;")
            .replace("int im1 = max(i - 1, 0);", "int im1 = i - 1;");
        let req = JobRequest {
            job_id: 1,
            user: "t".into(),
            source: buggy,
            spec: lab.spec.clone(),
            datasets: lab.datasets.clone(),
            action: JobAction::FullGrade,
        };
        let out = execute_job(&req, &minicuda::DeviceConfig::test_small(), 0, 0);
        // Negative indexing is a reported runtime error, not silence.
        assert!(out.datasets.iter().any(|d| d.error.is_some()));
    }
}
