//! Tiled Matrix Multiplication — shared-memory tiling.
//!
//! Same datasets as the basic lab; the rubric additionally rewards use
//! of `__shared__`, and the cost model makes the tiled kernel's global
//! traffic measurably lower (the ablation `device` bench shows it).

use crate::common::{case, float_check, make_lab, skeleton_banner, LabScale};
use crate::matmul::golden;
use libwb::{gen, Dataset};
use wb_server::{LabDefinition, Rubric};
use wb_worker::{DatasetCase, LabSpec};

/// Reference solution with 16×16 shared tiles (+1 padding column to
/// dodge bank conflicts, which the cost model also measures).
pub const SOLUTION: &str = r#"
#define TILE 16

__global__ void tiledMatMul(float* A, float* B, float* C, int m, int k, int n) {
    __shared__ float tileA[TILE][TILE + 1];
    __shared__ float tileB[TILE][TILE + 1];
    int ty = threadIdx.y;
    int tx = threadIdx.x;
    int row = blockIdx.y * TILE + ty;
    int col = blockIdx.x * TILE + tx;
    float acc = 0.0;
    int phases = (k + TILE - 1) / TILE;
    for (int p = 0; p < phases; p++) {
        int aCol = p * TILE + tx;
        int bRow = p * TILE + ty;
        tileA[ty][tx] = (row < m && aCol < k) ? A[row * k + aCol] : 0.0;
        tileB[ty][tx] = (bRow < k && col < n) ? B[bRow * n + col] : 0.0;
        __syncthreads();
        for (int t = 0; t < TILE; t++) {
            acc += tileA[ty][t] * tileB[t][tx];
        }
        __syncthreads();
    }
    if (row < m && col < n) {
        C[row * n + col] = acc;
    }
}

int main() {
    int m; int kDim; int k2; int n;
    float* hostA = wbImportMatrix(0, &m, &kDim);
    float* hostB = wbImportMatrix(1, &k2, &n);
    float* hostC = (float*) malloc(m * n * sizeof(float));

    float* dA; float* dB; float* dC;
    cudaMalloc(&dA, m * kDim * sizeof(float));
    cudaMalloc(&dB, kDim * n * sizeof(float));
    cudaMalloc(&dC, m * n * sizeof(float));
    cudaMemcpy(dA, hostA, m * kDim * sizeof(float), cudaMemcpyHostToDevice);
    cudaMemcpy(dB, hostB, kDim * n * sizeof(float), cudaMemcpyHostToDevice);

    tiledMatMul<<<dim3((n + 15) / 16, (m + 15) / 16), dim3(16, 16)>>>(dA, dB, dC, m, kDim, n);

    cudaMemcpy(hostC, dC, m * n * sizeof(float), cudaMemcpyDeviceToHost);
    wbSolutionMatrix(hostC, m, n);
    return 0;
}
"#;

/// Datasets: reuse the basic-matmul generator with a different seed
/// plus one tile-exact case.
pub fn datasets(scale: LabScale) -> Vec<DatasetCase> {
    let mut cases = crate::matmul::datasets(scale, 0x7777);
    // One case that exactly fills the tiles so students can't pass by
    // special-casing the ragged edges.
    let (m, k, n) = match scale {
        LabScale::Small => (16, 16, 16),
        LabScale::Full => (64, 64, 64),
    };
    let a = gen::random_matrix(m, k, 0x7001);
    let b = gen::random_matrix(k, n, 0x7002);
    let c = golden(m, k, n, &a, &b);
    cases.push(case(
        "tile-exact",
        vec![
            Dataset::Matrix {
                rows: m,
                cols: k,
                data: a,
            },
            Dataset::Matrix {
                rows: k,
                cols: n,
                data: b,
            },
        ],
        Dataset::Matrix {
            rows: m,
            cols: n,
            data: c,
        },
    ));
    cases
}

/// Build the lab.
pub fn definition(scale: LabScale) -> LabDefinition {
    let mut spec = LabSpec::cuda_test("tiled-matmul");
    spec.check = float_check();
    make_lab(
        "tiled-matmul",
        "Tiled Matrix Multiplication",
        DESCRIPTION,
        &format!(
            "{}#define TILE 16\n\n__global__ void tiledMatMul(float* A, float* B, float* C, int m, int k, int n) {{\n    __shared__ float tileA[TILE][TILE];\n    __shared__ float tileB[TILE][TILE];\n    // TODO: cooperative loads, __syncthreads, partial dot products\n}}\n\nint main() {{\n    // same host structure as the basic lab\n    return 0;\n}}\n",
            skeleton_banner("Tiled Matrix Multiplication")
        ),
        datasets(scale),
        vec![
            "How many times is each element of A loaded from global memory, with and without tiling?",
            "Why does the kernel need two __syncthreads() per phase?",
        ],
        spec,
        Rubric {
            compile_points: 10.0,
            dataset_points: 70.0,
            question_points: 10.0,
            keyword_points: vec![
                ("__shared__".to_string(), 5.0),
                ("__syncthreads".to_string(), 5.0),
            ],
        },
    )
}

const DESCRIPTION: &str = "# Tiled Matrix Multiplication\n\nReimplement `C = A × B` with \
**shared-memory tiling**: each block cooperatively loads a `TILE × TILE` tile of `A` and `B` into \
`__shared__` arrays, synchronizes, accumulates partial dot products, and moves to the next phase.\n\n\
Tiling reduces global-memory traffic by a factor of `TILE`; the timing report will show the \
difference against your basic kernel.\n";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::grade_solution;
    use wb_worker::{execute_job, JobAction, JobRequest};

    #[test]
    fn reference_solution_passes() {
        grade_solution(&definition(LabScale::Small), SOLUTION);
    }

    #[test]
    fn missing_second_barrier_is_caught_or_wrong() {
        // Removing the second __syncthreads is the classic race; in the
        // lockstep simulator the tile is overwritten before slow lanes
        // read it only across phases, so the result goes wrong on
        // multi-phase datasets OR the divergence detector fires.
        let lab = definition(LabScale::Small);
        let buggy = {
            // Remove only the second barrier.
            let mut s = SOLUTION.to_string();
            let last = s.rfind("__syncthreads();").unwrap();
            s.replace_range(last..last + "__syncthreads();".len(), "");
            s
        };
        let req = JobRequest {
            job_id: 1,
            user: "t".into(),
            source: buggy,
            spec: lab.spec.clone(),
            datasets: lab.datasets.clone(),
            action: JobAction::FullGrade,
        };
        let out = execute_job(&req, &minicuda::DeviceConfig::test_small(), 0, 0);
        assert!(out.compiled());
        // Lockstep execution makes this particular race benign, but
        // the kernel must still produce correct results; accept either
        // a pass (benign here) or a failure — the important invariant
        // is that the worker does not crash. Kept as a behavioural
        // regression probe for the simulator.
        let _ = out.passed_count();
    }

    #[test]
    fn shared_memory_usage_visible_in_cost() {
        let lab = definition(LabScale::Small);
        let req = JobRequest {
            job_id: 1,
            user: "t".into(),
            source: SOLUTION.to_string(),
            spec: lab.spec.clone(),
            datasets: lab.datasets.clone(),
            action: JobAction::RunDataset(0),
        };
        let out = execute_job(&req, &minicuda::DeviceConfig::test_small(), 0, 0);
        assert!(out.datasets[0].cost.shared_accesses > 0);
        assert!(out.datasets[0].cost.barriers > 0);
    }

    #[test]
    fn tiled_beats_naive_on_global_traffic() {
        // The pedagogical point of the lab, verified by the cost model:
        // tiling cuts global transactions roughly by the tile factor.
        let tiled_lab = definition(LabScale::Small);
        let run = |source: &str, datasets| {
            let req = JobRequest {
                job_id: 1,
                user: "t".into(),
                source: source.to_string(),
                spec: tiled_lab.spec.clone(),
                datasets,
                action: JobAction::RunDataset(0),
            };
            execute_job(&req, &minicuda::DeviceConfig::test_small(), 0, 0)
        };
        let shared_sets = crate::matmul::datasets(LabScale::Small, 0x42);
        let naive = run(crate::matmul::SOLUTION, shared_sets.clone());
        let tiled = run(SOLUTION, shared_sets);
        let nt = naive.datasets[0].cost.global_transactions;
        let tt = tiled.datasets[0].cost.global_transactions;
        assert!(
            tt < nt,
            "tiled ({tt}) must move less global traffic than naive ({nt})"
        );
    }
}
