//! Vector Addition — the first real CUDA kernel (HPP MP1 / ECE 408).

use crate::common::{case, float_check, make_lab, skeleton_banner, LabScale};
use libwb::{gen, Dataset};
use wb_server::{LabDefinition, Rubric};
use wb_worker::{DatasetCase, LabSpec};

/// Reference solution.
pub const SOLUTION: &str = r#"
__global__ void vecAdd(float* a, float* b, float* out, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) { out[i] = a[i] + b[i]; }
}

int main() {
    int n;
    wbTime_start(Generic, "Importing data");
    float* hostA = wbImportVector(0, &n);
    float* hostB = wbImportVector(1, &n);
    float* hostC = (float*) malloc(n * sizeof(float));
    wbTime_stop(Generic, "Importing data");

    float* dA; float* dB; float* dC;
    wbTime_start(GPU, "Allocating GPU memory");
    cudaMalloc(&dA, n * sizeof(float));
    cudaMalloc(&dB, n * sizeof(float));
    cudaMalloc(&dC, n * sizeof(float));
    wbTime_stop(GPU, "Allocating GPU memory");

    wbTime_start(Copy, "Copying input to device");
    cudaMemcpy(dA, hostA, n * sizeof(float), cudaMemcpyHostToDevice);
    cudaMemcpy(dB, hostB, n * sizeof(float), cudaMemcpyHostToDevice);
    wbTime_stop(Copy, "Copying input to device");

    wbTime_start(Compute, "Kernel");
    vecAdd<<<(n + 255) / 256, 256>>>(dA, dB, dC, n);
    cudaDeviceSynchronize();
    wbTime_stop(Compute, "Kernel");

    wbTime_start(Copy, "Copying output to host");
    cudaMemcpy(hostC, dC, n * sizeof(float), cudaMemcpyDeviceToHost);
    wbTime_stop(Copy, "Copying output to host");

    wbSolution(hostC, n);

    cudaFree(dA); cudaFree(dB); cudaFree(dC);
    free(hostA); free(hostB); free(hostC);
    return 0;
}
"#;

/// Generate the dataset cases for a scale.
pub fn datasets(scale: LabScale) -> Vec<DatasetCase> {
    // Sizes deliberately include a non-multiple of the block size so
    // the boundary check matters, plus a single-element edge case.
    let sizes = match scale {
        LabScale::Small => vec![1usize, 37, 130],
        LabScale::Full => vec![1usize, 997, 16_384, 100_000],
    };
    sizes
        .into_iter()
        .enumerate()
        .map(|(k, n)| {
            let a = gen::random_vector(n, 0xA0 + k as u64);
            let b = gen::random_vector(n, 0xB0 + k as u64);
            let expected: Vec<f32> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
            case(
                &format!("d{k}"),
                vec![Dataset::Vector(a), Dataset::Vector(b)],
                Dataset::Vector(expected),
            )
        })
        .collect()
}

/// Build the lab.
pub fn definition(scale: LabScale) -> LabDefinition {
    let mut spec = LabSpec::cuda_test("vecadd");
    spec.check = float_check();
    make_lab(
        "vecadd",
        "Vector Addition",
        DESCRIPTION,
        &format!(
            "{}__global__ void vecAdd(float* a, float* b, float* out, int n) {{\n    // TODO: compute this thread's global index and guard the boundary\n}}\n\nint main() {{\n    int n;\n    float* hostA = wbImportVector(0, &n);\n    float* hostB = wbImportVector(1, &n);\n    float* hostC = (float*) malloc(n * sizeof(float));\n    // TODO: allocate device memory, copy, launch, copy back\n    wbSolution(hostC, n);\n    return 0;\n}}\n",
            skeleton_banner("Vector Addition")
        ),
        datasets(scale),
        vec![
            "How many floating point operations does your kernel perform?",
            "How many global memory reads does each thread perform?",
        ],
        spec,
        Rubric::default(),
    )
}

const DESCRIPTION: &str = "# Vector Addition\n\nImplement element-wise vector addition on the GPU.\n\n\
## Objective\n\n- allocate device memory with `cudaMalloc`\n- copy host memory with `cudaMemcpy`\n- \
compute a global thread index from `blockIdx`, `blockDim`, `threadIdx`\n- guard against \
out-of-bounds threads\n\n```c\nint i = blockIdx.x * blockDim.x + threadIdx.x;\n```\n";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::grade_solution;

    #[test]
    fn reference_solution_passes() {
        grade_solution(&definition(LabScale::Small), SOLUTION);
    }

    #[test]
    fn missing_boundary_check_fails_non_multiple_size() {
        use wb_worker::{execute_job, JobAction, JobRequest};
        let lab = definition(LabScale::Small);
        let buggy = SOLUTION.replace(
            "if (i < n) { out[i] = a[i] + b[i]; }",
            "out[i] = a[i] + b[i];",
        );
        let req = JobRequest {
            job_id: 1,
            user: "t".into(),
            source: buggy,
            spec: lab.spec.clone(),
            datasets: lab.datasets.clone(),
            action: JobAction::FullGrade,
        };
        let out = execute_job(&req, &minicuda::DeviceConfig::test_small(), 0, 0);
        // The unguarded kernel writes out of bounds on sizes that are
        // not multiples of the block size and the worker reports it.
        assert!(out.datasets.iter().any(|d| d.error.is_some()));
    }

    #[test]
    fn datasets_have_edge_sizes() {
        let cases = datasets(LabScale::Small);
        assert_eq!(cases[0].expected.len(), 1, "single-element edge case");
        assert!(cases.iter().any(|c| c.expected.len() % 256 != 0));
    }
}
