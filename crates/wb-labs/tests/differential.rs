//! Differential grading: every Table II lab must grade **identically**
//! under the tree-walking interpreter (`O0`) and the warp-batched IR
//! executor (`O1` unoptimized, `O2` with the full pass pipeline).
//!
//! "Identically" means everything a student or grader can see: check
//! verdicts, runtime diagnostics (message, position, and thread
//! attribution), and log output — plus the memory-system counters
//! (transactions, bank conflicts, barriers, atomics, divergence),
//! which lab feedback asserts on. Only `warp_instructions` and
//! `device_cycles` may differ: shrinking those is what the optimizer
//! is *for*.

use minicuda::{DeviceConfig, OptLevel};
use wb_labs::{definition, lab_ids, solution, LabScale};
use wb_worker::{execute_job, JobAction, JobOutcome, JobRequest};

fn graded(lab_id: &str, source: &str, opt: OptLevel) -> JobOutcome {
    let lab = definition(lab_id, LabScale::Small).unwrap();
    let mut spec = lab.spec;
    spec.opt_level = opt;
    let req = JobRequest {
        job_id: 1,
        user: "differential".into(),
        source: source.to_string(),
        spec,
        datasets: lab.datasets,
        action: JobAction::FullGrade,
    };
    execute_job(&req, &DeviceConfig::test_small(), 0, 0)
}

/// Assert two outcomes are indistinguishable to a student, dataset by
/// dataset. Cost is compared field-by-field so the executor-dependent
/// fields (`warp_instructions`, `device_cycles`, and the elapsed-cycle
/// makespan derived from them) can be exempted explicitly.
fn assert_same_grading(lab: &str, lvl: OptLevel, base: &JobOutcome, other: &JobOutcome) {
    assert_eq!(
        base.compile_error, other.compile_error,
        "{lab}@{lvl}: compile verdict diverged"
    );
    assert_eq!(
        base.datasets.len(),
        other.datasets.len(),
        "{lab}@{lvl}: dataset count diverged"
    );
    for (a, b) in base.datasets.iter().zip(&other.datasets) {
        let ctx = format!("{lab}@{lvl} dataset {}", a.name);
        assert_eq!(a.name, b.name, "{ctx}: name");
        assert_eq!(a.check, b.check, "{ctx}: check verdict");
        assert_eq!(a.error, b.error, "{ctx}: diagnostic");
        assert_eq!(a.log_text, b.log_text, "{ctx}: log output");
        let (ca, cb) = (&a.cost, &b.cost);
        assert_eq!(
            ca.global_transactions, cb.global_transactions,
            "{ctx}: global transactions"
        );
        assert_eq!(
            ca.global_accesses, cb.global_accesses,
            "{ctx}: global accesses"
        );
        assert_eq!(
            ca.shared_accesses, cb.shared_accesses,
            "{ctx}: shared accesses"
        );
        assert_eq!(
            ca.shared_conflicts, cb.shared_conflicts,
            "{ctx}: bank conflicts"
        );
        assert_eq!(ca.atomics, cb.atomics, "{ctx}: atomics");
        assert_eq!(ca.barriers, cb.barriers, "{ctx}: barriers");
        assert_eq!(
            ca.divergent_branches, cb.divergent_branches,
            "{ctx}: divergent branches"
        );
        assert_eq!(
            ca.kernel_launches, cb.kernel_launches,
            "{ctx}: kernel launches"
        );
        assert_eq!(ca.words_h2d, cb.words_h2d, "{ctx}: H2D words");
        assert_eq!(ca.words_d2h, cb.words_d2h, "{ctx}: D2H words");
    }
}

#[test]
fn every_lab_reference_grades_identically_at_all_levels() {
    for id in lab_ids() {
        let src = solution(id).unwrap();
        let o0 = graded(id, src, OptLevel::O0);
        assert!(o0.compiled(), "{id}: {:?}", o0.compile_error);
        assert_eq!(
            o0.passed_count(),
            o0.datasets.len(),
            "{id}: reference solution must pass at O0"
        );
        for lvl in [OptLevel::O1, OptLevel::O2] {
            let out = graded(id, src, lvl);
            assert_same_grading(id, lvl, &o0, &out);
        }
    }
}

/// Student-bug archetypes with runtime diagnostics: the *failure* must
/// also be identical — same message, same position, same thread.
#[test]
fn buggy_kernels_fail_identically_at_all_levels() {
    let cases: &[(&str, &str)] = &[
        // Missing boundary check → out-of-bounds global access.
        (
            "vecadd",
            r#"
            __global__ void vecAdd(float* a, float* b, float* out, int n) {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                out[i] = a[i] + b[i];
            }
            int main() {
                int n;
                float* a = wbImportVector(0, &n);
                float* b = wbImportVector(1, &n);
                float* out = (float*) malloc(n * sizeof(float));
                float* dA; float* dB; float* dC;
                cudaMalloc(&dA, n * sizeof(float));
                cudaMalloc(&dB, n * sizeof(float));
                cudaMalloc(&dC, n * sizeof(float));
                cudaMemcpy(dA, a, n * sizeof(float), cudaMemcpyHostToDevice);
                cudaMemcpy(dB, b, n * sizeof(float), cudaMemcpyHostToDevice);
                vecAdd<<<(n + 63) / 64, 64>>>(dA, dB, dC, n);
                cudaMemcpy(out, dC, n * sizeof(float), cudaMemcpyDeviceToHost);
                wbSolution(out, n);
                return 0;
            }
            "#,
        ),
        // Integer division by zero inside a divergent branch.
        (
            "vecadd",
            r#"
            __global__ void divZero(float* a, float* b, float* out, int n) {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                if (i < n) { out[i] = a[i] + (i / (i - 1)); }
            }
            int main() {
                int n;
                float* a = wbImportVector(0, &n);
                float* b = wbImportVector(1, &n);
                float* out = (float*) malloc(n * sizeof(float));
                float* dA; float* dB; float* dC;
                cudaMalloc(&dA, n * sizeof(float));
                cudaMalloc(&dB, n * sizeof(float));
                cudaMalloc(&dC, n * sizeof(float));
                cudaMemcpy(dA, a, n * sizeof(float), cudaMemcpyHostToDevice);
                cudaMemcpy(dB, b, n * sizeof(float), cudaMemcpyHostToDevice);
                divZero<<<(n + 63) / 64, 64>>>(dA, dB, dC, n);
                cudaMemcpy(out, dC, n * sizeof(float), cudaMemcpyDeviceToHost);
                wbSolution(out, n);
                return 0;
            }
            "#,
        ),
        // Dereferencing the host pointer on the device.
        (
            "vecadd",
            r#"
            __global__ void hostDeref(float* a, float* b, float* out, int n) {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                if (i < n) { out[i] = a[i] + b[i]; }
            }
            int main() {
                int n;
                float* a = wbImportVector(0, &n);
                float* b = wbImportVector(1, &n);
                float* out = (float*) malloc(n * sizeof(float));
                float* dC;
                cudaMalloc(&dC, n * sizeof(float));
                hostDeref<<<(n + 63) / 64, 64>>>(a, b, dC, n);
                cudaMemcpy(out, dC, n * sizeof(float), cudaMemcpyDeviceToHost);
                wbSolution(out, n);
                return 0;
            }
            "#,
        ),
        // Barrier inside a divergent branch.
        (
            "vecadd",
            r#"
            __global__ void divBarrier(float* a, float* b, float* out, int n) {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                if (threadIdx.x < 7) { __syncthreads(); }
                if (i < n) { out[i] = a[i] + b[i]; }
            }
            int main() {
                int n;
                float* a = wbImportVector(0, &n);
                float* b = wbImportVector(1, &n);
                float* out = (float*) malloc(n * sizeof(float));
                float* dA; float* dB; float* dC;
                cudaMalloc(&dA, n * sizeof(float));
                cudaMalloc(&dB, n * sizeof(float));
                cudaMalloc(&dC, n * sizeof(float));
                cudaMemcpy(dA, a, n * sizeof(float), cudaMemcpyHostToDevice);
                cudaMemcpy(dB, b, n * sizeof(float), cudaMemcpyHostToDevice);
                divBarrier<<<(n + 63) / 64, 64>>>(dA, dB, dC, n);
                cudaMemcpy(out, dC, n * sizeof(float), cudaMemcpyDeviceToHost);
                wbSolution(out, n);
                return 0;
            }
            "#,
        ),
    ];
    for (i, (lab, src)) in cases.iter().enumerate() {
        let o0 = graded(lab, src, OptLevel::O0);
        assert!(o0.compiled(), "case {i}: {:?}", o0.compile_error);
        assert!(
            o0.datasets.iter().any(|d| d.error.is_some()),
            "case {i} should produce a runtime diagnostic at O0"
        );
        for lvl in [OptLevel::O1, OptLevel::O2] {
            let out = graded(lab, src, lvl);
            assert_same_grading(&format!("buggy-case-{i}"), lvl, &o0, &out);
        }
    }
}
