//! Differential grading: every Table II lab must grade **identically**
//! under the tree-walking interpreter (`O0`) and the warp-batched IR
//! executor (`O1` unoptimized, `O2` with the full pass pipeline).
//!
//! "Identically" means everything a student or grader can see: check
//! verdicts, runtime diagnostics (message, position, and thread
//! attribution), and log output — plus the memory-system counters
//! (transactions, bank conflicts, barriers, atomics, divergence),
//! which lab feedback asserts on. Only `warp_instructions` and
//! `device_cycles` may differ: shrinking those is what the optimizer
//! is *for*.

use minicuda::{analyze_program, compile, CheckKind, DeviceConfig, Dialect, OptLevel};
use wb_labs::{definition, lab_ids, solution, LabScale};
use wb_worker::{execute_job, JobAction, JobOutcome, JobRequest};

fn graded(lab_id: &str, source: &str, opt: OptLevel) -> JobOutcome {
    let lab = definition(lab_id, LabScale::Small).unwrap();
    let mut spec = lab.spec;
    spec.opt_level = opt;
    let req = JobRequest {
        job_id: 1,
        user: "differential".into(),
        source: source.to_string(),
        spec,
        datasets: lab.datasets,
        action: JobAction::FullGrade,
    };
    execute_job(&req, &DeviceConfig::test_small(), 0, 0)
}

/// Assert two outcomes are indistinguishable to a student, dataset by
/// dataset. Cost is compared field-by-field so the executor-dependent
/// fields (`warp_instructions`, `device_cycles`, and the elapsed-cycle
/// makespan derived from them) can be exempted explicitly.
fn assert_same_grading(lab: &str, lvl: OptLevel, base: &JobOutcome, other: &JobOutcome) {
    assert_eq!(
        base.compile_error, other.compile_error,
        "{lab}@{lvl}: compile verdict diverged"
    );
    assert_eq!(
        base.datasets.len(),
        other.datasets.len(),
        "{lab}@{lvl}: dataset count diverged"
    );
    for (a, b) in base.datasets.iter().zip(&other.datasets) {
        let ctx = format!("{lab}@{lvl} dataset {}", a.name);
        assert_eq!(a.name, b.name, "{ctx}: name");
        assert_eq!(a.check, b.check, "{ctx}: check verdict");
        assert_eq!(a.error, b.error, "{ctx}: diagnostic");
        assert_eq!(a.log_text, b.log_text, "{ctx}: log output");
        let (ca, cb) = (&a.cost, &b.cost);
        assert_eq!(
            ca.global_transactions, cb.global_transactions,
            "{ctx}: global transactions"
        );
        assert_eq!(
            ca.global_accesses, cb.global_accesses,
            "{ctx}: global accesses"
        );
        assert_eq!(
            ca.shared_accesses, cb.shared_accesses,
            "{ctx}: shared accesses"
        );
        assert_eq!(
            ca.shared_conflicts, cb.shared_conflicts,
            "{ctx}: bank conflicts"
        );
        assert_eq!(ca.atomics, cb.atomics, "{ctx}: atomics");
        assert_eq!(ca.barriers, cb.barriers, "{ctx}: barriers");
        assert_eq!(
            ca.divergent_branches, cb.divergent_branches,
            "{ctx}: divergent branches"
        );
        assert_eq!(
            ca.kernel_launches, cb.kernel_launches,
            "{ctx}: kernel launches"
        );
        assert_eq!(ca.words_h2d, cb.words_h2d, "{ctx}: H2D words");
        assert_eq!(ca.words_d2h, cb.words_d2h, "{ctx}: D2H words");
    }
}

#[test]
fn every_lab_reference_grades_identically_at_all_levels() {
    for id in lab_ids() {
        let src = solution(id).unwrap();
        let o0 = graded(id, src, OptLevel::O0);
        assert!(o0.compiled(), "{id}: {:?}", o0.compile_error);
        assert_eq!(
            o0.passed_count(),
            o0.datasets.len(),
            "{id}: reference solution must pass at O0"
        );
        for lvl in [OptLevel::O1, OptLevel::O2] {
            let out = graded(id, src, lvl);
            assert_same_grading(id, lvl, &o0, &out);
        }
    }
}

/// Student-bug archetypes with runtime diagnostics: the *failure* must
/// also be identical — same message, same position, same thread.
#[test]
fn buggy_kernels_fail_identically_at_all_levels() {
    let cases: &[(&str, &str)] = &[
        // Missing boundary check → out-of-bounds global access.
        (
            "vecadd",
            r#"
            __global__ void vecAdd(float* a, float* b, float* out, int n) {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                out[i] = a[i] + b[i];
            }
            int main() {
                int n;
                float* a = wbImportVector(0, &n);
                float* b = wbImportVector(1, &n);
                float* out = (float*) malloc(n * sizeof(float));
                float* dA; float* dB; float* dC;
                cudaMalloc(&dA, n * sizeof(float));
                cudaMalloc(&dB, n * sizeof(float));
                cudaMalloc(&dC, n * sizeof(float));
                cudaMemcpy(dA, a, n * sizeof(float), cudaMemcpyHostToDevice);
                cudaMemcpy(dB, b, n * sizeof(float), cudaMemcpyHostToDevice);
                vecAdd<<<(n + 63) / 64, 64>>>(dA, dB, dC, n);
                cudaMemcpy(out, dC, n * sizeof(float), cudaMemcpyDeviceToHost);
                wbSolution(out, n);
                return 0;
            }
            "#,
        ),
        // Integer division by zero inside a divergent branch.
        (
            "vecadd",
            r#"
            __global__ void divZero(float* a, float* b, float* out, int n) {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                if (i < n) { out[i] = a[i] + (i / (i - 1)); }
            }
            int main() {
                int n;
                float* a = wbImportVector(0, &n);
                float* b = wbImportVector(1, &n);
                float* out = (float*) malloc(n * sizeof(float));
                float* dA; float* dB; float* dC;
                cudaMalloc(&dA, n * sizeof(float));
                cudaMalloc(&dB, n * sizeof(float));
                cudaMalloc(&dC, n * sizeof(float));
                cudaMemcpy(dA, a, n * sizeof(float), cudaMemcpyHostToDevice);
                cudaMemcpy(dB, b, n * sizeof(float), cudaMemcpyHostToDevice);
                divZero<<<(n + 63) / 64, 64>>>(dA, dB, dC, n);
                cudaMemcpy(out, dC, n * sizeof(float), cudaMemcpyDeviceToHost);
                wbSolution(out, n);
                return 0;
            }
            "#,
        ),
        // Dereferencing the host pointer on the device.
        (
            "vecadd",
            r#"
            __global__ void hostDeref(float* a, float* b, float* out, int n) {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                if (i < n) { out[i] = a[i] + b[i]; }
            }
            int main() {
                int n;
                float* a = wbImportVector(0, &n);
                float* b = wbImportVector(1, &n);
                float* out = (float*) malloc(n * sizeof(float));
                float* dC;
                cudaMalloc(&dC, n * sizeof(float));
                hostDeref<<<(n + 63) / 64, 64>>>(a, b, dC, n);
                cudaMemcpy(out, dC, n * sizeof(float), cudaMemcpyDeviceToHost);
                wbSolution(out, n);
                return 0;
            }
            "#,
        ),
        // Barrier inside a divergent branch.
        (
            "vecadd",
            r#"
            __global__ void divBarrier(float* a, float* b, float* out, int n) {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                if (threadIdx.x < 7) { __syncthreads(); }
                if (i < n) { out[i] = a[i] + b[i]; }
            }
            int main() {
                int n;
                float* a = wbImportVector(0, &n);
                float* b = wbImportVector(1, &n);
                float* out = (float*) malloc(n * sizeof(float));
                float* dA; float* dB; float* dC;
                cudaMalloc(&dA, n * sizeof(float));
                cudaMalloc(&dB, n * sizeof(float));
                cudaMalloc(&dC, n * sizeof(float));
                cudaMemcpy(dA, a, n * sizeof(float), cudaMemcpyHostToDevice);
                cudaMemcpy(dB, b, n * sizeof(float), cudaMemcpyHostToDevice);
                divBarrier<<<(n + 63) / 64, 64>>>(dA, dB, dC, n);
                cudaMemcpy(out, dC, n * sizeof(float), cudaMemcpyDeviceToHost);
                wbSolution(out, n);
                return 0;
            }
            "#,
        ),
    ];
    for (i, (lab, src)) in cases.iter().enumerate() {
        let o0 = graded(lab, src, OptLevel::O0);
        assert!(o0.compiled(), "case {i}: {:?}", o0.compile_error);
        assert!(
            o0.datasets.iter().any(|d| d.error.is_some()),
            "case {i} should produce a runtime diagnostic at O0"
        );
        for lvl in [OptLevel::O1, OptLevel::O2] {
            let out = graded(lab, src, lvl);
            assert_same_grading(&format!("buggy-case-{i}"), lvl, &o0, &out);
        }
    }
}

// ---------------------------------------------------------------------
// Static verifier verdicts
// ---------------------------------------------------------------------

/// A statically-catchable student-bug archetype: a complete program
/// whose kernel the verifier must flag with exactly the given checker.
fn verifier_findings(kernel: &str) -> Vec<minicuda::Finding> {
    let src = format!("{kernel}\nint main() {{ return 0; }}");
    let program = compile(&src, Dialect::Cuda).expect("archetype must compile");
    analyze_program(&program)
}

/// Every archetype the bench's catch-rate gate counts, as unit checks:
/// the verifier flags each with the right checker kind.
#[test]
fn verifier_flags_every_statically_catchable_archetype() {
    let archetypes: &[(&str, CheckKind, &str)] = &[
        (
            "ww-shared-race",
            CheckKind::SharedRace,
            r#"__global__ void k(float* a, int n) {
                __shared__ float acc[32];
                int t = threadIdx.x;
                acc[0] = a[t];
                if (t < n) { a[t] = acc[0]; }
            }"#,
        ),
        (
            "rw-shared-race",
            CheckKind::SharedRace,
            r#"__global__ void k(float* a, int n) {
                __shared__ float buf[128];
                int t = threadIdx.x;
                buf[t] = a[t];
                a[t] = buf[t + 1];
            }"#,
        ),
        (
            "barrier-in-divergent-if",
            CheckKind::BarrierDivergence,
            r#"__global__ void k(float* a, int n) {
                int t = threadIdx.x;
                if (t < 7) { __syncthreads(); }
                a[t] = 1.0;
            }"#,
        ),
        (
            "barrier-in-nonuniform-loop",
            CheckKind::BarrierDivergence,
            r#"__global__ void k(float* a, int n) {
                int i = threadIdx.x;
                while (i > 0) {
                    __syncthreads();
                    i = i - 1;
                }
            }"#,
        ),
        (
            "off-by-one-tile-oob",
            CheckKind::OutOfBounds,
            r#"__global__ void k(float* a, int n) {
                __shared__ float tile[16];
                int t = threadIdx.x;
                if (t <= 16) { tile[t] = a[t]; }
            }"#,
        ),
        (
            "loop-bound-tile-oob",
            CheckKind::OutOfBounds,
            r#"__global__ void k(float* a, int n) {
                __shared__ float tile[16];
                if (threadIdx.x == 0) {
                    for (int i = 0; i <= 16; i++) { tile[i] = 0.0; }
                }
            }"#,
        ),
        (
            "uninit-read",
            CheckKind::UninitRead,
            r#"__global__ void k(float* a, int n) {
                int best;
                if (threadIdx.x < n) { best = 3; }
                a[threadIdx.x] = best;
                best = 0;
            }"#,
        ),
    ];
    for (name, expected, kernel) in archetypes {
        let findings = verifier_findings(kernel);
        assert!(
            findings.iter().any(|f| f.kind == *expected),
            "{name}: expected a {expected:?} finding, got {findings:?}"
        );
        for f in &findings {
            assert!(f.diag.pos.line > 0, "{name}: finding must carry a position");
        }
    }
}

/// False-positive traps: correct idioms that *look* like the archetypes
/// above. The verifier must stay silent on every one.
#[test]
fn verifier_stays_silent_on_false_positive_traps() {
    let traps: &[(&str, &str)] = &[
        (
            "guarded-access",
            r#"__global__ void k(float* a, int n) {
                __shared__ float buf[64];
                int t = threadIdx.x;
                if (t < 64) { buf[t] = a[t]; }
            }"#,
        ),
        (
            "affine-disjoint-slots",
            r#"__global__ void k(float* a, int n) {
                __shared__ float buf[128];
                int t = threadIdx.x;
                buf[t] = a[t];
                a[t] = buf[t] * 2.0;
            }"#,
        ),
        (
            "single-writer-guard",
            r#"__global__ void k(float* a, int n) {
                __shared__ float total[1];
                if (threadIdx.x == 0) { total[0] = 0.0; }
            }"#,
        ),
        (
            "barrier-separated-phases",
            r#"__global__ void k(float* a, int n) {
                __shared__ float buf[64];
                int t = threadIdx.x;
                buf[t] = a[t];
                __syncthreads();
                a[t] = buf[63 - t];
            }"#,
        ),
        (
            "uniform-loop-barrier",
            r#"__global__ void k(float* a, int n) {
                __shared__ float buf[64];
                int t = threadIdx.x;
                buf[t] = a[t];
                for (int s = 1; s < 64; s = s * 2) {
                    __syncthreads();
                    if (t >= s) { a[t] = buf[t - s]; }
                }
            }"#,
        ),
    ];
    for (name, kernel) in traps {
        let findings = verifier_findings(kernel);
        assert!(findings.is_empty(), "{name}: false positives {findings:?}");
    }
}

/// The acceptance bar the bench gate enforces in CI, as a plain test:
/// all fifteen reference solutions are finding-free.
#[test]
fn verifier_reports_zero_findings_on_every_reference_lab() {
    for id in lab_ids() {
        let src = solution(id).unwrap();
        let dialect = definition(id, LabScale::Small).unwrap().spec.dialect;
        let program = compile(src, dialect).expect(id);
        let findings = analyze_program(&program);
        assert!(findings.is_empty(), "{id}: false positives {findings:?}");
    }
}

fn graded_with_policy(
    lab_id: &str,
    source: &str,
    opt: OptLevel,
    policy: minicuda::AnalysisPolicy,
) -> JobOutcome {
    let lab = definition(lab_id, LabScale::Small).unwrap();
    let mut spec = lab.spec;
    spec.opt_level = opt;
    spec.analysis = policy;
    let req = JobRequest {
        job_id: 1,
        user: "differential".into(),
        source: source.to_string(),
        spec,
        datasets: lab.datasets,
        action: JobAction::FullGrade,
    };
    execute_job(&req, &DeviceConfig::test_small(), 0, 0)
}

/// A flagged-but-gradeable source: the student's real (correct) kernel
/// plus a dead audit-probe kernel that trips the barrier-divergence
/// checker. The probe is never launched, so grading is untouched while
/// warn-mode analysis has something to say.
fn with_audit_probe(solution: &str) -> String {
    format!(
        "__global__ void wbAuditProbe(float* unused) {{\n\
             if (threadIdx.x < 7) {{ __syncthreads(); }}\n\
         }}\n{solution}"
    )
}

/// Warn-mode must be observationally invisible to grading: at every
/// opt level, a `Warn` run and an `Off` run of the *same* source —
/// including one the verifier actually flags — produce bit-identical
/// verdicts, diagnostics, logs, and memory counters. Only the
/// `analysis` field itself may differ; that is the whole point.
#[test]
fn warn_mode_analysis_never_perturbs_grading() {
    use minicuda::AnalysisPolicy;
    for id in ["vecadd", "scan"] {
        let clean = solution(id).unwrap().to_string();
        let flagged = with_audit_probe(&clean);
        for (src, expect_flag) in [(&clean, false), (&flagged, true)] {
            for lvl in [OptLevel::O0, OptLevel::O1, OptLevel::O2] {
                let off = graded_with_policy(id, src, lvl, AnalysisPolicy::Off);
                let warn = graded_with_policy(id, src, lvl, AnalysisPolicy::Warn);
                assert_same_grading(id, lvl, &off, &warn);
                assert_eq!(off.passed_count(), warn.passed_count(), "{id}@{lvl}");
                assert!(off.analysis.is_empty(), "{id}@{lvl}: Off must not analyze");
                if expect_flag {
                    assert!(
                        warn.analysis
                            .iter()
                            .any(|f| f.kind == CheckKind::BarrierDivergence),
                        "{id}@{lvl}: probe must be flagged under Warn"
                    );
                    assert_eq!(
                        warn.passed_count(),
                        warn.datasets.len(),
                        "{id}@{lvl}: flagged-but-correct code still passes under Warn"
                    );
                }
            }
        }
    }
}

/// Deny-mode is a compile-phase rejection: deterministic, explained by
/// the rendered findings, and it never reaches the datasets.
#[test]
fn deny_mode_rejects_flagged_code_before_datasets() {
    use minicuda::AnalysisPolicy;
    let flagged = with_audit_probe(solution("vecadd").unwrap());
    for lvl in [OptLevel::O0, OptLevel::O2] {
        let a = graded_with_policy("vecadd", &flagged, lvl, AnalysisPolicy::Deny);
        let b = graded_with_policy("vecadd", &flagged, lvl, AnalysisPolicy::Deny);
        assert!(!a.compiled(), "deny must reject");
        assert_eq!(
            a.compile_error, b.compile_error,
            "deny must be deterministic"
        );
        assert!(a.datasets.is_empty(), "deny must stop before datasets");
        let report = a.compile_error.unwrap();
        assert!(
            report.contains("[barrier-divergence]"),
            "deny report names the check: {report}"
        );
        // Clean code is untouched by Deny.
        let clean = graded_with_policy(
            "vecadd",
            solution("vecadd").unwrap(),
            lvl,
            AnalysisPolicy::Deny,
        );
        assert!(clean.compiled());
        assert_eq!(clean.passed_count(), clean.datasets.len());
    }
}
