//! Property-based tests: the simulated GPU agrees with the Rust golden
//! models on randomized lab workloads (small sizes for speed).

use libwb::{gen, Dataset};
use minicuda::{compile, DeviceConfig, Dialect, RunOptions};
use proptest::prelude::*;

fn run_solution(lab: &str, inputs: Vec<Dataset>) -> Option<Dataset> {
    let program = compile(wb_labs::solution(lab).unwrap(), dialect_of(lab)).unwrap();
    let opts = RunOptions {
        device: DeviceConfig::test_small(),
        ..Default::default()
    };
    let out = minicuda::run(&program, &inputs, &opts);
    assert!(out.ok(), "{lab}: {:?}", out.error);
    out.solution
}

fn dialect_of(lab: &str) -> Dialect {
    if lab == "opencl-vecadd" {
        Dialect::OpenCl
    } else {
        Dialect::Cuda
    }
}

fn close(a: &[f32], b: &[f32], tol: f32) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| (x - y).abs() <= tol + tol * y.abs())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// GPU vector addition equals element-wise addition for any size
    /// and seed (including awkward non-multiples of the block size).
    #[test]
    fn vecadd_matches_oracle(n in 1usize..400, seed in any::<u64>()) {
        let a = gen::random_vector(n, seed);
        let b = gen::random_vector(n, seed ^ 0x9e37);
        let want: Vec<f32> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        let got = run_solution(
            "vecadd",
            vec![Dataset::Vector(a), Dataset::Vector(b)],
        );
        match got {
            Some(Dataset::Vector(v)) => prop_assert!(close(&v, &want, 1e-4)),
            other => prop_assert!(false, "unexpected {other:?}"),
        }
    }

    /// GPU inclusive scan equals the sequential prefix sum.
    #[test]
    fn scan_matches_oracle(n in 1usize..513, seed in any::<u64>()) {
        let input = gen::random_positive_vector(n, seed);
        let want = wb_labs::scan::golden(&input);
        let got = run_solution("scan", vec![Dataset::Vector(input)]);
        match got {
            Some(Dataset::Vector(v)) => {
                prop_assert!(close(&v, &want, 1e-2), "n={n}");
            }
            other => prop_assert!(false, "unexpected {other:?}"),
        }
    }

    /// Tiled matmul equals the golden model on random ragged shapes.
    #[test]
    fn tiled_matmul_matches_oracle(
        m in 1usize..40,
        k in 1usize..24,
        n in 1usize..40,
        seed in any::<u64>(),
    ) {
        let a = gen::random_matrix(m, k, seed);
        let b = gen::random_matrix(k, n, seed ^ 0xff);
        let want = wb_labs::matmul::golden(m, k, n, &a, &b);
        let got = run_solution(
            "tiled-matmul",
            vec![
                Dataset::Matrix { rows: m, cols: k, data: a },
                Dataset::Matrix { rows: k, cols: n, data: b },
            ],
        );
        match got {
            Some(Dataset::Matrix { rows, cols, data }) => {
                prop_assert_eq!((rows, cols), (m, n));
                prop_assert!(close(&data, &want, 1e-3), "{m}x{k}x{n}");
            }
            other => prop_assert!(false, "unexpected {other:?}"),
        }
    }

    /// GPU binning equals the golden counter for any point set; counts
    /// are exact because integer atomics commute.
    #[test]
    fn binning_matches_oracle(n in 1usize..600, seed in any::<u64>()) {
        let points = gen::random_positive_vector(n, seed);
        let want = wb_labs::binning::golden(&points);
        let got = run_solution("binning", vec![Dataset::Vector(points)]);
        match got {
            Some(Dataset::IntVector(v)) => prop_assert_eq!(v, want),
            other => prop_assert!(false, "unexpected {other:?}"),
        }
    }

    /// GPU BFS levels equal the sequential BFS on random connected
    /// graphs.
    #[test]
    fn bfs_matches_oracle(n in 1usize..60, p in 0.0f64..0.15, seed in any::<u64>()) {
        let g = gen::random_connected_graph(n, p, seed);
        let want = g.bfs_levels(0).unwrap();
        let got = run_solution("bfs", vec![Dataset::Graph(g)]);
        match got {
            Some(Dataset::IntVector(v)) => prop_assert_eq!(v, want),
            other => prop_assert!(false, "unexpected {other:?}"),
        }
    }

    /// GPU stencil equals the golden model, boundaries included.
    #[test]
    fn stencil_matches_oracle(n in 1usize..700, seed in any::<u64>()) {
        let input = gen::random_vector(n, seed);
        let want = wb_labs::stencil::golden(&input);
        let got = run_solution("stencil", vec![Dataset::Vector(input)]);
        match got {
            Some(Dataset::Vector(v)) => prop_assert!(close(&v, &want, 1e-4)),
            other => prop_assert!(false, "unexpected {other:?}"),
        }
    }

    /// The two-rank MPI stencil equals the single-machine golden model
    /// for any vector length ≥ 2 (the split needs one element each).
    #[test]
    fn mpi_stencil_matches_oracle(n in 2usize..200, seed in any::<u64>()) {
        let input = gen::random_vector(n, seed);
        let want = wb_labs::mpi_stencil::golden(&input);
        let program =
            compile(wb_labs::solution("mpi-stencil").unwrap(), Dialect::Cuda).unwrap();
        let opts = RunOptions {
            device: DeviceConfig::test_small(),
            world_size: 2,
            ..Default::default()
        };
        let out = minicuda::run(&program, &[Dataset::Vector(input)], &opts);
        prop_assert!(out.ok(), "{:?}", out.error);
        match out.solution {
            Some(Dataset::Vector(v)) => prop_assert!(close(&v, &want, 1e-4), "n={n}"),
            other => prop_assert!(false, "unexpected {other:?}"),
        }
    }
}
