//! Property-based tests: the simulated GPU agrees with the Rust golden
//! models on randomized lab workloads (small sizes for speed), and the
//! static verifier's policy contract holds on fuzzed kernels — `Warn`
//! is observationally identical to `Off` for grading, and `Deny` is a
//! deterministic compile-phase rejection.

use libwb::{gen, Dataset};
use minicuda::{
    compile, AnalysisPolicy, CheckKind, DeviceConfig, Dialect, OptLevel, Phase, RunOptions,
};
use proptest::prelude::*;
use wb_worker::{execute_job, JobAction, JobOutcome, JobRequest};

fn run_solution(lab: &str, inputs: Vec<Dataset>) -> Option<Dataset> {
    let program = compile(wb_labs::solution(lab).unwrap(), dialect_of(lab)).unwrap();
    let opts = RunOptions {
        device: DeviceConfig::test_small(),
        ..Default::default()
    };
    let out = minicuda::run(&program, &inputs, &opts);
    assert!(out.ok(), "{lab}: {:?}", out.error);
    out.solution
}

fn dialect_of(lab: &str) -> Dialect {
    if lab == "opencl-vecadd" {
        Dialect::OpenCl
    } else {
        Dialect::Cuda
    }
}

fn close(a: &[f32], b: &[f32], tol: f32) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| (x - y).abs() <= tol + tol * y.abs())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// GPU vector addition equals element-wise addition for any size
    /// and seed (including awkward non-multiples of the block size).
    #[test]
    fn vecadd_matches_oracle(n in 1usize..400, seed in any::<u64>()) {
        let a = gen::random_vector(n, seed);
        let b = gen::random_vector(n, seed ^ 0x9e37);
        let want: Vec<f32> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        let got = run_solution(
            "vecadd",
            vec![Dataset::Vector(a), Dataset::Vector(b)],
        );
        match got {
            Some(Dataset::Vector(v)) => prop_assert!(close(&v, &want, 1e-4)),
            other => prop_assert!(false, "unexpected {other:?}"),
        }
    }

    /// GPU inclusive scan equals the sequential prefix sum.
    #[test]
    fn scan_matches_oracle(n in 1usize..513, seed in any::<u64>()) {
        let input = gen::random_positive_vector(n, seed);
        let want = wb_labs::scan::golden(&input);
        let got = run_solution("scan", vec![Dataset::Vector(input)]);
        match got {
            Some(Dataset::Vector(v)) => {
                prop_assert!(close(&v, &want, 1e-2), "n={n}");
            }
            other => prop_assert!(false, "unexpected {other:?}"),
        }
    }

    /// Tiled matmul equals the golden model on random ragged shapes.
    #[test]
    fn tiled_matmul_matches_oracle(
        m in 1usize..40,
        k in 1usize..24,
        n in 1usize..40,
        seed in any::<u64>(),
    ) {
        let a = gen::random_matrix(m, k, seed);
        let b = gen::random_matrix(k, n, seed ^ 0xff);
        let want = wb_labs::matmul::golden(m, k, n, &a, &b);
        let got = run_solution(
            "tiled-matmul",
            vec![
                Dataset::Matrix { rows: m, cols: k, data: a },
                Dataset::Matrix { rows: k, cols: n, data: b },
            ],
        );
        match got {
            Some(Dataset::Matrix { rows, cols, data }) => {
                prop_assert_eq!((rows, cols), (m, n));
                prop_assert!(close(&data, &want, 1e-3), "{m}x{k}x{n}");
            }
            other => prop_assert!(false, "unexpected {other:?}"),
        }
    }

    /// GPU binning equals the golden counter for any point set; counts
    /// are exact because integer atomics commute.
    #[test]
    fn binning_matches_oracle(n in 1usize..600, seed in any::<u64>()) {
        let points = gen::random_positive_vector(n, seed);
        let want = wb_labs::binning::golden(&points);
        let got = run_solution("binning", vec![Dataset::Vector(points)]);
        match got {
            Some(Dataset::IntVector(v)) => prop_assert_eq!(v, want),
            other => prop_assert!(false, "unexpected {other:?}"),
        }
    }

    /// GPU BFS levels equal the sequential BFS on random connected
    /// graphs.
    #[test]
    fn bfs_matches_oracle(n in 1usize..60, p in 0.0f64..0.15, seed in any::<u64>()) {
        let g = gen::random_connected_graph(n, p, seed);
        let want = g.bfs_levels(0).unwrap();
        let got = run_solution("bfs", vec![Dataset::Graph(g)]);
        match got {
            Some(Dataset::IntVector(v)) => prop_assert_eq!(v, want),
            other => prop_assert!(false, "unexpected {other:?}"),
        }
    }

    /// GPU stencil equals the golden model, boundaries included.
    #[test]
    fn stencil_matches_oracle(n in 1usize..700, seed in any::<u64>()) {
        let input = gen::random_vector(n, seed);
        let want = wb_labs::stencil::golden(&input);
        let got = run_solution("stencil", vec![Dataset::Vector(input)]);
        match got {
            Some(Dataset::Vector(v)) => prop_assert!(close(&v, &want, 1e-4)),
            other => prop_assert!(false, "unexpected {other:?}"),
        }
    }

    /// The two-rank MPI stencil equals the single-machine golden model
    /// for any vector length ≥ 2 (the split needs one element each).
    #[test]
    fn mpi_stencil_matches_oracle(n in 2usize..200, seed in any::<u64>()) {
        let input = gen::random_vector(n, seed);
        let want = wb_labs::mpi_stencil::golden(&input);
        let program =
            compile(wb_labs::solution("mpi-stencil").unwrap(), Dialect::Cuda).unwrap();
        let opts = RunOptions {
            device: DeviceConfig::test_small(),
            world_size: 2,
            ..Default::default()
        };
        let out = minicuda::run(&program, &[Dataset::Vector(input)], &opts);
        prop_assert!(out.ok(), "{:?}", out.error);
        match out.solution {
            Some(Dataset::Vector(v)) => prop_assert!(close(&v, &want, 1e-4), "n={n}"),
            other => prop_assert!(false, "unexpected {other:?}"),
        }
    }
}

/// Grade the vecadd reference plus a fuzzed probe kernel under a given
/// analysis policy. The probe is never launched, so grading semantics
/// are fixed while the verifier's verdict varies with the probe shape.
fn graded_with_probe(probe: &str, opt: OptLevel, policy: AnalysisPolicy) -> JobOutcome {
    let lab = wb_labs::definition("vecadd", wb_labs::LabScale::Small).unwrap();
    let mut spec = lab.spec;
    spec.opt_level = opt;
    spec.analysis = policy;
    let req = JobRequest {
        job_id: 1,
        user: "properties".into(),
        source: format!("{probe}\n{}", wb_labs::solution("vecadd").unwrap()),
        spec,
        datasets: lab.datasets,
        action: JobAction::FullGrade,
    };
    execute_job(&req, &DeviceConfig::test_small(), 0, 0)
}

/// Everything a student can see of a grade, minus the advisory
/// `analysis` field (the one thing `Warn` is *allowed* to add).
fn grading_view(o: &JobOutcome) -> (Option<String>, Vec<String>) {
    (
        o.compile_error.clone(),
        o.datasets
            .iter()
            .map(|d| {
                format!(
                    "{} {:?} {:?} {:?} {:?}",
                    d.name, d.check, d.error, d.log_text, d.timing_text
                )
            })
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Warn-mode analysis is observationally invisible: for fuzzed
    /// probe kernels — flagged (divergent barrier) and clean alike —
    /// grading under `Warn` is bit-identical to `Off` at both executor
    /// generations, and only the advisory `analysis` field differs.
    #[test]
    fn warn_grades_identically_to_off(guard in 1u32..32, divergent in any::<bool>()) {
        let probe = if divergent {
            format!(
                "__global__ void wbProbe(float* unused) {{\n\
                     if (threadIdx.x < {guard}) {{ __syncthreads(); }}\n\
                 }}"
            )
        } else {
            format!(
                "__global__ void wbProbe(float* unused) {{\n\
                     if (threadIdx.x < {guard}) {{ unused[0] = 1.0; }}\n\
                 }}"
            )
        };
        for opt in [OptLevel::O0, OptLevel::O2] {
            let off = graded_with_probe(&probe, opt, AnalysisPolicy::Off);
            let warn = graded_with_probe(&probe, opt, AnalysisPolicy::Warn);
            prop_assert_eq!(grading_view(&off), grading_view(&warn), "{:?}", opt);
            prop_assert!(off.analysis.is_empty(), "Off must not analyze");
            prop_assert_eq!(
                !warn.analysis.is_empty(),
                divergent,
                "verifier verdict must track the probe shape at {:?}",
                opt
            );
            prop_assert!(warn.compiled(), "Warn must never reject");
            prop_assert_eq!(warn.passed_count(), warn.datasets.len());
        }
    }

    /// Deny-mode is a deterministic compile-phase rejection carrying a
    /// student-usable diagnostic: `Phase::Analysis`, a real source
    /// position, and a witness thread for the divergent barrier.
    #[test]
    fn deny_rejects_deterministically_with_attributed_diags(guard in 1u32..32) {
        let probe = format!(
            "__global__ void wbProbe(float* unused) {{\n\
                 if (threadIdx.x < {guard}) {{ __syncthreads(); }}\n\
             }}"
        );
        for opt in [OptLevel::O0, OptLevel::O2] {
            let a = graded_with_probe(&probe, opt, AnalysisPolicy::Deny);
            let b = graded_with_probe(&probe, opt, AnalysisPolicy::Deny);
            prop_assert!(!a.compiled(), "Deny must reject the flagged probe");
            prop_assert_eq!(&a.compile_error, &b.compile_error, "nondeterministic denial");
            prop_assert!(a.datasets.is_empty(), "Deny must stop before datasets");
            let finding = a
                .analysis
                .iter()
                .find(|f| f.kind == CheckKind::BarrierDivergence)
                .expect("barrier-divergence finding");
            prop_assert_eq!(finding.diag.phase, Phase::Analysis);
            prop_assert!(finding.diag.pos.line > 0, "finding needs a source position");
            prop_assert!(
                finding.diag.thread.is_some(),
                "divergence finding needs a witness thread"
            );
        }
    }
}
