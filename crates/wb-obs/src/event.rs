//! Span phases, annotations, and the sequence-numbered event record.

use serde::{Deserialize, Serialize};

/// A job-lifecycle phase boundary.
///
/// The canonical chain is `Queued → Dispatched → Compiled → Graded`
/// (or `Failed` as the terminal when the compile or the dispatch gives
/// up). `Dispatched` may repeat when a delivery times out and the
/// broker redelivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobPhase {
    /// Accepted into the queue / assigned to a worker pool.
    Queued,
    /// Handed to a concrete worker.
    Dispatched,
    /// Source compiled successfully.
    Compiled,
    /// Terminal: the job ran to completion and produced a grade
    /// (a failing grade is still a grade).
    Graded,
    /// Terminal: the job cannot produce a grade — compile error or the
    /// dispatch layer gave up on it.
    Failed,
}

impl JobPhase {
    /// Ordering rank along the canonical chain; both terminals share
    /// the final rank.
    pub fn rank(self) -> u8 {
        match self {
            JobPhase::Queued => 0,
            JobPhase::Dispatched => 1,
            JobPhase::Compiled => 2,
            JobPhase::Graded | JobPhase::Failed => 3,
        }
    }

    /// True for `Graded` / `Failed`.
    pub fn is_terminal(self) -> bool {
        self.rank() == 3
    }
}

/// A non-phase fact attached to a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Annotation {
    /// A cache tier served the result without executing.
    CacheHit,
    /// The lookup piggybacked on another in-flight execution.
    Coalesced,
    /// The job was delivered again after a failed attempt.
    Retry,
    /// The job survived a broker zone failover.
    Failover,
    /// Admission control downgraded a full-grade request to
    /// compile-only inside the brown-out band.
    BrownOut,
    /// Admission control refused the job outright (backlog budget
    /// exhausted); the submitter was told to retry later.
    Shed,
    /// The static verifier reported findings for this job's kernels.
    AnalysisFlagged,
}

/// What an [`Event`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// A span phase boundary.
    Phase(JobPhase),
    /// A span annotation.
    Annotated(Annotation),
    /// A job exhausted its retry budget and was dead-lettered. The
    /// event's `job_id` is the *broker delivery id* (the broker is
    /// payload-agnostic and cannot see platform job ids).
    DeadLettered,
    /// The autoscaler changed the fleet size.
    Autoscale {
        /// Fleet size before the decision.
        from: u64,
        /// Fleet size after the decision.
        to: u64,
    },
}

/// One entry in the bounded event log.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Event {
    /// Global, strictly increasing sequence number.
    pub seq: u64,
    /// Virtual ms when recorded.
    pub at_ms: u64,
    /// Platform job id (or broker delivery id for `DeadLettered`,
    /// 0 for fleet-level events).
    pub job_id: u64,
    /// The recorded fact.
    pub kind: EventKind,
}
