//! Fixed-bucket histograms: log2 octaves with 4 linear sub-buckets.
//!
//! Bucket boundaries are powers of two subdivided four ways, so any
//! recorded value lands in a bucket whose floor is within 25% of it.
//! 252 buckets cover the full `u64` range, every slot is an
//! `AtomicU64`, and recording is two `fetch_add`s plus a `fetch_min`/
//! `fetch_max` — no locks, no allocation, safe to hit from every pump
//! thread at once.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Bits of linear subdivision per octave (4 sub-buckets).
const SUB_BITS: u32 = 2;
/// Total bucket count: values `0..4` map 1:1, then 4 buckets per
/// octave through the top octave — `u64::MAX` lands in the last
/// bucket, so every index is reachable and every floor fits in `u64`.
pub const NUM_BUCKETS: usize = 252;

fn bucket_index(v: u64) -> usize {
    if v < (1 << SUB_BITS) {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let sub = (v >> (msb - SUB_BITS)) & ((1 << SUB_BITS) - 1);
    ((((msb - SUB_BITS + 1) as u64) << SUB_BITS) + sub) as usize
}

/// The smallest value that maps to bucket `i` — reported as the
/// percentile estimate (a deterministic lower bound).
fn bucket_floor(i: usize) -> u64 {
    if i < (1 << SUB_BITS) {
        return i as u64;
    }
    let octave = (i >> SUB_BITS) as u32 + SUB_BITS - 1;
    let sub = (i & ((1 << SUB_BITS) - 1)) as u64;
    (1u64 << octave) + (sub << (octave - SUB_BITS))
}

/// A concurrent fixed-bucket histogram.
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one value.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Values recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Consistent-enough snapshot with percentile estimates. All
    /// fields are zero when empty — never NaN, never a division by
    /// zero.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        if count == 0 {
            return HistogramSnapshot::default();
        }
        let sum = self.sum.load(Ordering::Relaxed);
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let pct = |q: f64| -> u64 {
            // 1-based rank of the q-quantile observation.
            let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0;
            for (i, &c) in counts.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    return bucket_floor(i);
                }
            }
            bucket_floor(NUM_BUCKETS - 1)
        };
        HistogramSnapshot {
            count,
            sum,
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            mean: sum as f64 / count as f64,
            p50: pct(0.50),
            p95: pct(0.95),
            p99: pct(0.99),
        }
    }
}

/// Point-in-time percentile summary of a [`Histogram`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Arithmetic mean (0.0 when empty).
    pub mean: f64,
    /// Median estimate (bucket floor, within 25% of the true value).
    pub p50: u64,
    /// 95th-percentile estimate.
    pub p95: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in [0, 1, 2, 3] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 3);
        assert_eq!(s.p50, 1);
    }

    #[test]
    fn empty_snapshot_is_all_zeros() {
        let s = Histogram::new().snapshot();
        assert_eq!(s, HistogramSnapshot::default());
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn bucket_floor_inverts_index() {
        // Every bucket floor must map back into its own bucket, and
        // any value's floor must be within 25% of the value.
        for i in 0..NUM_BUCKETS {
            assert_eq!(bucket_index(bucket_floor(i)), i, "bucket {i}");
        }
        for v in [5u64, 17, 100, 1_000, 123_456, 1 << 40, u64::MAX] {
            let f = bucket_floor(bucket_index(v));
            assert!(f <= v, "{v}");
            assert!(v - f <= v / 4, "{v} floor {f}");
        }
    }

    #[test]
    fn percentiles_of_uniform_range() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        // Bucket floors undershoot by at most 25%.
        assert!(s.p50 >= 375 && s.p50 <= 500, "p50 {}", s.p50);
        assert!(s.p95 >= 712 && s.p95 <= 950, "p95 {}", s.p95);
        assert!(s.p99 >= 742 && s.p99 <= 990, "p99 {}", s.p99);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99);
        assert_eq!(s.count, 1000);
    }

    #[test]
    fn skewed_tail_is_visible() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.record(10);
        }
        for _ in 0..10 {
            h.record(100_000);
        }
        let s = h.snapshot();
        assert_eq!(s.p50, 10);
        assert_eq!(s.max, 100_000);
        assert!(s.p99 >= 75_000, "tail shows up in p99: {}", s.p99);
    }
}
