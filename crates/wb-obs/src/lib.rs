//! wb-obs: lock-light structured tracing and metrics.
//!
//! The paper operates WebGPU as production MOOC infrastructure and
//! sizes the fleet from per-attempt timing and worker health (§III–IV).
//! This crate is the reproduction's observability spine: one
//! [`Recorder`] shared (`Arc`) by every layer — broker, workers,
//! clusters, server — so that a single snapshot answers the operator
//! questions that matter during a deadline rush: *how long do jobs
//! wait, where does time go, what just happened?*
//!
//! Three coordinated views of the same traffic:
//!
//! * **Spans** — one per job lifecycle
//!   (`queued → dispatched → compiled → graded/failed`), annotated with
//!   cache hits, coalesced lookups, retries and failovers
//!   ([`SpanView`]).
//! * **Aggregates** — fixed-slot counters ([`Counter`]) and
//!   fixed-bucket histograms ([`Histogram`]) yielding p50/p95/p99 for
//!   queue wait, compile and grade time with no allocation on the hot
//!   path.
//! * **Event log** — a bounded ring buffer of sequence-numbered
//!   [`Event`]s for post-hoc replay of the last N state changes.
//!
//! The whole recorder is behind `Option`: [`Recorder::noop`] carries no
//! state and every method is a single branch, so an untraced cluster
//! pays nothing measurable.

pub mod event;
pub mod histogram;
pub mod recorder;
pub mod snapshot;
pub mod span;

pub use event::{Annotation, Event, EventKind, JobPhase};
pub use histogram::{Histogram, HistogramSnapshot};
pub use recorder::{Counter, Recorder, Timer};
pub use snapshot::{MetricsSnapshot, NamedCount};
pub use span::SpanView;
