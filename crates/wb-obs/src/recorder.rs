//! The shared recorder: counters, timers, spans and the event ring.

use crate::event::{Annotation, Event, EventKind, JobPhase};
use crate::histogram::{Histogram, HistogramSnapshot};
use crate::snapshot::{MetricsSnapshot, NamedCount};
use crate::span::SpanView;
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};

/// Fixed-slot platform counters. Adding a variant means adding it to
/// [`Counter::ALL`] — the recorder stores them in a flat atomic array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// Jobs that entered a queue / pool.
    JobsQueued,
    /// Deliveries to a concrete worker (including redeliveries).
    JobsDispatched,
    /// Jobs that reached a grade.
    JobsCompleted,
    /// Jobs that terminated without a grade.
    JobsFailed,
    /// Redeliveries after a failed attempt.
    Retries,
    /// Broker zone failovers survived.
    Failovers,
    /// Cache lookups served from a tier.
    CacheHits,
    /// Cache lookups that executed.
    CacheMisses,
    /// Cache lookups that piggybacked on an in-flight execution.
    CacheCoalesced,
    /// Broker: jobs enqueued.
    QueueEnqueued,
    /// Broker: deliveries handed out.
    QueueDelivered,
    /// Broker: jobs acknowledged.
    QueueAcked,
    /// Broker: negative acknowledgements.
    QueueNacked,
    /// Broker: visibility timeouts reclaimed.
    QueueTimeouts,
    /// Broker: jobs dead-lettered.
    DeadLetters,
    /// Worker health beats observed.
    HealthBeats,
    /// Autoscale decisions that grew the fleet.
    AutoscaleOut,
    /// Autoscale decisions that shrank the fleet.
    AutoscaleIn,
    /// Submissions rejected by the rate limiter.
    RateLimited,
    /// Attempts recorded by the server (per-course detail is scoped).
    AttemptsServed,
    /// Workers evicted by a health sweep.
    WorkerEvictions,
    /// Jobs admitted by the fair-share scheduler.
    SchedAdmitted,
    /// Jobs refused at admission (backlog budget exhausted).
    SchedShed,
    /// Full-grade requests downgraded to compile-only in the
    /// brown-out band.
    SchedBrownOuts,
    /// Starvation-aging promotions: a course dequeued ahead of its
    /// deficit because its head-of-line job waited too long.
    SchedAgedPromotions,
    /// Jobs handed from the scheduler to the execution layer.
    SchedDequeues,
    /// Static-analysis runs executed (cache hits don't re-run).
    AnalysisRuns,
    /// Jobs whose kernels the verifier flagged (any findings).
    AnalysisFlagged,
    /// Individual verifier findings across all flagged jobs.
    AnalysisFindings,
    /// Submissions rejected outright by a `Deny` analysis policy.
    AnalysisDenied,
}

impl Counter {
    /// Every counter, in display order.
    pub const ALL: [Counter; 30] = [
        Counter::JobsQueued,
        Counter::JobsDispatched,
        Counter::JobsCompleted,
        Counter::JobsFailed,
        Counter::Retries,
        Counter::Failovers,
        Counter::CacheHits,
        Counter::CacheMisses,
        Counter::CacheCoalesced,
        Counter::QueueEnqueued,
        Counter::QueueDelivered,
        Counter::QueueAcked,
        Counter::QueueNacked,
        Counter::QueueTimeouts,
        Counter::DeadLetters,
        Counter::HealthBeats,
        Counter::AutoscaleOut,
        Counter::AutoscaleIn,
        Counter::RateLimited,
        Counter::AttemptsServed,
        Counter::WorkerEvictions,
        Counter::SchedAdmitted,
        Counter::SchedShed,
        Counter::SchedBrownOuts,
        Counter::SchedAgedPromotions,
        Counter::SchedDequeues,
        Counter::AnalysisRuns,
        Counter::AnalysisFlagged,
        Counter::AnalysisFindings,
        Counter::AnalysisDenied,
    ];

    /// Stable snake_case name for snapshots and dashboards.
    pub fn name(self) -> &'static str {
        match self {
            Counter::JobsQueued => "jobs_queued",
            Counter::JobsDispatched => "jobs_dispatched",
            Counter::JobsCompleted => "jobs_completed",
            Counter::JobsFailed => "jobs_failed",
            Counter::Retries => "retries",
            Counter::Failovers => "failovers",
            Counter::CacheHits => "cache_hits",
            Counter::CacheMisses => "cache_misses",
            Counter::CacheCoalesced => "cache_coalesced",
            Counter::QueueEnqueued => "queue_enqueued",
            Counter::QueueDelivered => "queue_delivered",
            Counter::QueueAcked => "queue_acked",
            Counter::QueueNacked => "queue_nacked",
            Counter::QueueTimeouts => "queue_timeouts",
            Counter::DeadLetters => "dead_letters",
            Counter::HealthBeats => "health_beats",
            Counter::AutoscaleOut => "autoscale_out",
            Counter::AutoscaleIn => "autoscale_in",
            Counter::RateLimited => "rate_limited",
            Counter::AttemptsServed => "attempts_served",
            Counter::WorkerEvictions => "worker_evictions",
            Counter::SchedAdmitted => "sched_admitted",
            Counter::SchedShed => "sched_shed",
            Counter::SchedBrownOuts => "sched_brown_outs",
            Counter::SchedAgedPromotions => "sched_aged_promotions",
            Counter::SchedDequeues => "sched_dequeues",
            Counter::AnalysisRuns => "analysis_runs",
            Counter::AnalysisFlagged => "analysis_flagged",
            Counter::AnalysisFindings => "analysis_findings",
            Counter::AnalysisDenied => "analysis_denied",
        }
    }

    fn idx(self) -> usize {
        Counter::ALL.iter().position(|c| *c == self).unwrap()
    }
}

/// The three latency histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Timer {
    /// Pump rounds between enqueue and completion.
    QueueWaitRounds,
    /// Wall microseconds spent compiling.
    CompileMicros,
    /// Wall microseconds spent grading datasets.
    GradeMicros,
    /// Wall microseconds spent in static kernel analysis.
    AnalyzeMicros,
}

const SPAN_SHARDS: usize = 8;
/// Lock shards for the scoped-counter map. Per-course counters are the
/// scheduler's per-dequeue hot path; one `Mutex<BTreeMap>` serialized
/// every drain in a sharded control plane.
const SCOPED_SHARDS: usize = 16;
const MAX_SPANS_PER_SHARD: usize = 2048;
const DEFAULT_EVENT_CAPACITY: usize = 1024;
/// Events included inline in a [`MetricsSnapshot`].
const SNAPSHOT_RECENT: usize = 32;

#[derive(Default)]
struct SpanRecord {
    phases: Vec<(JobPhase, u64, u64)>,
    annotations: Vec<(Annotation, u64, u64)>,
}

struct EventRing {
    buf: VecDeque<Event>,
    cap: usize,
    dropped: u64,
}

struct Inner {
    seq: AtomicU64,
    counters: [AtomicU64; Counter::ALL.len()],
    queue_wait: Histogram,
    compile: Histogram,
    grade: Histogram,
    analyze: Histogram,
    events: Mutex<EventRing>,
    spans: [Mutex<HashMap<u64, SpanRecord>>; SPAN_SHARDS],
    dropped_spans: AtomicU64,
    scoped: [Mutex<HashMap<String, u64>>; SCOPED_SHARDS],
}

/// FNV-1a shard index for a scoped-counter key: a stable string hash,
/// so a key always lands on the same lock.
fn scoped_shard(key: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    (h % SCOPED_SHARDS as u64) as usize
}

/// The platform-wide recorder, shared as `Arc<Recorder>`.
///
/// A no-op recorder ([`Recorder::noop`]) carries no state: every
/// method is one branch on an `Option`, so instrumented code paths
/// cost nothing measurable when tracing is off.
pub struct Recorder {
    inner: Option<Inner>,
}

impl Recorder {
    /// A recorder that records nothing.
    pub fn noop() -> Recorder {
        Recorder { inner: None }
    }

    /// A live recorder with the default event-log capacity (1024).
    pub fn traced() -> Recorder {
        Recorder::traced_with_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// A live recorder whose event ring keeps the last `events`
    /// entries (older ones are dropped and counted).
    pub fn traced_with_capacity(events: usize) -> Recorder {
        Recorder {
            inner: Some(Inner {
                seq: AtomicU64::new(0),
                counters: std::array::from_fn(|_| AtomicU64::new(0)),
                queue_wait: Histogram::new(),
                compile: Histogram::new(),
                grade: Histogram::new(),
                analyze: Histogram::new(),
                events: Mutex::new(EventRing {
                    buf: VecDeque::new(),
                    cap: events.max(1),
                    dropped: 0,
                }),
                spans: std::array::from_fn(|_| Mutex::new(HashMap::new())),
                dropped_spans: AtomicU64::new(0),
                scoped: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            }),
        }
    }

    /// Whether this recorder keeps state.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Increment a counter by one.
    pub fn bump(&self, c: Counter) {
        self.add(c, 1);
    }

    /// Increment a counter by `n`.
    pub fn add(&self, c: Counter, n: u64) {
        if let Some(i) = &self.inner {
            i.counters[c.idx()].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current counter value (0 on a no-op recorder).
    pub fn counter(&self, c: Counter) -> u64 {
        match &self.inner {
            Some(i) => i.counters[c.idx()].load(Ordering::Relaxed),
            None => 0,
        }
    }

    /// Record an observation into one of the latency histograms.
    pub fn observe(&self, t: Timer, value: u64) {
        if let Some(i) = &self.inner {
            i.timer(t).record(value);
        }
    }

    /// Percentile summary of one latency histogram.
    pub fn histogram(&self, t: Timer) -> HistogramSnapshot {
        match &self.inner {
            Some(i) => i.timer(t).snapshot(),
            None => HistogramSnapshot::default(),
        }
    }

    /// Record a span phase boundary. Also bumps the matching
    /// `Jobs*` counter so aggregates never drift from spans.
    pub fn phase(&self, job_id: u64, phase: JobPhase, at_ms: u64) {
        let Some(i) = &self.inner else { return };
        let seq = i.push_event(at_ms, job_id, EventKind::Phase(phase));
        i.with_span(job_id, |s| s.phases.push((phase, at_ms, seq)));
        let c = match phase {
            JobPhase::Queued => Counter::JobsQueued,
            JobPhase::Dispatched => Counter::JobsDispatched,
            JobPhase::Compiled => return,
            JobPhase::Graded => Counter::JobsCompleted,
            JobPhase::Failed => Counter::JobsFailed,
        };
        i.counters[c.idx()].fetch_add(1, Ordering::Relaxed);
    }

    /// Attach an annotation to a span. Also bumps the matching
    /// counter (`Retries`, `Failovers`, `CacheHits`, `CacheCoalesced`).
    pub fn annotate(&self, job_id: u64, a: Annotation, at_ms: u64) {
        let Some(i) = &self.inner else { return };
        let seq = i.push_event(at_ms, job_id, EventKind::Annotated(a));
        i.with_span(job_id, |s| s.annotations.push((a, at_ms, seq)));
        let c = match a {
            Annotation::CacheHit => Counter::CacheHits,
            Annotation::Coalesced => Counter::CacheCoalesced,
            Annotation::Retry => Counter::Retries,
            Annotation::Failover => Counter::Failovers,
            Annotation::BrownOut => Counter::SchedBrownOuts,
            Annotation::Shed => Counter::SchedShed,
            Annotation::AnalysisFlagged => Counter::AnalysisFlagged,
        };
        i.counters[c.idx()].fetch_add(1, Ordering::Relaxed);
    }

    /// Record a dead-lettered delivery (broker delivery id, not a
    /// platform job id).
    pub fn dead_letter(&self, delivery_id: u64, at_ms: u64) {
        let Some(i) = &self.inner else { return };
        i.push_event(at_ms, delivery_id, EventKind::DeadLettered);
        i.counters[Counter::DeadLetters.idx()].fetch_add(1, Ordering::Relaxed);
    }

    /// Record an autoscale decision.
    pub fn autoscale(&self, from: usize, to: usize, at_ms: u64) {
        let Some(i) = &self.inner else { return };
        if from == to {
            return;
        }
        i.push_event(
            at_ms,
            0,
            EventKind::Autoscale {
                from: from as u64,
                to: to as u64,
            },
        );
        let c = if to > from {
            Counter::AutoscaleOut
        } else {
            Counter::AutoscaleIn
        };
        i.counters[c.idx()].fetch_add(1, Ordering::Relaxed);
    }

    /// Increment a free-form scoped counter (e.g. `attempts/vecadd`).
    /// The map is lock-sharded by key hash so concurrent drains on
    /// different courses don't serialize here.
    pub fn bump_scoped(&self, key: &str) {
        if let Some(i) = &self.inner {
            *i.scoped[scoped_shard(key)]
                .lock()
                .entry(key.to_string())
                .or_insert(0) += 1;
        }
    }

    /// Current value of a scoped counter.
    pub fn scoped(&self, key: &str) -> u64 {
        match &self.inner {
            Some(i) => i.scoped[scoped_shard(key)]
                .lock()
                .get(key)
                .copied()
                .unwrap_or(0),
            None => 0,
        }
    }

    /// The last `n` events, oldest first.
    pub fn recent_events(&self, n: usize) -> Vec<Event> {
        match &self.inner {
            Some(i) => {
                let g = i.events.lock();
                g.buf.iter().rev().take(n).rev().cloned().collect()
            }
            None => Vec::new(),
        }
    }

    /// Events with `seq > after`, oldest first — the replay cursor.
    pub fn events_after(&self, after: u64) -> Vec<Event> {
        match &self.inner {
            Some(i) => {
                let g = i.events.lock();
                g.buf.iter().filter(|e| e.seq > after).cloned().collect()
            }
            None => Vec::new(),
        }
    }

    /// One job's span, if tracked.
    pub fn span(&self, job_id: u64) -> Option<SpanView> {
        let i = self.inner.as_ref()?;
        let g = i.spans[(job_id as usize) % SPAN_SHARDS].lock();
        g.get(&job_id).map(|r| SpanView {
            job_id,
            phases: r.phases.clone(),
            annotations: r.annotations.clone(),
        })
    }

    /// All tracked spans, ordered by job id.
    pub fn spans(&self) -> Vec<SpanView> {
        let Some(i) = &self.inner else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for shard in &i.spans {
            let g = shard.lock();
            out.extend(g.iter().map(|(id, r)| SpanView {
                job_id: *id,
                phases: r.phases.clone(),
                annotations: r.annotations.clone(),
            }));
        }
        out.sort_by_key(|s| s.job_id);
        out
    }

    /// Full aggregate snapshot: counters, percentiles, scoped
    /// counters and the most recent events.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let Some(i) = &self.inner else {
            return MetricsSnapshot::disabled();
        };
        MetricsSnapshot {
            enabled: true,
            counters: Counter::ALL
                .iter()
                .map(|c| NamedCount {
                    name: c.name().to_string(),
                    value: i.counters[c.idx()].load(Ordering::Relaxed),
                })
                .collect(),
            queue_wait_rounds: i.queue_wait.snapshot(),
            compile_micros: i.compile.snapshot(),
            grade_micros: i.grade.snapshot(),
            analyze_micros: i.analyze.snapshot(),
            scoped: {
                // Merge the lock shards through a BTreeMap so the
                // snapshot stays sorted by name, exactly as before.
                let mut merged = BTreeMap::new();
                for shard in &i.scoped {
                    for (k, v) in shard.lock().iter() {
                        merged.insert(k.clone(), *v);
                    }
                }
                merged
                    .into_iter()
                    .map(|(name, value)| NamedCount { name, value })
                    .collect()
            },
            recent_events: self.recent_events(SNAPSHOT_RECENT),
            dropped_events: i.events.lock().dropped,
            spans_tracked: i.spans.iter().map(|s| s.lock().len() as u64).sum(),
            dropped_spans: i.dropped_spans.load(Ordering::Relaxed),
        }
    }
}

impl Inner {
    fn timer(&self, t: Timer) -> &Histogram {
        match t {
            Timer::QueueWaitRounds => &self.queue_wait,
            Timer::CompileMicros => &self.compile,
            Timer::GradeMicros => &self.grade,
            Timer::AnalyzeMicros => &self.analyze,
        }
    }

    /// Allocate the next sequence number and append to the ring.
    fn push_event(&self, at_ms: u64, job_id: u64, kind: EventKind) -> u64 {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        let mut g = self.events.lock();
        if g.buf.len() == g.cap {
            g.buf.pop_front();
            g.dropped += 1;
        }
        g.buf.push_back(Event {
            seq,
            at_ms,
            job_id,
            kind,
        });
        seq
    }

    fn with_span(&self, job_id: u64, f: impl FnOnce(&mut SpanRecord)) {
        let mut g = self.spans[(job_id as usize) % SPAN_SHARDS].lock();
        if g.len() >= MAX_SPANS_PER_SHARD && !g.contains_key(&job_id) {
            self.dropped_spans.fetch_add(1, Ordering::Relaxed);
            return;
        }
        f(g.entry(job_id).or_default());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_recorder_observes_nothing() {
        let r = Recorder::noop();
        r.bump(Counter::JobsQueued);
        r.phase(1, JobPhase::Queued, 0);
        r.annotate(1, Annotation::CacheHit, 0);
        r.observe(Timer::CompileMicros, 42);
        r.bump_scoped("attempts/vecadd");
        assert!(!r.enabled());
        assert_eq!(r.counter(Counter::JobsQueued), 0);
        assert!(r.span(1).is_none());
        assert!(r.recent_events(10).is_empty());
        let s = r.snapshot();
        assert!(!s.enabled);
        assert_eq!(s.compile_micros.count, 0);
    }

    #[test]
    fn full_lifecycle_builds_a_complete_span() {
        let r = Recorder::traced();
        r.phase(7, JobPhase::Queued, 100);
        r.phase(7, JobPhase::Dispatched, 110);
        r.annotate(7, Annotation::CacheHit, 115);
        r.phase(7, JobPhase::Compiled, 120);
        r.phase(7, JobPhase::Graded, 130);
        let s = r.span(7).unwrap();
        assert!(s.is_complete() && s.is_ordered());
        assert!(s.has(Annotation::CacheHit));
        assert_eq!(s.terminal(), Some(JobPhase::Graded));
        assert_eq!(r.counter(Counter::JobsQueued), 1);
        assert_eq!(r.counter(Counter::JobsCompleted), 1);
        assert_eq!(r.counter(Counter::CacheHits), 1);
    }

    #[test]
    fn event_ring_is_bounded_with_monotonic_seq() {
        let r = Recorder::traced_with_capacity(4);
        for j in 0..10 {
            r.phase(j, JobPhase::Queued, j);
        }
        let ev = r.recent_events(100);
        assert_eq!(ev.len(), 4, "ring keeps only the newest");
        let seqs: Vec<u64> = ev.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![7, 8, 9, 10]);
        assert_eq!(r.snapshot().dropped_events, 6);
        // The replay cursor resumes mid-ring.
        assert_eq!(r.events_after(8).len(), 2);
    }

    #[test]
    fn scoped_counters_roll_up_per_course() {
        let r = Recorder::traced();
        r.bump_scoped("attempts/vecadd");
        r.bump_scoped("attempts/vecadd");
        r.bump_scoped("attempts/histo");
        assert_eq!(r.scoped("attempts/vecadd"), 2);
        assert_eq!(r.scoped("attempts/histo"), 1);
        assert_eq!(r.scoped("attempts/missing"), 0);
        let snap = r.snapshot();
        assert_eq!(snap.scoped.len(), 2);
        assert_eq!(snap.scoped[0].name, "attempts/histo");
    }

    #[test]
    fn autoscale_events_direction() {
        let r = Recorder::traced();
        r.autoscale(2, 5, 10);
        r.autoscale(5, 5, 20); // no-op decisions are not events
        r.autoscale(5, 1, 30);
        assert_eq!(r.counter(Counter::AutoscaleOut), 1);
        assert_eq!(r.counter(Counter::AutoscaleIn), 1);
        assert_eq!(r.recent_events(10).len(), 2);
    }

    #[test]
    fn concurrent_recording_is_consistent() {
        let r = std::sync::Arc::new(Recorder::traced());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let r = std::sync::Arc::clone(&r);
            handles.push(std::thread::spawn(move || {
                for j in 0..50u64 {
                    let id = t * 50 + j;
                    r.phase(id, JobPhase::Queued, id);
                    r.phase(id, JobPhase::Dispatched, id + 1);
                    r.phase(id, JobPhase::Graded, id + 2);
                    r.observe(Timer::QueueWaitRounds, j % 7);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.counter(Counter::JobsQueued), 200);
        assert_eq!(r.counter(Counter::JobsCompleted), 200);
        let spans = r.spans();
        assert_eq!(spans.len(), 200);
        assert!(spans.iter().all(|s| s.is_complete() && s.is_ordered()));
        assert_eq!(r.histogram(Timer::QueueWaitRounds).count, 200);
        // Sequence numbers are globally unique.
        let mut seqs: Vec<u64> = r.events_after(0).iter().map(|e| e.seq).collect();
        let n = seqs.len();
        seqs.dedup();
        assert_eq!(seqs.len(), n);
    }
}
