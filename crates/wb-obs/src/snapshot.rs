//! The queryable aggregate snapshot.

use crate::event::Event;
use crate::histogram::HistogramSnapshot;
use serde::{Deserialize, Serialize};

/// A named counter value (flat shape keeps the wire format simple).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NamedCount {
    /// Counter name (`jobs_queued`, `attempts/vecadd`, …).
    pub name: String,
    /// Current value.
    pub value: u64,
}

/// Point-in-time aggregate view of a [`crate::Recorder`], serializable
/// for the dashboard and external clients.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// False when taken from a no-op recorder.
    pub enabled: bool,
    /// Every platform counter, in [`crate::Counter::ALL`] order.
    pub counters: Vec<NamedCount>,
    /// Queue wait in pump rounds: p50/p95/p99.
    pub queue_wait_rounds: HistogramSnapshot,
    /// Compile time in wall microseconds: p50/p95/p99.
    pub compile_micros: HistogramSnapshot,
    /// Grade time in wall microseconds: p50/p95/p99.
    pub grade_micros: HistogramSnapshot,
    /// Static-analysis time in wall microseconds: p50/p95/p99.
    pub analyze_micros: HistogramSnapshot,
    /// Free-form scoped counters (per-course attempts), sorted by name.
    pub scoped: Vec<NamedCount>,
    /// The newest events, oldest first.
    pub recent_events: Vec<Event>,
    /// Events evicted from the ring since boot.
    pub dropped_events: u64,
    /// Spans currently tracked.
    pub spans_tracked: u64,
    /// Span updates discarded because the span table was full.
    pub dropped_spans: u64,
}

impl MetricsSnapshot {
    /// The snapshot of a no-op recorder: everything empty/zero.
    pub fn disabled() -> MetricsSnapshot {
        MetricsSnapshot {
            enabled: false,
            counters: Vec::new(),
            queue_wait_rounds: HistogramSnapshot::default(),
            compile_micros: HistogramSnapshot::default(),
            grade_micros: HistogramSnapshot::default(),
            analyze_micros: HistogramSnapshot::default(),
            scoped: Vec::new(),
            recent_events: Vec::new(),
            dropped_events: 0,
            spans_tracked: 0,
            dropped_spans: 0,
        }
    }

    /// Look up a counter by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .chain(self.scoped.iter())
            .find(|c| c.name == name)
            .map(|c| c.value)
            .unwrap_or(0)
    }
}
