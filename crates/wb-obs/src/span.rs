//! Per-job lifecycle spans.

use crate::event::{Annotation, JobPhase};

/// Read-only view of one job's recorded lifecycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanView {
    /// Platform job id — doubles as the trace id surfaced to clients.
    pub job_id: u64,
    /// Phase boundaries as `(phase, at_ms, seq)` in recording order.
    pub phases: Vec<(JobPhase, u64, u64)>,
    /// Annotations as `(annotation, at_ms, seq)` in recording order.
    pub annotations: Vec<(Annotation, u64, u64)>,
}

impl SpanView {
    /// A span is complete when it opens with `Queued` and closes with
    /// exactly one terminal phase (`Graded` or `Failed`) at the end.
    pub fn is_complete(&self) -> bool {
        let terminals = self
            .phases
            .iter()
            .filter(|(p, _, _)| p.is_terminal())
            .count();
        matches!(self.phases.first(), Some((JobPhase::Queued, _, _)))
            && terminals == 1
            && self.phases.last().map(|(p, _, _)| p.is_terminal()) == Some(true)
    }

    /// A span is ordered when sequence numbers strictly increase and
    /// phase ranks never regress (`Dispatched` may repeat on
    /// redelivery; a terminal never precedes a non-terminal).
    pub fn is_ordered(&self) -> bool {
        self.phases
            .windows(2)
            .all(|w| w[0].2 < w[1].2 && w[0].0.rank() <= w[1].0.rank())
    }

    /// The terminal phase, if one was recorded.
    pub fn terminal(&self) -> Option<JobPhase> {
        self.phases
            .iter()
            .rev()
            .find(|(p, _, _)| p.is_terminal())
            .map(|(p, _, _)| *p)
    }

    /// True when the span carries the given annotation.
    pub fn has(&self, a: Annotation) -> bool {
        self.annotations.iter().any(|(x, _, _)| *x == a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(phases: &[(JobPhase, u64, u64)]) -> SpanView {
        SpanView {
            job_id: 1,
            phases: phases.to_vec(),
            annotations: Vec::new(),
        }
    }

    #[test]
    fn complete_ordered_chain() {
        let s = span(&[
            (JobPhase::Queued, 0, 1),
            (JobPhase::Dispatched, 1, 2),
            (JobPhase::Compiled, 2, 3),
            (JobPhase::Graded, 3, 4),
        ]);
        assert!(s.is_complete());
        assert!(s.is_ordered());
        assert_eq!(s.terminal(), Some(JobPhase::Graded));
    }

    #[test]
    fn orphan_and_duplicate_terminals_are_incomplete() {
        // No terminal at all.
        assert!(!span(&[(JobPhase::Queued, 0, 1), (JobPhase::Dispatched, 1, 2)]).is_complete());
        // Two terminals.
        assert!(!span(&[
            (JobPhase::Queued, 0, 1),
            (JobPhase::Graded, 1, 2),
            (JobPhase::Failed, 2, 3),
        ])
        .is_complete());
        // Missing the Queued opener.
        assert!(!span(&[(JobPhase::Dispatched, 0, 1), (JobPhase::Graded, 1, 2)]).is_complete());
    }

    #[test]
    fn redelivery_keeps_order_but_regression_breaks_it() {
        let redelivered = span(&[
            (JobPhase::Queued, 0, 1),
            (JobPhase::Dispatched, 1, 2),
            (JobPhase::Dispatched, 5, 7),
            (JobPhase::Compiled, 6, 8),
            (JobPhase::Graded, 7, 9),
        ]);
        assert!(redelivered.is_ordered());
        let regressed = span(&[
            (JobPhase::Queued, 0, 1),
            (JobPhase::Compiled, 1, 2),
            (JobPhase::Dispatched, 2, 3),
        ]);
        assert!(!regressed.is_ordered());
    }
}
