//! The core broker: tagged jobs, visibility timeouts, retries.

use crate::capability::CapabilitySet;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::sync::Arc;
use wb_obs::{Counter, Recorder};

/// Metadata carried by every job.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobMeta {
    /// Broker-assigned id.
    pub id: u64,
    /// Capability tags the worker must have (e.g. `mpi`, `multi-gpu`).
    pub tags: BTreeSet<String>,
    /// Virtual ms at enqueue.
    pub enqueued_at: u64,
    /// Delivery attempts so far.
    pub attempts: u32,
}

/// A delivered job: payload plus receipt handle for ack/nack.
#[derive(Debug, Clone, PartialEq)]
pub struct Delivery<T> {
    /// Job metadata.
    pub meta: JobMeta,
    /// The payload.
    pub payload: T,
}

/// Counters for the operations dashboard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BrokerMetrics {
    /// Jobs enqueued.
    pub enqueued: u64,
    /// Deliveries handed to workers (including redeliveries).
    pub delivered: u64,
    /// Jobs acknowledged.
    pub acked: u64,
    /// Explicit negative acknowledgements.
    pub nacked: u64,
    /// Deliveries that timed out and became visible again.
    pub timeouts: u64,
    /// Jobs moved to the dead-letter queue.
    pub dead_lettered: u64,
}

#[derive(Debug, Clone)]
struct QueuedJob<T> {
    meta: JobMeta,
    payload: T,
    /// When Some, the job is in flight and invisible until this time.
    invisible_until: Option<u64>,
}

struct Inner<T> {
    jobs: Vec<QueuedJob<T>>,
    dead: Vec<Delivery<T>>,
    next_id: u64,
    metrics: BrokerMetrics,
}

/// A single broker node.
pub struct Broker<T> {
    inner: Mutex<Inner<T>>,
    visibility_timeout_ms: u64,
    max_attempts: u32,
    /// Distance between consecutive ids this broker issues. A
    /// standalone broker strides by 1; a lane of a
    /// [`ShardedBroker`](crate::ShardedBroker) strides by the shard
    /// count, so ids identify their lane by residue and never collide
    /// across lanes.
    id_stride: u64,
    obs: Arc<Recorder>,
}

impl<T: Clone> Broker<T> {
    /// Broker with the given visibility timeout and retry budget.
    pub fn new(visibility_timeout_ms: u64, max_attempts: u32) -> Self {
        Broker::with_recorder(
            visibility_timeout_ms,
            max_attempts,
            Arc::new(Recorder::noop()),
        )
    }

    /// Broker that reports queue traffic to a shared recorder.
    pub fn with_recorder(
        visibility_timeout_ms: u64,
        max_attempts: u32,
        obs: Arc<Recorder>,
    ) -> Self {
        Broker::with_id_stride(visibility_timeout_ms, max_attempts, obs, 1, 1)
    }

    /// Broker issuing ids from the arithmetic progression
    /// `first_id, first_id + stride, …` — the id-striping scheme that
    /// lets N shard lanes share one id space without coordination.
    pub fn with_id_stride(
        visibility_timeout_ms: u64,
        max_attempts: u32,
        obs: Arc<Recorder>,
        first_id: u64,
        stride: u64,
    ) -> Self {
        assert!(max_attempts >= 1, "at least one attempt");
        assert!(first_id >= 1, "ids start at 1");
        assert!(stride >= 1, "stride must advance");
        Broker {
            inner: Mutex::new(Inner {
                jobs: Vec::new(),
                dead: Vec::new(),
                next_id: first_id,
                metrics: BrokerMetrics::default(),
            }),
            visibility_timeout_ms,
            max_attempts,
            id_stride: stride,
            obs,
        }
    }

    /// Enqueue a job with capability tags; returns the job id.
    pub fn enqueue(&self, payload: T, tags: BTreeSet<String>, now_ms: u64) -> u64 {
        let mut g = self.inner.lock();
        let id = g.next_id;
        g.next_id += self.id_stride;
        g.metrics.enqueued += 1;
        g.jobs.push(QueuedJob {
            meta: JobMeta {
                id,
                tags,
                enqueued_at: now_ms,
                attempts: 0,
            },
            payload,
            invisible_until: None,
        });
        self.obs.bump(Counter::QueueEnqueued);
        id
    }

    /// Reclaim expired deliveries and dead-letter jobs that exhausted
    /// their retry budget. Every observation of the queue (`poll`,
    /// `depth`, `in_flight`) sweeps first so autoscalers never see
    /// phantom depth from jobs that can no longer be delivered.
    fn sweep(g: &mut Inner<T>, now_ms: u64, max_attempts: u32, obs: &Recorder) {
        // Reclaim expired deliveries.
        let mut timeouts = 0;
        for j in g.jobs.iter_mut() {
            if let Some(t) = j.invisible_until {
                if t <= now_ms {
                    j.invisible_until = None;
                    timeouts += 1;
                }
            }
        }
        g.metrics.timeouts += timeouts;
        obs.add(Counter::QueueTimeouts, timeouts);

        // Dead-letter jobs that exhausted their attempts.
        let mut k = 0;
        while k < g.jobs.len() {
            if g.jobs[k].invisible_until.is_none() && g.jobs[k].meta.attempts >= max_attempts {
                let j = g.jobs.remove(k);
                g.metrics.dead_lettered += 1;
                obs.dead_letter(j.meta.id, now_ms);
                g.dead.push(Delivery {
                    meta: j.meta,
                    payload: j.payload,
                });
            } else {
                k += 1;
            }
        }
    }

    /// Worker poll: the oldest visible job whose tags are all within
    /// `capabilities`. In-flight jobs whose visibility expired are
    /// reclaimed first.
    pub fn poll(&self, capabilities: &CapabilitySet, now_ms: u64) -> Option<Delivery<T>> {
        let mut g = self.inner.lock();
        Self::sweep(&mut g, now_ms, self.max_attempts, &self.obs);
        let idx = g.jobs.iter().position(|j| {
            j.invisible_until.is_none() && capabilities.satisfies(j.meta.tags.iter())
        })?;
        let job = &mut g.jobs[idx];
        job.meta.attempts += 1;
        job.invisible_until = Some(now_ms + self.visibility_timeout_ms);
        let d = Delivery {
            meta: job.meta.clone(),
            payload: job.payload.clone(),
        };
        g.metrics.delivered += 1;
        self.obs.bump(Counter::QueueDelivered);
        Some(d)
    }

    /// Acknowledge successful completion; removes the job.
    pub fn ack(&self, job_id: u64) -> bool {
        let removed = self.ack_untracked(job_id);
        if removed {
            self.obs.bump(Counter::QueueAcked);
        }
        removed
    }

    /// Ack without reporting to the recorder — the mirror uses this on
    /// the passive zone so a fanned-out ack is counted once.
    pub(crate) fn ack_untracked(&self, job_id: u64) -> bool {
        let mut g = self.inner.lock();
        let before = g.jobs.len();
        g.jobs.retain(|j| j.meta.id != job_id);
        let removed = g.jobs.len() < before;
        if removed {
            g.metrics.acked += 1;
        }
        removed
    }

    /// Negative acknowledgement: the job becomes visible immediately
    /// (e.g. the worker noticed it cannot run it after all).
    pub fn nack(&self, job_id: u64) -> bool {
        let mut g = self.inner.lock();
        for j in g.jobs.iter_mut() {
            if j.meta.id == job_id {
                j.invisible_until = None;
                g.metrics.nacked += 1;
                self.obs.bump(Counter::QueueNacked);
                return true;
            }
        }
        false
    }

    /// Jobs currently visible to a hypothetical all-capable worker.
    /// Sweeps first: expired deliveries count again, but jobs whose
    /// attempts are exhausted are dead-lettered rather than reported as
    /// depth (a poisoned job must not trigger scale-out forever).
    pub fn depth(&self, now_ms: u64) -> usize {
        let mut g = self.inner.lock();
        Self::sweep(&mut g, now_ms, self.max_attempts, &self.obs);
        g.jobs
            .iter()
            .filter(|j| j.invisible_until.is_none())
            .count()
    }

    /// Jobs in flight (delivered, not yet acked or expired).
    pub fn in_flight(&self, now_ms: u64) -> usize {
        let mut g = self.inner.lock();
        Self::sweep(&mut g, now_ms, self.max_attempts, &self.obs);
        g.jobs
            .iter()
            .filter(|j| j.invisible_until.is_some())
            .count()
    }

    /// Dead-letter queue contents.
    pub fn dead_letters(&self) -> Vec<Delivery<T>> {
        self.inner.lock().dead.clone()
    }

    /// Drain the dead-letter queue, handing the letters to the caller
    /// (e.g. an operator re-driving poisoned jobs after a fix).
    pub fn take_dead_letters(&self) -> Vec<Delivery<T>> {
        std::mem::take(&mut self.inner.lock().dead)
    }

    /// Ids of dead-lettered jobs (mirror reconciliation support).
    pub(crate) fn dead_ids(&self) -> Vec<u64> {
        self.inner.lock().dead.iter().map(|d| d.meta.id).collect()
    }

    /// Overwrite the dead-letter queue (mirror heal support): the
    /// healed zone adopts the active zone's dead queue wholesale, so a
    /// letter drained on one zone can never resurface from the other.
    pub(crate) fn replace_dead(&self, dead: Vec<Delivery<T>>) {
        self.inner.lock().dead = dead;
    }

    /// Metrics snapshot.
    pub fn metrics(&self) -> BrokerMetrics {
        self.inner.lock().metrics
    }

    /// All pending jobs (mirroring/failover support).
    pub(crate) fn drain_state(&self) -> Vec<(JobMeta, T)> {
        self.inner
            .lock()
            .jobs
            .iter()
            .map(|j| (j.meta.clone(), j.payload.clone()))
            .collect()
    }

    /// Restore jobs (mirroring/failover support).
    pub(crate) fn restore_state(&self, jobs: Vec<(JobMeta, T)>) {
        let mut g = self.inner.lock();
        for (meta, payload) in jobs {
            // Advance past the restored id while staying on this
            // broker's id residue class (mirrored zones share a class,
            // so the standby continues the primary's sequence exactly).
            while g.next_id <= meta.id {
                g.next_id += self.id_stride;
            }
            g.jobs.push(QueuedJob {
                meta,
                payload,
                invisible_until: None,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tags(list: &[&str]) -> BTreeSet<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    fn caps(list: &[&str]) -> CapabilitySet {
        list.iter().copied().collect()
    }

    fn basic_worker() -> CapabilitySet {
        caps(&["cuda"])
    }

    #[test]
    fn fifo_delivery_and_ack() {
        let b: Broker<&str> = Broker::new(1000, 3);
        b.enqueue("first", tags(&[]), 0);
        b.enqueue("second", tags(&[]), 0);
        let d1 = b.poll(&basic_worker(), 10).unwrap();
        assert_eq!(d1.payload, "first");
        assert!(b.ack(d1.meta.id));
        let d2 = b.poll(&basic_worker(), 11).unwrap();
        assert_eq!(d2.payload, "second");
        assert!(b.ack(d2.meta.id));
        assert!(b.poll(&basic_worker(), 12).is_none());
        let m = b.metrics();
        assert_eq!((m.enqueued, m.delivered, m.acked), (2, 2, 2));
    }

    #[test]
    fn tags_route_to_capable_workers_only() {
        let b: Broker<&str> = Broker::new(1000, 3);
        b.enqueue("mpi job", tags(&["mpi"]), 0);
        b.enqueue("plain job", tags(&[]), 0);
        // A plain CUDA worker skips the MPI job but gets the plain one.
        let d = b.poll(&basic_worker(), 1).unwrap();
        assert_eq!(d.payload, "plain job");
        // An MPI-capable worker gets the MPI job.
        let d2 = b.poll(&caps(&["cuda", "mpi"]), 2).unwrap();
        assert_eq!(d2.payload, "mpi job");
    }

    #[test]
    fn in_flight_jobs_are_invisible() {
        let b: Broker<&str> = Broker::new(1000, 3);
        b.enqueue("job", tags(&[]), 0);
        let _d = b.poll(&basic_worker(), 0).unwrap();
        assert!(b.poll(&basic_worker(), 10).is_none());
        assert_eq!(b.in_flight(10), 1);
        assert_eq!(b.depth(10), 0);
    }

    #[test]
    fn visibility_timeout_redelivers() {
        let b: Broker<&str> = Broker::new(100, 3);
        b.enqueue("job", tags(&[]), 0);
        let d1 = b.poll(&basic_worker(), 0).unwrap();
        assert_eq!(d1.meta.attempts, 1);
        // Worker dies; at t=100 the job is visible again.
        let d2 = b.poll(&basic_worker(), 100).unwrap();
        assert_eq!(d2.meta.attempts, 2);
        assert_eq!(b.metrics().timeouts, 1);
    }

    #[test]
    fn nack_makes_job_immediately_visible() {
        let b: Broker<&str> = Broker::new(10_000, 3);
        b.enqueue("job", tags(&[]), 0);
        let d = b.poll(&basic_worker(), 0).unwrap();
        assert!(b.nack(d.meta.id));
        let d2 = b.poll(&basic_worker(), 1).unwrap();
        assert_eq!(d2.meta.attempts, 2);
    }

    #[test]
    fn exhausted_retries_dead_letter() {
        let b: Broker<&str> = Broker::new(10, 2);
        b.enqueue("poison", tags(&[]), 0);
        let mut t = 0;
        for _ in 0..2 {
            let d = b.poll(&basic_worker(), t);
            assert!(d.is_some());
            t += 10; // let visibility expire
        }
        // Third poll dead-letters instead of delivering.
        assert!(b.poll(&basic_worker(), t).is_none());
        let dead = b.dead_letters();
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].payload, "poison");
        assert_eq!(b.metrics().dead_lettered, 1);
    }

    #[test]
    fn ack_unknown_job_is_false() {
        let b: Broker<&str> = Broker::new(100, 3);
        assert!(!b.ack(42));
        assert!(!b.nack(42));
    }

    #[test]
    fn depth_counts_visible_jobs() {
        let b: Broker<&str> = Broker::new(100, 3);
        for _ in 0..5 {
            b.enqueue("j", tags(&[]), 0);
        }
        assert_eq!(b.depth(0), 5);
        let _d = b.poll(&basic_worker(), 0).unwrap();
        assert_eq!(b.depth(1), 4);
        // After timeout the in-flight one counts again.
        assert_eq!(b.depth(200), 5);
    }

    #[test]
    fn exhausted_job_stops_counting_as_depth() {
        // A poisoned job (delivered max_attempts times, never acked)
        // must not inflate depth once its visibility lapses — lazy
        // dead-lettering used to leave it counted until the next poll,
        // driving spurious autoscale-out.
        let b: Broker<&str> = Broker::new(10, 1);
        b.enqueue("poison", tags(&[]), 0);
        let _d = b.poll(&basic_worker(), 0).unwrap();
        // In flight: not visible, not dead.
        assert_eq!(b.depth(5), 0);
        assert_eq!(b.in_flight(5), 1);
        // Visibility expired, attempts exhausted: dead-lettered by the
        // very observation, with no poll needed.
        assert_eq!(b.depth(10), 0);
        assert_eq!(b.in_flight(10), 0);
        assert_eq!(b.metrics().dead_lettered, 1);
        assert_eq!(b.dead_letters().len(), 1);
    }

    #[test]
    fn many_workers_share_the_queue() {
        let b: std::sync::Arc<Broker<u64>> = std::sync::Arc::new(Broker::new(10_000, 3));
        for i in 0..100 {
            b.enqueue(i, tags(&[]), 0);
        }
        let mut handles = Vec::new();
        for _ in 0..4 {
            let b = std::sync::Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                let caps = basic_worker();
                let mut got = 0;
                while let Some(d) = b.poll(&caps, 1) {
                    b.ack(d.meta.id);
                    got += 1;
                }
                got
            }));
        }
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 100, "every job delivered exactly once");
    }
}
