//! Typed, interned capability tags.
//!
//! Worker capabilities and job requirements used to travel as
//! `BTreeSet<String>` everywhere, which made typos silent (a worker
//! advertising `"multigpu"` simply never matched `"multi-gpu"` jobs)
//! and cloned strings on every poll. [`Capability`] interns each
//! distinct tag once in a process-global table and hands out a
//! `Copy`-able id; [`CapabilitySet`] is the typed replacement for the
//! capability side of the poll seam.
//!
//! Wire behavior is unchanged: job tags inside [`crate::JobMeta`]
//! stay plain strings, a `CapabilitySet` serializes as the same
//! sorted string array a `BTreeSet<String>` did, and matching still
//! compares tag names. Only the in-process representation is typed.

use serde::{Deserialize, Deserializer, Serialize, Serializer};
use std::cmp::Ordering;
use std::collections::BTreeSet;
use std::convert::Infallible;
use std::fmt;
use std::str::FromStr;
use std::sync::{Mutex, OnceLock};

/// Process-global intern table. Capability vocabularies are tiny (a
/// handful of tags per deployment), so a linear probe under a mutex
/// beats carrying a hash map's footprint for the lifetime of the
/// process.
fn table() -> &'static Mutex<Vec<&'static str>> {
    static TABLE: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(Vec::new()))
}

/// An interned capability tag such as `cuda`, `mpi`, or `multi-gpu`.
///
/// Equality is id equality (each name is interned exactly once), and
/// ordering follows the resolved name so a sorted collection of
/// capabilities iterates in the same order the stringly
/// representation did.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Capability(u32);

impl Capability {
    /// Intern `name`, returning its id (stable for the process).
    pub fn new(name: &str) -> Capability {
        let mut t = table().lock().expect("capability table");
        if let Some(i) = t.iter().position(|&n| n == name) {
            return Capability(i as u32);
        }
        t.push(Box::leak(name.to_string().into_boxed_str()));
        Capability((t.len() - 1) as u32)
    }

    /// Look up an already-interned name without interning it. A name
    /// nobody ever interned cannot be in any `CapabilitySet`, which
    /// lets [`CapabilitySet::contains`] answer without allocating.
    pub fn lookup(name: &str) -> Option<Capability> {
        let t = table().lock().expect("capability table");
        t.iter()
            .position(|&n| n == name)
            .map(|i| Capability(i as u32))
    }

    /// The interned tag name.
    pub fn name(&self) -> &'static str {
        table().lock().expect("capability table")[self.0 as usize]
    }
}

impl Ord for Capability {
    fn cmp(&self, other: &Capability) -> Ordering {
        if self.0 == other.0 {
            Ordering::Equal
        } else {
            self.name().cmp(other.name())
        }
    }
}

impl PartialOrd for Capability {
    fn partial_cmp(&self, other: &Capability) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for Capability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl fmt::Debug for Capability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Capability({})", self.name())
    }
}

impl FromStr for Capability {
    type Err = Infallible;

    fn from_str(s: &str) -> Result<Capability, Infallible> {
        Ok(Capability::new(s))
    }
}

impl From<&str> for Capability {
    fn from(s: &str) -> Capability {
        Capability::new(s)
    }
}

impl From<String> for Capability {
    fn from(s: String) -> Capability {
        Capability::new(&s)
    }
}

impl Serialize for Capability {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(self.name())
    }
}

impl<'de> Deserialize<'de> for Capability {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Capability, D::Error> {
        let name = String::deserialize(d)?;
        Ok(Capability::new(&name))
    }
}

/// A sorted set of [`Capability`] tags — the typed side of the poll
/// seam. Serializes transparently as a sorted string array, so
/// configs written against `BTreeSet<String>` parse unchanged.
#[derive(Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
#[serde(transparent)]
pub struct CapabilitySet(BTreeSet<Capability>);

impl CapabilitySet {
    /// An empty set (matches only untagged jobs).
    pub fn new() -> CapabilitySet {
        CapabilitySet::default()
    }

    /// Insert a capability; returns true when it was not yet present.
    /// Takes `Capability` by value (not `impl Into`) so call sites can
    /// keep writing `set.insert("mpi".into())` with full inference.
    pub fn insert(&mut self, cap: Capability) -> bool {
        self.0.insert(cap)
    }

    /// Remove a capability by name; returns true when it was present.
    pub fn remove(&mut self, name: &str) -> bool {
        match Capability::lookup(name) {
            Some(c) => self.0.remove(&c),
            None => false,
        }
    }

    /// Membership by tag name, without interning unknown names.
    pub fn contains(&self, name: &str) -> bool {
        Capability::lookup(name).is_some_and(|c| self.0.contains(&c))
    }

    /// True when every tag name in `tags` is covered by this set —
    /// the broker's delivery predicate.
    pub fn satisfies<'a>(&self, mut tags: impl Iterator<Item = &'a String>) -> bool {
        tags.all(|t| self.contains(t))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterate in name order.
    pub fn iter(&self) -> impl Iterator<Item = Capability> + '_ {
        self.0.iter().copied()
    }

    /// The stringly wire form carried by [`crate::JobMeta`] tags.
    pub fn to_wire(&self) -> BTreeSet<String> {
        self.0.iter().map(|c| c.name().to_string()).collect()
    }
}

impl fmt::Debug for CapabilitySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set()
            .entries(self.0.iter().map(|c| c.name()))
            .finish()
    }
}

impl FromIterator<Capability> for CapabilitySet {
    fn from_iter<I: IntoIterator<Item = Capability>>(iter: I) -> CapabilitySet {
        CapabilitySet(iter.into_iter().collect())
    }
}

impl<'a> FromIterator<&'a str> for CapabilitySet {
    fn from_iter<I: IntoIterator<Item = &'a str>>(iter: I) -> CapabilitySet {
        iter.into_iter().map(Capability::new).collect()
    }
}

impl FromIterator<String> for CapabilitySet {
    fn from_iter<I: IntoIterator<Item = String>>(iter: I) -> CapabilitySet {
        iter.into_iter().map(|s| Capability::new(&s)).collect()
    }
}

impl<const N: usize> From<[&str; N]> for CapabilitySet {
    fn from(names: [&str; N]) -> CapabilitySet {
        names.iter().copied().collect()
    }
}

impl IntoIterator for &CapabilitySet {
    type Item = Capability;
    type IntoIter = std::vec::IntoIter<Capability>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.iter().copied().collect::<Vec<_>>().into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable_and_eq_is_by_name() {
        let a = Capability::new("cap-test-cuda");
        let b = Capability::new("cap-test-cuda");
        let c: Capability = "cap-test-mpi".into();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.name(), "cap-test-cuda");
        assert_eq!(a.to_string(), "cap-test-cuda");
        assert_eq!("cap-test-mpi".parse::<Capability>().unwrap(), c);
    }

    #[test]
    fn ordering_follows_names_not_intern_order() {
        // Intern in reverse-alphabetical order; the set must still
        // iterate alphabetically, matching BTreeSet<String>.
        let z = Capability::new("cap-ord-z");
        let a = Capability::new("cap-ord-a");
        let set: CapabilitySet = [z, a].into_iter().collect();
        let names: Vec<&str> = set.iter().map(|c| c.name()).collect();
        assert_eq!(names, ["cap-ord-a", "cap-ord-z"]);
    }

    #[test]
    fn contains_does_not_intern() {
        let set: CapabilitySet = ["cap-probe-x"].into();
        assert!(set.contains("cap-probe-x"));
        assert!(!set.contains("cap-probe-never-interned-q"));
        // The miss above must not have interned the probe name.
        assert!(Capability::lookup("cap-probe-never-interned-q").is_none());
    }

    #[test]
    fn satisfies_matches_the_old_subset_predicate() {
        let caps: CapabilitySet = ["cuda", "mpi"].into();
        let tags: BTreeSet<String> = ["mpi".to_string()].into();
        assert!(caps.satisfies(tags.iter()));
        let greedy: BTreeSet<String> = ["mpi".into(), "multi-gpu".into()].into();
        assert!(!caps.satisfies(greedy.iter()));
        assert!(CapabilitySet::new().satisfies(BTreeSet::new().iter()));
    }

    #[test]
    fn wire_form_round_trips_through_strings() {
        // The broker's JobMeta still carries string tags; a set must
        // convert to exactly the BTreeSet<String> it came from.
        let strings: BTreeSet<String> = ["cuda".to_string(), "mpi".to_string()].into();
        let caps: CapabilitySet = strings.iter().cloned().collect();
        assert_eq!(caps.to_wire(), strings);
        assert_eq!(caps.len(), 2);
        assert!(!caps.is_empty());
    }
}
