//! [`BrokerHandle`] — the consumer-facing broker surface.
//!
//! Worker nodes only ever poll, ack, and nack; they must not care
//! whether they are talking to a single broker node or a mirrored
//! pair. Abstracting the three operations behind a trait lets the v2
//! cluster hand workers the [`MirroredBroker`](crate::MirroredBroker)
//! itself, so acknowledgements propagate to the standby zone and a
//! failover cannot redeliver work that already completed. (Handing
//! workers the active zone's plain [`Broker`](crate::Broker) was
//! exactly the bug: acks leaked past the mirror, and every completed
//! in-flight job ran twice after a failover.)

use crate::broker::{Broker, Delivery};
use crate::capability::CapabilitySet;
use crate::mirror::MirroredBroker;

/// What a job consumer needs from a broker: deliveries in, receipts
/// out. Implemented by both [`Broker`] and [`MirroredBroker`]; the
/// mirrored implementation fans acknowledgements out to both zones.
pub trait BrokerHandle<T> {
    /// Deliver the oldest visible job whose tags are all within
    /// `capabilities`, marking it in flight.
    fn poll(&self, capabilities: &CapabilitySet, now_ms: u64) -> Option<Delivery<T>>;

    /// Acknowledge successful completion; the job is removed and never
    /// redelivered.
    fn ack(&self, job_id: u64) -> bool;

    /// Negative acknowledgement: the job becomes visible again
    /// immediately.
    fn nack(&self, job_id: u64) -> bool;
}

impl<T: Clone> BrokerHandle<T> for Broker<T> {
    fn poll(&self, capabilities: &CapabilitySet, now_ms: u64) -> Option<Delivery<T>> {
        Broker::poll(self, capabilities, now_ms)
    }

    fn ack(&self, job_id: u64) -> bool {
        Broker::ack(self, job_id)
    }

    fn nack(&self, job_id: u64) -> bool {
        Broker::nack(self, job_id)
    }
}

impl<T: Clone> BrokerHandle<T> for MirroredBroker<T> {
    fn poll(&self, capabilities: &CapabilitySet, now_ms: u64) -> Option<Delivery<T>> {
        MirroredBroker::poll(self, capabilities, now_ms)
    }

    /// Acks propagate to both zones — the property the whole trait
    /// exists to guarantee.
    fn ack(&self, job_id: u64) -> bool {
        MirroredBroker::ack(self, job_id)
    }

    fn nack(&self, job_id: u64) -> bool {
        MirroredBroker::nack(self, job_id)
    }
}

/// Shared ownership delegates: a worker holding an `Arc` to its broker
/// is the same consumer as one borrowing it.
impl<T, B: BrokerHandle<T>> BrokerHandle<T> for std::sync::Arc<B> {
    fn poll(&self, capabilities: &CapabilitySet, now_ms: u64) -> Option<Delivery<T>> {
        (**self).poll(capabilities, now_ms)
    }

    fn ack(&self, job_id: u64) -> bool {
        (**self).ack(job_id)
    }

    fn nack(&self, job_id: u64) -> bool {
        (**self).nack(job_id)
    }
}

impl<T, B: BrokerHandle<T>> BrokerHandle<T> for &B {
    fn poll(&self, capabilities: &CapabilitySet, now_ms: u64) -> Option<Delivery<T>> {
        (**self).poll(capabilities, now_ms)
    }

    fn ack(&self, job_id: u64) -> bool {
        (**self).ack(job_id)
    }

    fn nack(&self, job_id: u64) -> bool {
        (**self).nack(job_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tags(list: &[&str]) -> std::collections::BTreeSet<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    /// A consumer generic over the handle — what `WorkerNode` does.
    fn drain(handle: &impl BrokerHandle<&'static str>, caps: &CapabilitySet) -> usize {
        let mut done = 0;
        while let Some(d) = handle.poll(caps, 0) {
            handle.ack(d.meta.id);
            done += 1;
        }
        done
    }

    #[test]
    fn plain_broker_implements_the_handle() {
        let b: Broker<&str> = Broker::new(1000, 3);
        b.enqueue("x", tags(&[]), 0);
        assert_eq!(drain(&b, &["cuda"].into()), 1);
    }

    #[test]
    fn mirrored_acks_reach_the_standby() {
        let m: MirroredBroker<&str> = MirroredBroker::new(1000, 3);
        m.enqueue("x", tags(&[]), 0);
        assert_eq!(drain(&m, &["cuda"].into()), 1);
        // The ack went through the mirror: after failover the standby
        // has nothing left to deliver.
        m.failover();
        assert!(m.poll(&["cuda"].into(), 1).is_none());
    }
}
