//! `wb-queue` — the WebGPU 2.0 message broker (§VI-A).
//!
//! In the revised architecture, *"OpenEdx communicates with a queue
//! message broker server that can be replicated across Amazon
//! availability zones"*, and *"worker nodes poll the queue, accepting a
//! job if the node meets the job requirements"* — jobs are tagged
//! (Multi-GPU, MPI) and only capable workers take them.
//!
//! The broker provides:
//!
//! * tagged jobs with capability matching ([`Broker::poll`]);
//! * at-least-once delivery with **visibility timeouts**: an accepted
//!   job that is not acknowledged in time becomes visible again;
//! * bounded retries with a **dead-letter queue**;
//! * a mirrored standby and failover ([`MirroredBroker`]);
//! * metrics for depth/redelivery dashboards.
//!
//! Time is virtual (`now_ms` parameters) so the discrete-event course
//! simulation drives the broker deterministically.

pub mod broker;
pub mod capability;
pub mod handle;
pub mod mirror;
pub mod shard;

pub use broker::{Broker, BrokerMetrics, Delivery, JobMeta};
pub use capability::{Capability, CapabilitySet};
pub use handle::BrokerHandle;
pub use mirror::{ActiveZone, MirroredBroker};
pub use shard::{shard_for_course, ShardLane, ShardedBroker};
