//! Mirrored broker with failover across availability zones.
//!
//! §VI-A: the broker *"can be replicated across Amazon availability
//! zones — offering resiliency against faults"*. The mirrored broker
//! duplicates every enqueue to a standby; acknowledgements propagate
//! too. On failover the standby already holds every unacked job, so
//! nothing is lost (at-least-once: in-flight jobs are redelivered).

use crate::broker::{Broker, BrokerMetrics, Delivery};
use crate::capability::CapabilitySet;
use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::sync::Arc;
use wb_obs::Recorder;

/// Which zone is currently serving traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActiveZone {
    /// The primary AZ.
    Primary,
    /// The standby AZ after failover.
    Standby,
}

impl ActiveZone {
    /// The opposite zone.
    pub fn other(self) -> ActiveZone {
        match self {
            ActiveZone::Primary => ActiveZone::Standby,
            ActiveZone::Standby => ActiveZone::Primary,
        }
    }
}

/// A primary broker with a hot standby.
pub struct MirroredBroker<T> {
    primary: Broker<T>,
    standby: Broker<T>,
    active: Mutex<ActiveZone>,
    /// A zone cut off by a network partition. At most one zone can be
    /// partitioned, and it is always the passive one —
    /// [`MirroredBroker::partition`] fails over first when the cut
    /// zone was serving traffic. While set, enqueues are not mirrored
    /// to and acks are not fanned to that zone; [`MirroredBroker::heal`]
    /// rebuilds it from the active zone.
    partitioned: Mutex<Option<ActiveZone>>,
}

impl<T: Clone> MirroredBroker<T> {
    /// Build a mirrored pair with identical configuration.
    pub fn new(visibility_timeout_ms: u64, max_attempts: u32) -> Self {
        MirroredBroker::with_recorder(
            visibility_timeout_ms,
            max_attempts,
            Arc::new(Recorder::noop()),
        )
    }

    /// Mirrored pair reporting to a shared recorder. Both zones share
    /// it; passive-zone bookkeeping stays silent so fanned-out acks and
    /// mirrored enqueues are counted exactly once.
    pub fn with_recorder(
        visibility_timeout_ms: u64,
        max_attempts: u32,
        obs: Arc<Recorder>,
    ) -> Self {
        MirroredBroker::with_id_stride(visibility_timeout_ms, max_attempts, obs, 1, 1)
    }

    /// Mirrored pair whose zones both issue ids from the progression
    /// `first_id, first_id + stride, …` — one lane of a
    /// [`ShardedBroker`](crate::ShardedBroker). Both zones share the
    /// residue class, so the standby continues the primary's id
    /// sequence after failover.
    pub fn with_id_stride(
        visibility_timeout_ms: u64,
        max_attempts: u32,
        obs: Arc<Recorder>,
        first_id: u64,
        stride: u64,
    ) -> Self {
        MirroredBroker {
            primary: Broker::with_id_stride(
                visibility_timeout_ms,
                max_attempts,
                Arc::clone(&obs),
                first_id,
                stride,
            ),
            standby: Broker::with_id_stride(
                visibility_timeout_ms,
                max_attempts,
                obs,
                first_id,
                stride,
            ),
            active: Mutex::new(ActiveZone::Primary),
            partitioned: Mutex::new(None),
        }
    }

    /// Currently active zone.
    pub fn active_zone(&self) -> ActiveZone {
        *self.active.lock()
    }

    /// Borrow the currently active zone's broker for inspection
    /// (metrics, dead letters). Consumers must NOT poll/ack through
    /// this handle: an ack that only reaches the active zone leaves the
    /// standby holding the job, and a failover would redeliver — and
    /// re-execute — completed work. Poll and ack through the
    /// [`BrokerHandle`](crate::BrokerHandle) impl on the mirror itself.
    pub fn active_broker(&self) -> &Broker<T> {
        self.active()
    }

    fn active(&self) -> &Broker<T> {
        match *self.active.lock() {
            ActiveZone::Primary => &self.primary,
            ActiveZone::Standby => &self.standby,
        }
    }

    fn passive(&self) -> &Broker<T> {
        match *self.active.lock() {
            ActiveZone::Primary => &self.standby,
            ActiveZone::Standby => &self.primary,
        }
    }

    /// True when the passive zone is reachable for mirroring.
    fn passive_reachable(&self) -> bool {
        self.partitioned.lock().is_none()
    }

    /// Drop the passive zone's live copy of every job the active zone
    /// has dead-lettered. Without this, the standby keeps a
    /// never-delivered copy (mirrored at enqueue, dead-letters are not
    /// acked), and a later failover would re-run a poisoned job from
    /// scratch — and dead-letter it a second time, double-counting it
    /// in the books. Called on every active-zone observation; the dead
    /// queue is almost always empty, so the scan is effectively free.
    fn reconcile_dead(&self) {
        if !self.passive_reachable() {
            return;
        }
        for id in self.active().dead_ids() {
            self.passive().ack_untracked(id);
        }
    }

    /// Enqueue to the active zone and mirror to the standby.
    pub fn enqueue(&self, payload: T, tags: BTreeSet<String>, now_ms: u64) -> u64 {
        let id = self.active().enqueue(payload.clone(), tags.clone(), now_ms);
        // Mirror under the same id semantics: the standby assigns its
        // own ids, so we mirror payload+tags and reconcile on ack by
        // payload identity — to keep it simple and exact we instead
        // mirror via state restore with the primary's id. A partitioned
        // standby misses the mirror; `heal` rebuilds it wholesale.
        if self.passive_reachable() {
            self.passive().restore_state(vec![(
                crate::broker::JobMeta {
                    id,
                    tags,
                    enqueued_at: now_ms,
                    attempts: 0,
                },
                payload,
            )]);
        }
        id
    }

    /// Poll the active zone.
    pub fn poll(&self, capabilities: &CapabilitySet, now_ms: u64) -> Option<Delivery<T>> {
        let d = self.active().poll(capabilities, now_ms);
        self.reconcile_dead();
        d
    }

    /// Ack on both zones so the standby drops completed jobs.
    pub fn ack(&self, job_id: u64) -> bool {
        let ok = self.active().ack(job_id);
        if self.passive_reachable() {
            self.passive().ack_untracked(job_id);
        }
        ok
    }

    /// Negative-ack on the active zone.
    pub fn nack(&self, job_id: u64) -> bool {
        self.active().nack(job_id)
    }

    /// Visible depth in the active zone.
    pub fn depth(&self, now_ms: u64) -> usize {
        let d = self.active().depth(now_ms);
        self.reconcile_dead();
        d
    }

    /// Jobs in flight in the active zone.
    pub fn in_flight(&self, now_ms: u64) -> usize {
        self.active().in_flight(now_ms)
    }

    /// Metrics of the active zone.
    pub fn metrics(&self) -> BrokerMetrics {
        self.active().metrics()
    }

    /// Fail over to the standby. Unacked jobs survive; in-flight jobs
    /// on the failed zone are redelivered by the standby (they were
    /// mirrored at enqueue and never acked). Failing over *into* a
    /// partitioned zone would serve from a broker that missed every
    /// mirror since the cut, so the swap is refused (no-op) until the
    /// zone heals.
    pub fn failover(&self) {
        let mut g = self.active.lock();
        let target = g.other();
        if *self.partitioned.lock() == Some(target) {
            return;
        }
        *g = target;
    }

    /// Cut a zone off. If the cut zone was serving traffic, the mirror
    /// fails over first — the surviving zone already holds every
    /// unacked job. Returns false (and changes nothing) when a zone is
    /// already partitioned: with both zones cut there would be nobody
    /// left to serve, so the first partition must heal before another
    /// can start.
    pub fn partition(&self, zone: ActiveZone) -> bool {
        let mut part = self.partitioned.lock();
        if part.is_some() {
            return false;
        }
        {
            let mut g = self.active.lock();
            if *g == zone {
                *g = zone.other();
            }
        }
        *part = Some(zone);
        true
    }

    /// The currently partitioned zone, if any.
    pub fn partitioned_zone(&self) -> Option<ActiveZone> {
        *self.partitioned.lock()
    }

    /// Heal a partitioned zone: reconnect it and rebuild its state
    /// from the active zone (which saw every enqueue and ack during
    /// the cut). Returns false when `zone` was not partitioned.
    pub fn heal(&self, zone: ActiveZone) -> bool {
        {
            let mut part = self.partitioned.lock();
            if *part != Some(zone) {
                return false;
            }
            *part = None;
        }
        self.rebuild_passive();
        true
    }

    /// Drain dead letters from every reachable zone, deduplicated by
    /// job id — a job that dead-lettered on both zones (once per
    /// active stint) is handed out once and removed from both.
    pub fn drain_dead_letters(&self) -> Vec<Delivery<T>> {
        let mut out = self.active().take_dead_letters();
        if self.passive_reachable() {
            let known: BTreeSet<u64> = out.iter().map(|d| d.meta.id).collect();
            for d in self.passive().take_dead_letters() {
                if !known.contains(&d.meta.id) {
                    out.push(d);
                }
            }
        }
        out
    }

    /// Re-mirror the active zone's pending jobs into a fresh standby
    /// (recovery after the failed zone returns).
    pub fn resync_standby(&self) {
        self.rebuild_passive();
    }

    /// Rebuild the passive zone from the active one: pending jobs are
    /// replaced wholesale, and dead letters are merged — a letter held
    /// only by the returning zone (it dead-lettered there before the
    /// cut) is adopted by the active zone rather than wiped, so it
    /// stays drainable; a letter already drained from the active zone
    /// cannot resurface because both queues end up identical.
    fn rebuild_passive(&self) {
        // The passive broker may hold stale copies; rebuilding from the
        // active state keeps the pair consistent. (A fresh broker would
        // be used in production; restore into the existing one after
        // acking everything it knows is equivalent here because ids
        // are unique and monotonically increasing.)
        for (meta, _) in self.passive().drain_state() {
            self.passive().ack_untracked(meta.id);
        }
        self.passive().restore_state(self.active().drain_state());
        let mut dead = self.active().dead_letters();
        let known: BTreeSet<u64> = dead.iter().map(|d| d.meta.id).collect();
        for d in self.passive().take_dead_letters() {
            if !known.contains(&d.meta.id) {
                dead.push(d);
            }
        }
        self.active().replace_dead(dead.clone());
        self.passive().replace_dead(dead);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tags(list: &[&str]) -> BTreeSet<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    fn caps(list: &[&str]) -> CapabilitySet {
        list.iter().copied().collect()
    }

    #[test]
    fn mirror_receives_enqueues() {
        let m: MirroredBroker<&str> = MirroredBroker::new(1000, 3);
        m.enqueue("a", tags(&[]), 0);
        m.enqueue("b", tags(&[]), 0);
        assert_eq!(m.depth(0), 2);
        m.failover();
        assert_eq!(m.active_zone(), ActiveZone::Standby);
        // Both jobs survive the failover.
        assert_eq!(m.depth(0), 2);
    }

    #[test]
    fn acked_jobs_do_not_reappear_after_failover() {
        let m: MirroredBroker<&str> = MirroredBroker::new(1000, 3);
        m.enqueue("done", tags(&[]), 0);
        m.enqueue("pending", tags(&[]), 0);
        let caps = caps(&["cuda"]);
        let d = m.poll(&caps, 0).unwrap();
        assert_eq!(d.payload, "done");
        m.ack(d.meta.id);
        m.failover();
        let d2 = m.poll(&caps, 1).unwrap();
        assert_eq!(d2.payload, "pending", "only the unacked job remains");
        m.ack(d2.meta.id);
        assert!(m.poll(&caps, 2).is_none());
    }

    #[test]
    fn in_flight_jobs_redelivered_after_failover() {
        let m: MirroredBroker<&str> = MirroredBroker::new(60_000, 3);
        m.enqueue("crash victim", tags(&[]), 0);
        let caps = caps(&["cuda"]);
        let _d = m.poll(&caps, 0).unwrap();
        // Primary zone dies before the worker acks.
        m.failover();
        let d2 = m.poll(&caps, 1).expect("standby redelivers");
        assert_eq!(d2.payload, "crash victim");
    }

    #[test]
    fn ids_stay_consistent_across_zones() {
        let m: MirroredBroker<&str> = MirroredBroker::new(1000, 3);
        let id1 = m.enqueue("a", tags(&[]), 0);
        m.failover();
        let id2 = m.enqueue("b", tags(&[]), 0);
        assert_ne!(id1, id2, "standby continues the id sequence");
    }

    #[test]
    fn resync_after_recovery() {
        let m: MirroredBroker<&str> = MirroredBroker::new(1000, 3);
        m.enqueue("x", tags(&[]), 0);
        m.failover(); // standby now active
        m.enqueue("y", tags(&[]), 0);
        m.resync_standby(); // old primary rebuilt from standby
        m.failover(); // back to primary
        assert_eq!(m.depth(0), 2);
    }

    #[test]
    fn partition_of_active_zone_fails_over_first() {
        let m: MirroredBroker<&str> = MirroredBroker::new(1000, 3);
        m.enqueue("survivor", tags(&[]), 0);
        assert!(m.partition(ActiveZone::Primary));
        assert_eq!(m.active_zone(), ActiveZone::Standby);
        assert_eq!(m.partitioned_zone(), Some(ActiveZone::Primary));
        // The job was mirrored before the cut and survives on standby.
        let d = m.poll(&caps(&[]), 1).unwrap();
        assert_eq!(d.payload, "survivor");
        // A second partition is refused; failing back into the cut
        // zone is a no-op.
        assert!(!m.partition(ActiveZone::Standby));
        m.failover();
        assert_eq!(m.active_zone(), ActiveZone::Standby);
    }

    #[test]
    fn heal_rebuilds_the_cut_zone() {
        let m: MirroredBroker<&str> = MirroredBroker::new(1000, 3);
        m.enqueue("before", tags(&[]), 0);
        m.partition(ActiveZone::Standby);
        // Enqueued during the cut: only the active zone has it.
        m.enqueue("during", tags(&[]), 1);
        // Completed during the cut: the ack cannot fan to standby.
        let d = m.poll(&caps(&[]), 2).unwrap();
        assert_eq!(d.payload, "before");
        m.ack(d.meta.id);
        assert!(m.heal(ActiveZone::Standby));
        assert!(!m.heal(ActiveZone::Standby), "already healed");
        m.failover();
        // The healed zone serves exactly the surviving job — the cut
        // enqueue is present, the cut ack did not resurrect "before".
        let d2 = m.poll(&caps(&[]), 3).unwrap();
        assert_eq!(d2.payload, "during");
        m.ack(d2.meta.id);
        assert!(m.poll(&caps(&[]), 4).is_none());
    }

    #[test]
    fn dead_letter_is_not_rerun_by_the_standby_after_failover() {
        // Regression: the standby's mirrored copy of a job is never
        // acked when the job dead-letters on the active zone, so a
        // failover used to redeliver a poisoned job from scratch and
        // dead-letter it a second time. Reconciliation on observation
        // must drop the standby copy.
        let m: MirroredBroker<&str> = MirroredBroker::new(10, 1);
        m.enqueue("poison", tags(&[]), 0);
        let _d = m.poll(&caps(&[]), 0).unwrap();
        // Visibility lapses; the observation dead-letters on primary
        // and reconciles the standby.
        assert_eq!(m.depth(10), 0);
        m.failover();
        assert!(
            m.poll(&caps(&[]), 11).is_none(),
            "standby must not re-run a dead-lettered job"
        );
        let drained = m.drain_dead_letters();
        assert_eq!(drained.len(), 1, "exactly one letter across both zones");
        assert_eq!(drained[0].payload, "poison");
        assert!(m.drain_dead_letters().is_empty(), "drain removes from both");
    }

    #[test]
    fn dead_letter_on_partitioned_zone_is_drainable_after_heal() {
        // A job dead-letters on the active zone, which is then
        // partitioned before anyone drains the letter. While cut off,
        // the letter is unreachable; heal must carry it back into the
        // serving side instead of wiping the returning zone's queue.
        let m: MirroredBroker<&str> = MirroredBroker::new(10, 1);
        m.enqueue("poison", tags(&[]), 0);
        let _d = m.poll(&caps(&[]), 0).unwrap();
        assert_eq!(m.depth(10), 0); // dead-letters on primary
        m.partition(ActiveZone::Primary); // letter now unreachable
        assert!(m.drain_dead_letters().is_empty());
        assert!(m.heal(ActiveZone::Primary));
        let drained = m.drain_dead_letters();
        assert_eq!(drained.len(), 1, "healed letter drains exactly once");
        assert_eq!(drained[0].payload, "poison");
        assert!(m.drain_dead_letters().is_empty(), "no duplicate remains");
    }
}
