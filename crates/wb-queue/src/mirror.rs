//! Mirrored broker with failover across availability zones.
//!
//! §VI-A: the broker *"can be replicated across Amazon availability
//! zones — offering resiliency against faults"*. The mirrored broker
//! duplicates every enqueue to a standby; acknowledgements propagate
//! too. On failover the standby already holds every unacked job, so
//! nothing is lost (at-least-once: in-flight jobs are redelivered).

use crate::broker::{Broker, BrokerMetrics, Delivery};
use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::sync::Arc;
use wb_obs::Recorder;

/// Which zone is currently serving traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActiveZone {
    /// The primary AZ.
    Primary,
    /// The standby AZ after failover.
    Standby,
}

/// A primary broker with a hot standby.
pub struct MirroredBroker<T> {
    primary: Broker<T>,
    standby: Broker<T>,
    active: Mutex<ActiveZone>,
}

impl<T: Clone> MirroredBroker<T> {
    /// Build a mirrored pair with identical configuration.
    pub fn new(visibility_timeout_ms: u64, max_attempts: u32) -> Self {
        MirroredBroker::with_recorder(
            visibility_timeout_ms,
            max_attempts,
            Arc::new(Recorder::noop()),
        )
    }

    /// Mirrored pair reporting to a shared recorder. Both zones share
    /// it; passive-zone bookkeeping stays silent so fanned-out acks and
    /// mirrored enqueues are counted exactly once.
    pub fn with_recorder(
        visibility_timeout_ms: u64,
        max_attempts: u32,
        obs: Arc<Recorder>,
    ) -> Self {
        MirroredBroker::with_id_stride(visibility_timeout_ms, max_attempts, obs, 1, 1)
    }

    /// Mirrored pair whose zones both issue ids from the progression
    /// `first_id, first_id + stride, …` — one lane of a
    /// [`ShardedBroker`](crate::ShardedBroker). Both zones share the
    /// residue class, so the standby continues the primary's id
    /// sequence after failover.
    pub fn with_id_stride(
        visibility_timeout_ms: u64,
        max_attempts: u32,
        obs: Arc<Recorder>,
        first_id: u64,
        stride: u64,
    ) -> Self {
        MirroredBroker {
            primary: Broker::with_id_stride(
                visibility_timeout_ms,
                max_attempts,
                Arc::clone(&obs),
                first_id,
                stride,
            ),
            standby: Broker::with_id_stride(
                visibility_timeout_ms,
                max_attempts,
                obs,
                first_id,
                stride,
            ),
            active: Mutex::new(ActiveZone::Primary),
        }
    }

    /// Currently active zone.
    pub fn active_zone(&self) -> ActiveZone {
        *self.active.lock()
    }

    /// Borrow the currently active zone's broker for inspection
    /// (metrics, dead letters). Consumers must NOT poll/ack through
    /// this handle: an ack that only reaches the active zone leaves the
    /// standby holding the job, and a failover would redeliver — and
    /// re-execute — completed work. Poll and ack through the
    /// [`BrokerHandle`](crate::BrokerHandle) impl on the mirror itself.
    pub fn active_broker(&self) -> &Broker<T> {
        self.active()
    }

    fn active(&self) -> &Broker<T> {
        match *self.active.lock() {
            ActiveZone::Primary => &self.primary,
            ActiveZone::Standby => &self.standby,
        }
    }

    fn passive(&self) -> &Broker<T> {
        match *self.active.lock() {
            ActiveZone::Primary => &self.standby,
            ActiveZone::Standby => &self.primary,
        }
    }

    /// Enqueue to the active zone and mirror to the standby.
    pub fn enqueue(&self, payload: T, tags: BTreeSet<String>, now_ms: u64) -> u64 {
        let id = self.active().enqueue(payload.clone(), tags.clone(), now_ms);
        // Mirror under the same id semantics: the standby assigns its
        // own ids, so we mirror payload+tags and reconcile on ack by
        // payload identity — to keep it simple and exact we instead
        // mirror via state restore with the primary's id.
        self.passive().restore_state(vec![(
            crate::broker::JobMeta {
                id,
                tags,
                enqueued_at: now_ms,
                attempts: 0,
            },
            payload,
        )]);
        id
    }

    /// Poll the active zone.
    pub fn poll(&self, capabilities: &BTreeSet<String>, now_ms: u64) -> Option<Delivery<T>> {
        self.active().poll(capabilities, now_ms)
    }

    /// Ack on both zones so the standby drops completed jobs.
    pub fn ack(&self, job_id: u64) -> bool {
        let ok = self.active().ack(job_id);
        self.passive().ack_untracked(job_id);
        ok
    }

    /// Negative-ack on the active zone.
    pub fn nack(&self, job_id: u64) -> bool {
        self.active().nack(job_id)
    }

    /// Visible depth in the active zone.
    pub fn depth(&self, now_ms: u64) -> usize {
        self.active().depth(now_ms)
    }

    /// Jobs in flight in the active zone.
    pub fn in_flight(&self, now_ms: u64) -> usize {
        self.active().in_flight(now_ms)
    }

    /// Metrics of the active zone.
    pub fn metrics(&self) -> BrokerMetrics {
        self.active().metrics()
    }

    /// Fail over to the standby. Unacked jobs survive; in-flight jobs
    /// on the failed zone are redelivered by the standby (they were
    /// mirrored at enqueue and never acked).
    pub fn failover(&self) {
        let mut g = self.active.lock();
        *g = match *g {
            ActiveZone::Primary => ActiveZone::Standby,
            ActiveZone::Standby => ActiveZone::Primary,
        };
    }

    /// Re-mirror the active zone's pending jobs into a fresh standby
    /// (recovery after the failed zone returns).
    pub fn resync_standby(&self) {
        let state = self.active().drain_state();
        // The passive broker may hold stale copies; rebuilding from the
        // active state keeps the pair consistent. (A fresh broker would
        // be used in production; restore into the existing one after
        // acking everything it knows is equivalent here because ids
        // are unique and monotonically increasing.)
        for (meta, _) in self.passive().drain_state() {
            self.passive().ack(meta.id);
        }
        self.passive().restore_state(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tags(list: &[&str]) -> BTreeSet<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn mirror_receives_enqueues() {
        let m: MirroredBroker<&str> = MirroredBroker::new(1000, 3);
        m.enqueue("a", tags(&[]), 0);
        m.enqueue("b", tags(&[]), 0);
        assert_eq!(m.depth(0), 2);
        m.failover();
        assert_eq!(m.active_zone(), ActiveZone::Standby);
        // Both jobs survive the failover.
        assert_eq!(m.depth(0), 2);
    }

    #[test]
    fn acked_jobs_do_not_reappear_after_failover() {
        let m: MirroredBroker<&str> = MirroredBroker::new(1000, 3);
        m.enqueue("done", tags(&[]), 0);
        m.enqueue("pending", tags(&[]), 0);
        let caps = tags(&["cuda"]);
        let d = m.poll(&caps, 0).unwrap();
        assert_eq!(d.payload, "done");
        m.ack(d.meta.id);
        m.failover();
        let d2 = m.poll(&caps, 1).unwrap();
        assert_eq!(d2.payload, "pending", "only the unacked job remains");
        m.ack(d2.meta.id);
        assert!(m.poll(&caps, 2).is_none());
    }

    #[test]
    fn in_flight_jobs_redelivered_after_failover() {
        let m: MirroredBroker<&str> = MirroredBroker::new(60_000, 3);
        m.enqueue("crash victim", tags(&[]), 0);
        let caps = tags(&["cuda"]);
        let _d = m.poll(&caps, 0).unwrap();
        // Primary zone dies before the worker acks.
        m.failover();
        let d2 = m.poll(&caps, 1).expect("standby redelivers");
        assert_eq!(d2.payload, "crash victim");
    }

    #[test]
    fn ids_stay_consistent_across_zones() {
        let m: MirroredBroker<&str> = MirroredBroker::new(1000, 3);
        let id1 = m.enqueue("a", tags(&[]), 0);
        m.failover();
        let id2 = m.enqueue("b", tags(&[]), 0);
        assert_ne!(id1, id2, "standby continues the id sequence");
    }

    #[test]
    fn resync_after_recovery() {
        let m: MirroredBroker<&str> = MirroredBroker::new(1000, 3);
        m.enqueue("x", tags(&[]), 0);
        m.failover(); // standby now active
        m.enqueue("y", tags(&[]), 0);
        m.resync_standby(); // old primary rebuilt from standby
        m.failover(); // back to primary
        assert_eq!(m.depth(0), 2);
    }
}
