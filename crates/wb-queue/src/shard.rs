//! [`ShardedBroker`] — N mirrored broker lanes behind one id space.
//!
//! A single broker serializes every enqueue, poll, and ack on one
//! mutex; at MOOC scale the control plane must spread that contention
//! across cores. The sharded broker splits traffic into `N`
//! independent [`MirroredBroker`] lanes:
//!
//! * **Lane selection** is by course: FNV-1a of the course id mod `N`
//!   ([`shard_for_course`]), so one course's jobs stay FIFO within a
//!   lane. Callers that already routed (the sharded scheduler) enqueue
//!   to an explicit lane with [`ShardedBroker::enqueue_to`].
//! * **Id striping**: lane `i` issues ids `i+1, i+1+N, i+1+2N, …` —
//!   every id names its lane by residue (`(id-1) % N`), so acks and
//!   nacks route without a shared id→lane map, and ids never collide
//!   across lanes.
//! * **Work stealing on poll**: a worker polls its home lane first and
//!   then sweeps the other lanes ([`ShardLane`] implements
//!   [`BrokerHandle`]), so an idle lane's worker drains a loaded
//!   sibling instead of starving.
//!
//! Depth, in-flight, and metrics aggregate across lanes so the
//! autoscaler and the reconciliation invariants (`enqueued == acked +
//! dead_lettered`) see one logical queue.

use crate::broker::{BrokerMetrics, Delivery};
use crate::capability::CapabilitySet;
use crate::handle::BrokerHandle;
use crate::mirror::{ActiveZone, MirroredBroker};
use std::collections::BTreeSet;
use std::sync::Arc;
use wb_obs::Recorder;

/// Stable lane for a course: FNV-1a over the course id, mod `shards`.
/// The hash is fixed (not `DefaultHasher`) so lane placement is
/// reproducible across runs and processes — replayed traces land on
/// the same lanes.
pub fn shard_for_course(course: &str, shards: usize) -> usize {
    debug_assert!(shards > 0, "at least one shard");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in course.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    (h % shards as u64) as usize
}

/// `N` mirrored broker lanes sharing one striped id space.
pub struct ShardedBroker<T> {
    lanes: Vec<MirroredBroker<T>>,
}

impl<T: Clone> ShardedBroker<T> {
    /// Sharded broker with `shards` lanes (clamped to at least 1).
    pub fn new(shards: usize, visibility_timeout_ms: u64, max_attempts: u32) -> Self {
        ShardedBroker::with_recorder(
            shards,
            visibility_timeout_ms,
            max_attempts,
            Arc::new(Recorder::noop()),
        )
    }

    /// Sharded broker whose lanes all report to one recorder.
    pub fn with_recorder(
        shards: usize,
        visibility_timeout_ms: u64,
        max_attempts: u32,
        obs: Arc<Recorder>,
    ) -> Self {
        let n = shards.max(1);
        let lanes = (0..n)
            .map(|i| {
                MirroredBroker::with_id_stride(
                    visibility_timeout_ms,
                    max_attempts,
                    Arc::clone(&obs),
                    i as u64 + 1,
                    n as u64,
                )
            })
            .collect();
        ShardedBroker { lanes }
    }

    /// Number of lanes.
    pub fn shards(&self) -> usize {
        self.lanes.len()
    }

    /// Lane that issued `job_id` (ids start at 1 and stripe by lane).
    pub fn lane_of(&self, job_id: u64) -> usize {
        debug_assert!(job_id >= 1, "broker ids start at 1");
        ((job_id - 1) % self.lanes.len() as u64) as usize
    }

    /// Home lane for a course.
    pub fn shard_for(&self, course: &str) -> usize {
        shard_for_course(course, self.lanes.len())
    }

    /// Enqueue into an explicit lane; returns the striped job id.
    pub fn enqueue_to(&self, lane: usize, payload: T, tags: BTreeSet<String>, now_ms: u64) -> u64 {
        self.lanes[lane % self.lanes.len()].enqueue(payload, tags, now_ms)
    }

    /// Enqueue routed by course hash.
    pub fn enqueue(&self, course: &str, payload: T, tags: BTreeSet<String>, now_ms: u64) -> u64 {
        self.enqueue_to(self.shard_for(course), payload, tags, now_ms)
    }

    /// Poll starting at `home`, stealing from the other lanes in ring
    /// order if the home lane has nothing deliverable.
    pub fn poll_from(
        &self,
        home: usize,
        capabilities: &CapabilitySet,
        now_ms: u64,
    ) -> Option<Delivery<T>> {
        let n = self.lanes.len();
        let home = home % n;
        (0..n).find_map(|k| self.lanes[(home + k) % n].poll(capabilities, now_ms))
    }

    /// Ack, routed to the issuing lane by id residue.
    pub fn ack(&self, job_id: u64) -> bool {
        self.lanes[self.lane_of(job_id)].ack(job_id)
    }

    /// Nack, routed to the issuing lane by id residue.
    pub fn nack(&self, job_id: u64) -> bool {
        self.lanes[self.lane_of(job_id)].nack(job_id)
    }

    /// Visible depth summed over all lanes.
    pub fn depth(&self, now_ms: u64) -> usize {
        self.lanes.iter().map(|l| l.depth(now_ms)).sum()
    }

    /// In-flight jobs summed over all lanes.
    pub fn in_flight(&self, now_ms: u64) -> usize {
        self.lanes.iter().map(|l| l.in_flight(now_ms)).sum()
    }

    /// Metrics aggregated field-wise over all lanes, so the books
    /// reconcile cluster-wide exactly as they do for a single broker.
    pub fn metrics(&self) -> BrokerMetrics {
        let mut total = BrokerMetrics::default();
        for l in &self.lanes {
            let m = l.metrics();
            total.enqueued += m.enqueued;
            total.delivered += m.delivered;
            total.acked += m.acked;
            total.nacked += m.nacked;
            total.timeouts += m.timeouts;
            total.dead_lettered += m.dead_lettered;
        }
        total
    }

    /// Fail every lane over to its standby zone.
    pub fn failover(&self) {
        for l in &self.lanes {
            l.failover();
        }
    }

    /// Cut `zone` off on every lane (failing lanes over first when
    /// the cut zone was serving). True when every lane accepted the
    /// partition — lanes move in lockstep, so a refusal (some zone
    /// already cut) leaves nothing half-done.
    pub fn partition(&self, zone: ActiveZone) -> bool {
        self.lanes.iter().all(|l| l.partition(zone))
    }

    /// Heal `zone` on every lane, rebuilding it from each lane's
    /// active zone. True when the zone was partitioned.
    pub fn heal(&self, zone: ActiveZone) -> bool {
        self.lanes.iter().all(|l| l.heal(zone))
    }

    /// The partitioned zone, if any — lanes transition in lockstep,
    /// so lane 0 speaks for all.
    pub fn partitioned_zone(&self) -> Option<ActiveZone> {
        self.lanes[0].partitioned_zone()
    }

    /// The serving zone — lanes transition in lockstep, so lane 0
    /// speaks for all.
    pub fn active_zone(&self) -> ActiveZone {
        self.lanes[0].active_zone()
    }

    /// Drain dead letters from every lane (ids are unique across
    /// lanes, and each lane deduplicates across its zones).
    pub fn drain_dead_letters(&self) -> Vec<Delivery<T>> {
        self.lanes
            .iter()
            .flat_map(|l| l.drain_dead_letters())
            .collect()
    }

    /// A [`BrokerHandle`] view anchored at `home` — what a worker
    /// pinned to lane `home` polls through.
    pub fn lane(&self, home: usize) -> ShardLane<'_, T> {
        ShardLane { broker: self, home }
    }
}

/// A worker's view of the sharded broker: polls prefer the `home`
/// lane and steal from siblings; receipts route by id residue.
pub struct ShardLane<'a, T> {
    broker: &'a ShardedBroker<T>,
    home: usize,
}

impl<T: Clone> BrokerHandle<T> for ShardLane<'_, T> {
    fn poll(&self, capabilities: &CapabilitySet, now_ms: u64) -> Option<Delivery<T>> {
        self.broker.poll_from(self.home, capabilities, now_ms)
    }

    fn ack(&self, job_id: u64) -> bool {
        self.broker.ack(job_id)
    }

    fn nack(&self, job_id: u64) -> bool {
        self.broker.nack(job_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tags(list: &[&str]) -> BTreeSet<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    fn caps() -> CapabilitySet {
        ["cuda"].into()
    }

    #[test]
    fn course_hash_is_stable_and_in_range() {
        for shards in 1..9 {
            for course in ["cs100", "ece408", "hpp", ""] {
                let s = shard_for_course(course, shards);
                assert!(s < shards);
                assert_eq!(s, shard_for_course(course, shards), "deterministic");
            }
        }
    }

    #[test]
    fn ids_stripe_by_lane_and_never_collide() {
        let b: ShardedBroker<u64> = ShardedBroker::new(4, 1000, 3);
        let mut seen = BTreeSet::new();
        for lane in 0..4 {
            for j in 0..8u64 {
                let id = b.enqueue_to(lane, j, tags(&[]), 0);
                assert_eq!(b.lane_of(id), lane, "id {id} names its lane");
                assert!(seen.insert(id), "id {id} issued twice");
            }
        }
    }

    #[test]
    fn acks_route_across_lanes() {
        let b: ShardedBroker<&str> = ShardedBroker::new(3, 1000, 3);
        let mut ids = Vec::new();
        for lane in 0..3 {
            ids.push(b.enqueue_to(lane, "job", tags(&[]), 0));
        }
        // Deliver everything through one worker's stealing view, then
        // ack through the same handle: each receipt must reach the
        // lane that issued it.
        let view = b.lane(1);
        let mut delivered = Vec::new();
        while let Some(d) = view.poll(&caps(), 0) {
            delivered.push(d.meta.id);
        }
        assert_eq!(delivered.len(), 3);
        for id in delivered {
            assert!(view.ack(id), "ack {id} routed to its lane");
        }
        assert_eq!(b.depth(1), 0);
        assert_eq!(b.in_flight(1), 0);
        let m = b.metrics();
        assert_eq!((m.enqueued, m.delivered, m.acked), (3, 3, 3));
        assert!(ids.iter().all(|&id| !b.ack(id)), "nothing acks twice");
    }

    #[test]
    fn home_lane_drains_before_stealing() {
        let b: ShardedBroker<&str> = ShardedBroker::new(2, 1000, 3);
        b.enqueue_to(0, "other lane", tags(&[]), 0);
        b.enqueue_to(1, "home lane", tags(&[]), 0);
        let view = b.lane(1);
        let first = view.poll(&caps(), 0).unwrap();
        assert_eq!(first.payload, "home lane");
        let second = view.poll(&caps(), 0).unwrap();
        assert_eq!(second.payload, "other lane", "idle home steals");
    }

    #[test]
    fn stealing_respects_capability_tags() {
        let b: ShardedBroker<&str> = ShardedBroker::new(2, 1000, 3);
        b.enqueue_to(0, "mpi job", tags(&["mpi"]), 0);
        let plain = b.lane(1);
        assert!(plain.poll(&caps(), 0).is_none(), "steal can't ignore tags");
        let capable = b.lane(1);
        let d = capable.poll(&["cuda", "mpi"].into(), 1).unwrap();
        assert_eq!(d.payload, "mpi job");
    }

    #[test]
    fn failover_fans_to_every_lane() {
        let b: ShardedBroker<&str> = ShardedBroker::new(4, 60_000, 3);
        let mut pending = Vec::new();
        for lane in 0..4 {
            pending.push(b.enqueue_to(lane, "survives", tags(&[]), 0));
        }
        // One delivery in flight on lane 0; zones die everywhere.
        let d = b.lane(0).poll(&caps(), 0).unwrap();
        b.failover();
        // The in-flight job is redelivered by its standby; nothing lost.
        assert_eq!(b.depth(1), 4);
        assert_eq!(b.lane_of(d.meta.id), 0);
    }

    #[test]
    fn course_routed_enqueue_keeps_a_course_on_one_lane() {
        let b: ShardedBroker<u64> = ShardedBroker::new(4, 1000, 3);
        let lane = b.shard_for("cs100");
        for j in 0..6 {
            let id = b.enqueue("cs100", j, tags(&[]), 0);
            assert_eq!(b.lane_of(id), lane, "course stays on its lane");
        }
        // FIFO within the course: the lane preserves offer order.
        let view = b.lane(lane);
        for expect in 0..6 {
            let d = view.poll(&caps(), 1).unwrap();
            assert_eq!(d.payload, expect);
            view.ack(d.meta.id);
        }
    }

    #[test]
    fn single_lane_degenerates_to_the_plain_mirror() {
        let b: ShardedBroker<&str> = ShardedBroker::new(1, 1000, 3);
        let id1 = b.enqueue("any", "a", tags(&[]), 0);
        let id2 = b.enqueue("other", "b", tags(&[]), 0);
        assert_eq!((id1, id2), (1, 2), "stride 1: dense ids");
        assert_eq!(b.depth(0), 2);
    }
}
