//! Property-based tests: at-least-once delivery invariants of the
//! broker under arbitrary interleavings of operations and time.

use proptest::prelude::*;
use std::collections::{BTreeSet, HashMap};
use wb_queue::{Broker, CapabilitySet};

#[derive(Debug, Clone)]
enum Op {
    Enqueue(u8),
    Poll,
    Ack(u8),
    Nack(u8),
    Advance(u16),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        any::<u8>().prop_map(Op::Enqueue),
        Just(Op::Poll),
        any::<u8>().prop_map(Op::Ack),
        any::<u8>().prop_map(Op::Nack),
        (1u16..2000).prop_map(Op::Advance),
    ]
}

proptest! {
    /// Across any operation sequence: every enqueued payload is either
    /// still pending, in flight, acked, or dead-lettered — never lost,
    /// and never acked twice.
    #[test]
    fn no_job_is_lost_or_double_acked(ops in prop::collection::vec(op_strategy(), 0..80)) {
        let broker: Broker<u8> = Broker::new(500, 3);
        let caps: CapabilitySet = ["cuda"].into();
        let mut now: u64 = 0;
        let mut enqueued: HashMap<u64, u8> = HashMap::new();
        let mut delivered_ids: Vec<u64> = Vec::new();
        let mut acked: BTreeSet<u64> = BTreeSet::new();

        for op in ops {
            match op {
                Op::Enqueue(p) => {
                    let id = broker.enqueue(p, BTreeSet::new(), now);
                    prop_assert!(!enqueued.contains_key(&id), "ids unique");
                    enqueued.insert(id, p);
                }
                Op::Poll => {
                    if let Some(d) = broker.poll(&caps, now) {
                        prop_assert_eq!(
                            enqueued.get(&d.meta.id).copied(),
                            Some(d.payload),
                            "payload matches enqueue"
                        );
                        prop_assert!(!acked.contains(&d.meta.id), "acked jobs never redelivered");
                        delivered_ids.push(d.meta.id);
                    }
                }
                Op::Ack(k) => {
                    if delivered_ids.is_empty() { continue; }
                    let id = delivered_ids[k as usize % delivered_ids.len()];
                    let ok = broker.ack(id);
                    if ok {
                        prop_assert!(!acked.contains(&id), "double ack must return false");
                        acked.insert(id);
                    }
                }
                Op::Nack(k) => {
                    if delivered_ids.is_empty() { continue; }
                    let id = delivered_ids[k as usize % delivered_ids.len()];
                    let _ = broker.nack(id);
                }
                Op::Advance(dt) => {
                    now += dt as u64;
                }
            }
        }

        // Conservation: enqueued = acked + (visible + in-flight + dead).
        // Drain what's left with generous time and retries.
        let mut live = 0usize;
        now += 10_000;
        while let Some(d) = broker.poll(&caps, now) {
            live += 1;
            broker.ack(d.meta.id);
            prop_assert!(live <= enqueued.len() * 4, "drain terminates");
        }
        let dead = broker.dead_letters().len();
        prop_assert_eq!(
            acked.len() + live + dead,
            enqueued.len(),
            "every job accounted for: acked {} + drained {} + dead {} vs {}",
            acked.len(), live, dead, enqueued.len()
        );
    }

    /// Metrics are internally consistent after any sequence.
    #[test]
    fn metrics_are_consistent(ops in prop::collection::vec(op_strategy(), 0..60)) {
        let broker: Broker<u8> = Broker::new(300, 2);
        let caps = CapabilitySet::new();
        let mut now = 0u64;
        let mut delivered = Vec::new();
        for op in ops {
            match op {
                Op::Enqueue(p) => { broker.enqueue(p, BTreeSet::new(), now); }
                Op::Poll => {
                    if let Some(d) = broker.poll(&caps, now) {
                        delivered.push(d.meta.id);
                    }
                }
                Op::Ack(k) if !delivered.is_empty() => {
                    broker.ack(delivered[k as usize % delivered.len()]);
                }
                Op::Nack(k) if !delivered.is_empty() => {
                    broker.nack(delivered[k as usize % delivered.len()]);
                }
                Op::Advance(dt) => now += dt as u64,
                _ => {}
            }
            let m = broker.metrics();
            prop_assert!(m.acked <= m.delivered, "acks only follow deliveries");
            prop_assert!(m.delivered <= m.enqueued + m.timeouts + m.nacked,
                "deliveries bounded by enqueues plus redeliveries");
            prop_assert!(m.dead_lettered <= m.enqueued);
        }
    }
}
