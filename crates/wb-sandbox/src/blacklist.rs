//! Compile-time blacklist scanner.
//!
//! From the paper: *"A textual scan on the unparsed code disallows
//! certain strings such as `asm();` which introduces inlined assembly
//! which may potentially escape any sandbox in place. This method
//! rejects code which contains the black listed functions even within
//! comments. If the black list search is run on the code after running
//! the preprocessor, we can avoid false negatives, but few users found
//! the false negatives a nuisance."*
//!
//! Both scan modes are implemented so the trade-off can be measured
//! (one of the ablations in DESIGN.md): [`ScanMode::RawText`] is the
//! production behaviour (comments included), [`ScanMode::Preprocessed`]
//! strips comments first.

use serde::{Deserialize, Serialize};

/// How the scanner treats the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScanMode {
    /// Scan the raw, unparsed text — the paper's production mode.
    /// Matches inside comments cause (documented) false positives.
    RawText,
    /// Strip comments first, eliminating comment-induced false
    /// positives at the cost of scanning slightly later in the pipeline.
    Preprocessed,
}

/// One blacklist hit.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Violation {
    /// The blacklisted pattern that matched.
    pub pattern: String,
    /// 1-based line of the first match.
    pub line: usize,
    /// Message shown to the student.
    pub message: String,
}

/// A set of forbidden substrings, matched on identifier boundaries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Blacklist {
    patterns: Vec<String>,
    mode: ScanMode,
}

impl Blacklist {
    /// The default deny set used by the GPU labs: inline assembly,
    /// process control, raw I/O, and dynamic loading.
    pub fn standard() -> Self {
        Blacklist {
            patterns: [
                "asm", "__asm__", "system", "popen", "fork", "execve", "execvp", "fopen", "open",
                "socket", "dlopen", "syscall", "mmap", "ptrace",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
            mode: ScanMode::RawText,
        }
    }

    /// An empty blacklist (used by instructor reference runs).
    pub fn permissive() -> Self {
        Blacklist {
            patterns: Vec::new(),
            mode: ScanMode::RawText,
        }
    }

    /// Build a custom blacklist.
    pub fn new(patterns: Vec<String>, mode: ScanMode) -> Self {
        Blacklist { patterns, mode }
    }

    /// Change the scan mode.
    pub fn with_mode(mut self, mode: ScanMode) -> Self {
        self.mode = mode;
        self
    }

    /// Patterns in the deny set.
    pub fn patterns(&self) -> &[String] {
        &self.patterns
    }

    /// The active scan mode.
    pub fn mode(&self) -> ScanMode {
        self.mode
    }

    /// Scan `source`, returning every violation (empty = clean).
    pub fn scan(&self, source: &str) -> Vec<Violation> {
        let text: String = match self.mode {
            ScanMode::RawText => source.to_string(),
            ScanMode::Preprocessed => strip_comments_lossy(source),
        };
        let mut out = Vec::new();
        for pat in &self.patterns {
            if let Some(line) = find_identifier(&text, pat) {
                out.push(Violation {
                    pattern: pat.clone(),
                    line,
                    message: format!("use of `{pat}` is not allowed in this lab (line {line})"),
                });
            }
        }
        out
    }

    /// Convenience: true when the source is clean.
    pub fn permits(&self, source: &str) -> bool {
        self.scan(source).is_empty()
    }
}

/// Find `word` as a whole identifier outside string literals; returns
/// the 1-based line of the first occurrence.
fn find_identifier(text: &str, word: &str) -> Option<usize> {
    let bytes = text.as_bytes();
    let wlen = word.len();
    if wlen == 0 {
        return None;
    }
    let mut line = 1usize;
    let mut i = 0usize;
    let mut in_str = false;
    while i < bytes.len() {
        let c = bytes[i];
        if c == b'\n' {
            line += 1;
            in_str = false; // unterminated string: stop skipping
            i += 1;
            continue;
        }
        if in_str {
            if c == b'\\' {
                i += 2;
                continue;
            }
            if c == b'"' {
                in_str = false;
            }
            i += 1;
            continue;
        }
        if c == b'"' {
            in_str = true;
            i += 1;
            continue;
        }
        // Byte-level match: `i` may fall inside a multi-byte UTF-8
        // character in student source, where a str slice would panic.
        if bytes[i..].starts_with(word.as_bytes()) {
            let before_ok = i == 0 || !is_ident_byte(bytes[i - 1]);
            let after_ok = i + wlen >= bytes.len() || !is_ident_byte(bytes[i + wlen]);
            if before_ok && after_ok {
                return Some(line);
            }
        }
        i += 1;
    }
    None
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Best-effort comment stripping for [`ScanMode::Preprocessed`] —
/// unlike the real preprocessor this never fails; malformed input is
/// passed through so the scan still sees it.
fn strip_comments_lossy(source: &str) -> String {
    minicuda::preprocessor::strip_comments(source).unwrap_or_else(|_| source.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_inline_asm() {
        let bl = Blacklist::standard();
        let v = bl.scan("int main() { asm(\"nop\"); return 0; }");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].pattern, "asm");
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn raw_mode_flags_comments_false_positive() {
        // The paper documents this exact behaviour.
        let bl = Blacklist::standard();
        let src = "// do not use asm here\nint main() { return 0; }";
        assert!(!bl.permits(src), "raw scan flags the comment");
    }

    #[test]
    fn preprocessed_mode_ignores_comments() {
        let bl = Blacklist::standard().with_mode(ScanMode::Preprocessed);
        let src = "// do not use asm here\nint main() { return 0; }";
        assert!(bl.permits(src), "preprocessed scan skips the comment");
    }

    #[test]
    fn preprocessed_mode_still_catches_real_use() {
        let bl = Blacklist::standard().with_mode(ScanMode::Preprocessed);
        assert!(!bl.permits("int main() { system(\"ls\"); }"));
    }

    #[test]
    fn identifier_boundaries_respected() {
        let bl = Blacklist::standard();
        // `asmx` and `my_asm` are different identifiers.
        assert!(bl.permits("int asmx = 0; int my_asm = 1;"));
        // but a bare `asm` token matches even without parentheses.
        assert!(!bl.permits("int x = asm;"));
    }

    #[test]
    fn string_literals_do_not_match() {
        let bl = Blacklist::standard();
        assert!(bl.permits("int main() { wbLog(TRACE, \"asm is evil\"); return 0; }"));
    }

    #[test]
    fn reports_correct_line() {
        let bl = Blacklist::standard();
        let v = bl.scan("int main() {\n  int x = 0;\n  fork();\n}");
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn multiple_patterns_all_reported() {
        let bl = Blacklist::standard();
        let v = bl.scan("asm(); system(); fork();");
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn permissive_allows_everything() {
        assert!(Blacklist::permissive().permits("asm(); system(); execve();"));
    }

    #[test]
    fn custom_patterns() {
        let bl = Blacklist::new(vec!["goto".to_string()], ScanMode::RawText);
        assert!(!bl.permits("goto fail;"));
        assert!(bl.permits("int gotoX;"));
        assert_eq!(bl.patterns(), &["goto".to_string()]);
    }

    #[test]
    fn clean_lab_code_passes() {
        let bl = Blacklist::standard();
        let src = r#"
            __global__ void vecAdd(float* a, float* b, float* c, int n) {
                int i = blockIdx.x * blockDim.x + threadIdx.x;
                if (i < n) { c[i] = a[i] + b[i]; }
            }
            int main() { return 0; }
        "#;
        assert!(bl.permits(src));
    }
}
