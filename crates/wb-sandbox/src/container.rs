//! Docker-like container images and the per-worker container pool.
//!
//! §VI-B: *"The driver maintains a pool of Docker containers which are
//! mapped onto a fixed number of GPUs. Each time a job is accepted from
//! the queue, the driver selects the appropriate Docker container (the
//! containers are configured to have the essential tools required for
//! the lab — a CUDA lab will not, for example, have the PGI OpenACC
//! tools) and run the job in the container. … Because we maintain a
//! pool of containers, we can delete a container after a job completes
//! and start a new container to replenish the pool."*
//!
//! Container "boot" is modeled as a virtual-millisecond charge so the
//! pool-vs-cold-start ablation (`container_overhead` in wb-bench) has a
//! measurable axis.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};

/// A container image: a named set of installed toolchains.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Image {
    /// Image name, e.g. `webgpu/cuda:8.0`.
    pub name: String,
    /// Toolchains baked in (`cuda`, `opencl`, `openacc`, `mpi`).
    pub toolchains: BTreeSet<String>,
    /// Virtual milliseconds to boot a fresh container from this image.
    pub boot_ms: u64,
}

impl Image {
    /// The CUDA-only image used by most labs.
    pub fn cuda() -> Self {
        Image {
            name: "webgpu/cuda".to_string(),
            toolchains: ["cuda", "opencl"].iter().map(|s| s.to_string()).collect(),
            boot_ms: 900,
        }
    }

    /// The full image with PGI OpenACC and MPI (bigger, slower to boot).
    pub fn full() -> Self {
        Image {
            name: "webgpu/full".to_string(),
            toolchains: ["cuda", "opencl", "openacc", "mpi"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            boot_ms: 2_400,
        }
    }

    /// Does this image contain a toolchain?
    pub fn has(&self, toolchain: &str) -> bool {
        self.toolchains.contains(toolchain)
    }
}

/// A booted container, checked out for exactly one job.
#[derive(Debug, PartialEq, Eq)]
pub struct Container {
    /// Unique container id.
    pub id: u64,
    /// Image it was booted from.
    pub image: Image,
}

/// Pool statistics for the dashboard / benches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolStats {
    /// Containers handed out.
    pub checkouts: u64,
    /// Jobs that found a warm container waiting.
    pub warm_hits: u64,
    /// Jobs that had to boot a container on demand.
    pub cold_boots: u64,
    /// Containers destroyed after use.
    pub destroyed: u64,
    /// Total virtual milliseconds spent booting.
    pub boot_ms_total: u64,
}

/// A pool of pre-booted containers for one image, replenished in the
/// background after each job (modeled as replenish-on-checkout).
#[derive(Debug)]
pub struct ContainerPool {
    image: Image,
    target: usize,
    warm: Mutex<Vec<Container>>,
    next_id: AtomicU64,
    stats: Mutex<PoolStats>,
    /// When false, the pool keeps nothing warm: every job boots its own
    /// container (the cold-start baseline for the ablation).
    pooling_enabled: bool,
}

impl ContainerPool {
    /// Create a pool that keeps `target` warm containers of `image`.
    pub fn new(image: Image, target: usize) -> Self {
        let pool = ContainerPool {
            image,
            target,
            warm: Mutex::new(Vec::new()),
            next_id: AtomicU64::new(1),
            stats: Mutex::new(PoolStats::default()),
            pooling_enabled: true,
        };
        pool.replenish();
        pool
    }

    /// A pool with pooling disabled: every checkout is a cold boot.
    pub fn cold_start_only(image: Image) -> Self {
        ContainerPool {
            image,
            target: 0,
            warm: Mutex::new(Vec::new()),
            next_id: AtomicU64::new(1),
            stats: Mutex::new(PoolStats::default()),
            pooling_enabled: false,
        }
    }

    /// The pool's image.
    pub fn image(&self) -> &Image {
        &self.image
    }

    /// Warm containers currently available.
    pub fn warm_count(&self) -> usize {
        self.warm.lock().len()
    }

    fn boot(&self) -> Container {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let mut st = self.stats.lock();
        st.boot_ms_total += self.image.boot_ms;
        Container {
            id,
            image: self.image.clone(),
        }
    }

    /// Top the warm set back up to the target.
    pub fn replenish(&self) {
        if !self.pooling_enabled {
            return;
        }
        let mut warm = self.warm.lock();
        while warm.len() < self.target {
            drop(warm);
            let c = self.boot();
            warm = self.warm.lock();
            warm.push(c);
        }
    }

    /// Check out a container for a job. Returns the container and the
    /// virtual milliseconds the job waited for it (0 on a warm hit).
    pub fn checkout(&self) -> (Container, u64) {
        let mut st = self.stats.lock();
        st.checkouts += 1;
        drop(st);
        if self.pooling_enabled {
            // Bind the pop result so the lock guard drops before
            // `replenish` re-locks the pool.
            let popped = {
                let mut warm = self.warm.lock();
                warm.pop()
            };
            if let Some(c) = popped {
                self.stats.lock().warm_hits += 1;
                // Replenishment happens concurrently on the real system;
                // modeled as immediate background boot (not charged to
                // this job's latency).
                self.replenish();
                return (c, 0);
            }
        }
        let c = self.boot();
        self.stats.lock().cold_boots += 1;
        let wait = self.image.boot_ms;
        (c, wait)
    }

    /// Destroy a container after its job completes (§VI-B: one job per
    /// container, then delete).
    pub fn destroy(&self, container: Container) {
        drop(container);
        self.stats.lock().destroyed += 1;
        self.replenish();
    }

    /// Snapshot statistics.
    pub fn stats(&self) -> PoolStats {
        *self.stats.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn images_know_their_toolchains() {
        assert!(Image::cuda().has("cuda"));
        assert!(!Image::cuda().has("openacc"));
        assert!(Image::full().has("openacc"));
        assert!(Image::full().has("mpi"));
        assert!(Image::full().boot_ms > Image::cuda().boot_ms);
    }

    #[test]
    fn warm_pool_gives_zero_wait() {
        let pool = ContainerPool::new(Image::cuda(), 2);
        assert_eq!(pool.warm_count(), 2);
        let (c, wait) = pool.checkout();
        assert_eq!(wait, 0);
        pool.destroy(c);
        assert_eq!(pool.stats().warm_hits, 1);
        assert_eq!(pool.stats().destroyed, 1);
        // Replenished back to target.
        assert_eq!(pool.warm_count(), 2);
    }

    #[test]
    fn container_used_once_then_destroyed() {
        let pool = ContainerPool::new(Image::cuda(), 1);
        let (a, _) = pool.checkout();
        let id_a = a.id;
        pool.destroy(a);
        let (b, _) = pool.checkout();
        assert_ne!(id_a, b.id, "containers are never reused");
        pool.destroy(b);
    }

    #[test]
    fn cold_start_pool_always_boots() {
        let pool = ContainerPool::cold_start_only(Image::cuda());
        assert_eq!(pool.warm_count(), 0);
        let (c, wait) = pool.checkout();
        assert_eq!(wait, Image::cuda().boot_ms);
        pool.destroy(c);
        assert_eq!(pool.warm_count(), 0);
        assert_eq!(pool.stats().cold_boots, 1);
        assert_eq!(pool.stats().warm_hits, 0);
    }

    #[test]
    fn boot_time_accounted() {
        let pool = ContainerPool::new(Image::cuda(), 3);
        // Three boots at construction.
        assert_eq!(pool.stats().boot_ms_total, 3 * Image::cuda().boot_ms);
    }

    #[test]
    fn exhausted_pool_falls_back_to_cold_boot() {
        let pool = ContainerPool::new(Image::cuda(), 1);
        let (a, w1) = pool.checkout();
        assert_eq!(w1, 0);
        // Pool auto-replenished, so the next checkout is warm again;
        // verify by draining without destroying.
        let (b, w2) = pool.checkout();
        assert_eq!(w2, 0);
        pool.destroy(a);
        pool.destroy(b);
    }
}
