//! Per-job isolated working directory with unprivileged ownership.
//!
//! §III-D: *"We use setuid to execute the user code as unprivileged
//! user who can only write to a unique temporary directory created for
//! each compilation."* The simulated equivalent is an in-memory
//! namespace: a job may create/read/write files only under its own
//! unique prefix, owned by a synthetic non-root uid, and the directory
//! is destroyed (and its byte count audited) when the job finishes.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Owner uid given to sandboxed jobs (never 0).
pub const SANDBOX_UID: u32 = 4242;

/// Directories currently alive in this process. A worker that leaks
/// scratch directories (the real platform's `/tmp` filling up) shows
/// up here; the leak regression test asserts this returns to zero.
static LIVE_DIRS: AtomicUsize = AtomicUsize::new(0);

/// Number of [`JobDir`]s currently alive in this process.
pub fn live_dir_count() -> usize {
    LIVE_DIRS.load(Ordering::SeqCst)
}

/// An isolated scratch directory for one compile+run job.
#[derive(Debug)]
pub struct JobDir {
    job_id: u64,
    prefix: String,
    uid: u32,
    files: HashMap<String, Vec<u8>>,
    quota_bytes: usize,
    used_bytes: usize,
}

/// Filesystem-style errors the sandbox reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// Attempt to touch a path outside the job's prefix.
    EscapeAttempt(String),
    /// Disk quota exceeded.
    QuotaExceeded,
    /// No such file.
    NotFound(String),
}

impl std::fmt::Display for FsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsError::EscapeAttempt(p) => write!(f, "path {p:?} escapes the job directory"),
            FsError::QuotaExceeded => write!(f, "job directory quota exceeded"),
            FsError::NotFound(p) => write!(f, "no such file: {p:?}"),
        }
    }
}

impl JobDir {
    /// Create the unique directory for a job.
    pub fn create(job_id: u64, quota_bytes: usize) -> Self {
        LIVE_DIRS.fetch_add(1, Ordering::SeqCst);
        JobDir {
            job_id,
            prefix: format!("/tmp/webgpu/job-{job_id}/"),
            uid: SANDBOX_UID,
            files: HashMap::new(),
            quota_bytes,
            used_bytes: 0,
        }
    }

    /// The job this directory belongs to.
    pub fn job_id(&self) -> u64 {
        self.job_id
    }

    /// Unique path prefix.
    pub fn prefix(&self) -> &str {
        &self.prefix
    }

    /// Owner uid (always unprivileged).
    pub fn uid(&self) -> u32 {
        self.uid
    }

    /// Bytes currently stored.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// Normalize and confine a path: absolute paths must start with the
    /// prefix; relative paths are joined under it; `..` is rejected.
    fn confine(&self, path: &str) -> Result<String, FsError> {
        if path.contains("..") {
            return Err(FsError::EscapeAttempt(path.to_string()));
        }
        if let Some(rel) = path.strip_prefix(&self.prefix) {
            return Ok(rel.to_string());
        }
        if path.starts_with('/') {
            return Err(FsError::EscapeAttempt(path.to_string()));
        }
        Ok(path.to_string())
    }

    /// Write a file inside the directory.
    pub fn write(&mut self, path: &str, data: &[u8]) -> Result<(), FsError> {
        let rel = self.confine(path)?;
        let old = self.files.get(&rel).map_or(0, Vec::len);
        let new_used = self.used_bytes - old + data.len();
        if new_used > self.quota_bytes {
            return Err(FsError::QuotaExceeded);
        }
        self.used_bytes = new_used;
        self.files.insert(rel, data.to_vec());
        Ok(())
    }

    /// Read a file back.
    pub fn read(&self, path: &str) -> Result<&[u8], FsError> {
        let rel = self.confine(path)?;
        self.files
            .get(&rel)
            .map(Vec::as_slice)
            .ok_or(FsError::NotFound(rel))
    }

    /// List relative paths (sorted, for deterministic audits).
    pub fn list(&self) -> Vec<String> {
        let mut v: Vec<String> = self.files.keys().cloned().collect();
        v.sort();
        v
    }

    /// Destroy the directory, returning the bytes reclaimed (the
    /// worker's cleanup audit). Cleanup itself is RAII — simply
    /// dropping a `JobDir` reclaims it — so this exists only for
    /// callers that want the byte count.
    pub fn destroy(self) -> usize {
        self.used_bytes
    }
}

impl Drop for JobDir {
    fn drop(&mut self) {
        // RAII cleanup: every exit path — including early returns and
        // panics — releases the directory. An earlier worker version
        // required an explicit `destroy()` and leaked the directory
        // when a pipeline stage bailed out before reaching it.
        LIVE_DIRS.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unique_prefix_per_job() {
        let a = JobDir::create(1, 1024);
        let b = JobDir::create(2, 1024);
        assert_ne!(a.prefix(), b.prefix());
        assert_eq!(a.job_id(), 1);
    }

    #[test]
    fn owner_is_unprivileged() {
        assert_ne!(JobDir::create(1, 1024).uid(), 0);
    }

    #[test]
    fn write_read_roundtrip() {
        let mut d = JobDir::create(7, 1024);
        d.write("solution.cu", b"code").unwrap();
        assert_eq!(d.read("solution.cu").unwrap(), b"code");
        assert_eq!(d.list(), vec!["solution.cu".to_string()]);
    }

    #[test]
    fn absolute_path_inside_prefix_ok() {
        let mut d = JobDir::create(7, 1024);
        let p = format!("{}out.txt", d.prefix());
        d.write(&p, b"x").unwrap();
        assert_eq!(d.read("out.txt").unwrap(), b"x");
    }

    #[test]
    fn escape_attempts_rejected() {
        let mut d = JobDir::create(7, 1024);
        assert!(matches!(
            d.write("/etc/passwd", b"haha"),
            Err(FsError::EscapeAttempt(_))
        ));
        assert!(matches!(
            d.write("../other-job/x", b"haha"),
            Err(FsError::EscapeAttempt(_))
        ));
        assert!(matches!(
            d.read("/root/.ssh/id_rsa"),
            Err(FsError::EscapeAttempt(_))
        ));
    }

    #[test]
    fn quota_enforced() {
        let mut d = JobDir::create(7, 10);
        d.write("a", b"12345").unwrap();
        assert!(matches!(
            d.write("b", b"123456"),
            Err(FsError::QuotaExceeded)
        ));
        // Overwriting reuses the old file's budget.
        d.write("a", b"1234567890").unwrap();
        assert_eq!(d.used_bytes(), 10);
    }

    #[test]
    fn destroy_reports_reclaimed_bytes() {
        let mut d = JobDir::create(7, 1024);
        d.write("a", b"1234").unwrap();
        assert_eq!(d.destroy(), 4);
    }

    #[test]
    fn missing_file_reported() {
        let d = JobDir::create(7, 1024);
        assert!(matches!(d.read("nope"), Err(FsError::NotFound(_))));
    }
}
