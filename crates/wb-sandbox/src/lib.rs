//! `wb-sandbox` — the two-layer security model of WebGPU (§III-D) plus
//! the WebGPU 2.0 container pool (§VI-B).
//!
//! The paper's production system combines:
//!
//! 1. **compile-time black listing**: a textual scan of the *unparsed*
//!    student code rejecting strings like `asm(` — including inside
//!    comments, a documented false-positive trade-off ([`blacklist`]);
//! 2. **run-time white listing**: a seccomp-bpf whitelist of POSIX
//!    calls, provided by the instructor per lab ([`whitelist`] — wired
//!    into the simulated toolchain through `minicuda`'s
//!    `HostcallPolicy`);
//! 3. **unprivileged execution** in a unique temporary directory via
//!    `setuid` ([`jobdir`]);
//! 4. (v2) a pool of **Docker containers** per worker, one fresh
//!    container per job, image chosen by the lab's toolchain
//!    ([`container`]).
//!
//! All four are reimplemented against the simulated toolchain; the
//! enforcement *points* are identical even though the mechanisms are
//! in-process.

pub mod blacklist;
pub mod container;
pub mod jobdir;
pub mod limits;
pub mod whitelist;

pub use blacklist::{Blacklist, ScanMode, Violation};
pub use container::{ContainerPool, Image, PoolStats};
pub use jobdir::{live_dir_count, JobDir};
pub use limits::ResourceLimits;
pub use whitelist::SyscallWhitelist;
