//! Per-lab resource limits.
//!
//! §III-C: *"time limits are placed on the submission rate and on the
//! duration of the compilation and execution of user code. The time
//! limits can be adjusted on a per lab basis."* Execution time in the
//! simulator is a warp-instruction / host-step budget; the submission
//! rate limit lives in the web server (`wb-server::ratelimit`).

use minicuda::{DeviceConfig, RunOptions};
use serde::{Deserialize, Serialize};

/// Adjustable per-lab budgets.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceLimits {
    /// Maximum source size accepted by the compiler, bytes.
    pub max_source_bytes: usize,
    /// Device budget in warp-instructions (the "execution time limit").
    pub max_warp_instructions: i64,
    /// Host interpreter budget in statements.
    pub max_host_steps: u64,
    /// Log output cap, bytes.
    pub max_log_bytes: usize,
    /// MPI world size for labs that need it (1 otherwise).
    pub world_size: usize,
}

impl Default for ResourceLimits {
    fn default() -> Self {
        ResourceLimits {
            max_source_bytes: 256 * 1024,
            max_warp_instructions: 50_000_000,
            max_host_steps: 5_000_000,
            max_log_bytes: 64 * 1024,
            world_size: 1,
        }
    }
}

impl ResourceLimits {
    /// A tight budget for unit tests (fails fast on runaway code).
    pub fn strict() -> Self {
        ResourceLimits {
            max_source_bytes: 64 * 1024,
            max_warp_instructions: 500_000,
            max_host_steps: 200_000,
            max_log_bytes: 8 * 1024,
            world_size: 1,
        }
    }

    /// Scale the execution budgets by a per-lab multiplier (deadline
    /// week sometimes doubles limits for heavy labs like SGEMM).
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "scale factor must be positive");
        self.max_warp_instructions = (self.max_warp_instructions as f64 * factor) as i64;
        self.max_host_steps = (self.max_host_steps as f64 * factor) as u64;
        self
    }

    /// Convert into interpreter options for a given device.
    pub fn to_run_options(&self, device: DeviceConfig) -> RunOptions {
        RunOptions {
            device,
            max_warp_instructions: self.max_warp_instructions,
            max_host_steps: self.max_host_steps,
            max_log_bytes: self.max_log_bytes,
            world_size: self.world_size,
            ..RunOptions::default()
        }
    }

    /// Check a submission's size before compiling.
    pub fn check_source_size(&self, source: &str) -> Result<(), String> {
        if source.len() > self.max_source_bytes {
            return Err(format!(
                "submission is {} bytes; this lab accepts at most {}",
                source.len(),
                self.max_source_bytes
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_generous() {
        let l = ResourceLimits::default();
        assert!(l.max_warp_instructions > 1_000_000);
        assert_eq!(l.world_size, 1);
    }

    #[test]
    fn scaling_multiplies_budgets() {
        let l = ResourceLimits::default().scaled(2.0);
        assert_eq!(
            l.max_warp_instructions,
            ResourceLimits::default().max_warp_instructions * 2
        );
        assert_eq!(
            l.max_host_steps,
            ResourceLimits::default().max_host_steps * 2
        );
    }

    #[test]
    #[should_panic]
    fn zero_scale_rejected() {
        let _ = ResourceLimits::default().scaled(0.0);
    }

    #[test]
    fn source_size_enforced() {
        let l = ResourceLimits {
            max_source_bytes: 10,
            ..Default::default()
        };
        assert!(l.check_source_size("short").is_ok());
        assert!(l.check_source_size("this is too long").is_err());
    }

    #[test]
    fn run_options_carry_budgets() {
        let l = ResourceLimits::strict();
        let o = l.to_run_options(DeviceConfig::default());
        assert_eq!(o.max_warp_instructions, l.max_warp_instructions);
        assert_eq!(o.max_host_steps, l.max_host_steps);
        assert_eq!(o.max_log_bytes, l.max_log_bytes);
    }
}
