//! Runtime syscall whitelist — the seccomp-bpf analogue.
//!
//! Instructors provide a per-lab whitelist of calls (§III-D). In the
//! simulated toolchain, the "syscalls" are minicuda hostcalls; this
//! type implements `minicuda::HostcallPolicy` so the host interpreter
//! kills the run at the first non-whitelisted call, like seccomp's
//! `SECCOMP_RET_KILL`.

use minicuda::HostcallPolicy;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// An instructor-provided whitelist of allowed hostcalls.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyscallWhitelist {
    name: String,
    allowed: BTreeSet<String>,
}

impl SyscallWhitelist {
    /// Build from an explicit list.
    pub fn new(name: impl Into<String>, calls: impl IntoIterator<Item = String>) -> Self {
        SyscallWhitelist {
            name: name.into(),
            allowed: calls.into_iter().collect(),
        }
    }

    /// The default profile for single-GPU CUDA labs: memory, CUDA API,
    /// dataset import/export, logging, timing — no MPI.
    pub fn cuda_default() -> Self {
        SyscallWhitelist::new(
            "cuda-default",
            [
                "malloc",
                "free",
                "cudaMalloc",
                "cudaFree",
                "cudaMemcpy",
                "cudaMemcpyToSymbol",
                "cudaDeviceSynchronize",
                "cudaGetLastError",
                "cudaSetDevice",
                "cudaGetDeviceCount",
                "kernelLaunch",
                "wbImportVector",
                "wbImportIntVector",
                "wbImportMatrix",
                "wbImportImage",
                "wbImportCsrRowPtr",
                "wbImportCsrColIdx",
                "wbImportCsrValues",
                "wbImportGraphRowPtr",
                "wbImportGraphNeighbors",
                "wbImportScalar",
                "wbSolution",
                "wbSolutionInt",
                "wbSolutionMatrix",
                "wbSolutionImage",
                "wbSolutionScalar",
                "wbLog",
                "wbTime_start",
                "wbTime_stop",
                "exit",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
    }

    /// The MPI profile: the CUDA profile plus the `wbMPI_*` calls, used
    /// only by labs tagged as requiring MPI.
    pub fn mpi_profile() -> Self {
        let mut w = Self::cuda_default();
        w.name = "mpi-profile".to_string();
        for c in [
            "wbMPI_rank",
            "wbMPI_size",
            "wbMPI_sendFloat",
            "wbMPI_recvFloat",
            "wbMPI_barrier",
        ] {
            w.allowed.insert(c.to_string());
        }
        w
    }

    /// Add a call to the whitelist. (Named `add` rather than `allow`
    /// because the `HostcallPolicy` trait already claims `allow` for
    /// the read path and would win method resolution on `&self`.)
    pub fn add(&mut self, call: impl Into<String>) {
        self.allowed.insert(call.into());
    }

    /// Remove a call from the whitelist.
    pub fn remove(&mut self, call: &str) {
        self.allowed.remove(call);
    }

    /// Number of whitelisted calls.
    pub fn len(&self) -> usize {
        self.allowed.len()
    }

    /// True when nothing is whitelisted.
    pub fn is_empty(&self) -> bool {
        self.allowed.is_empty()
    }

    /// The whitelisted calls, in sorted order (BTreeSet iteration),
    /// which makes the sequence stable for content hashing.
    pub fn calls(&self) -> impl Iterator<Item = &str> {
        self.allowed.iter().map(|s| s.as_str())
    }
}

impl HostcallPolicy for SyscallWhitelist {
    fn allow(&self, call: &str) -> bool {
        self.allowed.contains(call)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use libwb::Dataset;
    use minicuda::{compile, Dialect, RunOptions};

    #[test]
    fn default_profile_allows_cuda_denies_mpi() {
        let w = SyscallWhitelist::cuda_default();
        assert!(HostcallPolicy::allow(&w, "cudaMalloc"));
        assert!(HostcallPolicy::allow(&w, "kernelLaunch"));
        assert!(!HostcallPolicy::allow(&w, "wbMPI_sendFloat"));
        assert_eq!(w.name(), "cuda-default");
    }

    #[test]
    fn mpi_profile_extends_cuda() {
        let w = SyscallWhitelist::mpi_profile();
        assert!(HostcallPolicy::allow(&w, "wbMPI_barrier"));
        assert!(HostcallPolicy::allow(&w, "cudaMemcpy"));
    }

    #[test]
    fn allow_and_deny_mutate() {
        let mut w = SyscallWhitelist::new("t", std::iter::empty());
        assert!(w.is_empty());
        w.add("foo");
        assert!(HostcallPolicy::allow(&w, "foo"));
        assert_eq!(w.len(), 1);
        w.remove("foo");
        assert!(!HostcallPolicy::allow(&w, "foo"));
    }

    #[test]
    fn enforced_end_to_end_by_interpreter() {
        // An MPI call under the CUDA profile must die with a security
        // diagnostic, exactly like a seccomp kill.
        let src = "int main() { int r = wbMPI_rank(); return 0; }";
        let program = compile(src, Dialect::Cuda).unwrap();
        let w = SyscallWhitelist::cuda_default();
        let out =
            minicuda::run_with_policy(&program, &[] as &[Dataset], &RunOptions::default(), &w);
        let err = out.error.expect("must be killed");
        assert_eq!(err.phase, minicuda::Phase::Security);
        assert!(err.message.contains("wbMPI_rank"));
    }

    #[test]
    fn whitelisted_program_runs_clean() {
        let src = "int main() { wbLog(INFO, \"ok\"); return 0; }";
        let program = compile(src, Dialect::Cuda).unwrap();
        let w = SyscallWhitelist::cuda_default();
        let out =
            minicuda::run_with_policy(&program, &[] as &[Dataset], &RunOptions::default(), &w);
        assert!(out.ok(), "{:?}", out.error);
    }
}
