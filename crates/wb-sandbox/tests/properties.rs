//! Property-based tests: blacklist scanning robustness and job-dir
//! confinement under arbitrary inputs.

use proptest::prelude::*;
use wb_sandbox::{Blacklist, JobDir, ScanMode};

proptest! {
    /// The scanner never panics on arbitrary text, in either mode.
    #[test]
    fn scan_never_panics(src in "\\PC{0,400}") {
        let _ = Blacklist::standard().scan(&src);
        let _ = Blacklist::standard().with_mode(ScanMode::Preprocessed).scan(&src);
    }

    /// Whatever the surrounding text, a real bare `asm` token is
    /// always caught by the raw scan.
    #[test]
    fn real_asm_is_always_caught(prefix in "[a-z ;{}()\\n]{0,80}", suffix in "[a-z ;{}()\\n]{0,80}") {
        let src = format!("{prefix}\nasm(\"x\");\n{suffix}");
        prop_assert!(!Blacklist::standard().permits(&src));
    }

    /// Identifiers that merely *contain* a blacklisted word never trip
    /// the scanner.
    #[test]
    fn superstring_identifiers_are_clean(word in "[a-z]{1,8}") {
        // e.g. `asmx`, `xasm`, `my_asm_var` are distinct identifiers.
        let src = format!("int {word}asm = 0; int asm{word} = 1; int a_{word}_asm_b = 2;");
        // Careful: `a_{word}_asm_b` has `asm` inside an identifier,
        // still clean because of the boundary rule.
        prop_assert!(Blacklist::standard().permits(&src), "{src}");
    }

    /// The preprocessed mode is never *more* suspicious than the raw
    /// mode: everything it flags, the raw scan flags too.
    #[test]
    fn preprocessed_flags_subset_of_raw(src in "\\PC{0,300}") {
        let raw = Blacklist::standard();
        let pre = Blacklist::standard().with_mode(ScanMode::Preprocessed);
        if !pre.permits(&src) {
            prop_assert!(!raw.permits(&src), "raw must also flag: {src:?}");
        }
    }

    /// Job directories confine arbitrary path strings: after any write
    /// attempt, reads of `/etc/passwd`-style paths still fail and the
    /// quota is never exceeded.
    #[test]
    fn jobdir_confinement_and_quota(
        paths in prop::collection::vec("[ -~]{1,40}", 1..12),
        payload_len in 0usize..256,
    ) {
        let quota = 1024;
        let mut dir = JobDir::create(1, quota);
        let payload = vec![b'x'; payload_len];
        for p in &paths {
            let _ = dir.write(p, &payload);
            prop_assert!(dir.used_bytes() <= quota, "quota respected");
            if p.contains("..") || (p.starts_with('/') && !p.starts_with(dir.prefix())) {
                prop_assert!(dir.read(p).is_err(), "escape path readable: {p:?}");
            }
        }
        prop_assert!(dir.read("/etc/passwd").is_err());
    }
}
