//! Deadline-aware per-course fair-share scheduling with admission
//! control (§VI, Figure 1).
//!
//! The platform's defining load is the Wednesday pre-deadline rush:
//! one course's submission rate spikes an order of magnitude while
//! several courses share a small GPU fleet. A strictly FIFO broker
//! lets that surge inflate every course's p99 wait without bound.
//! This crate arbitrates *before* the broker:
//!
//! - **Weighted deficit-round-robin dequeue** — each course owns a
//!   FIFO backlog; every drain round a non-empty course earns its
//!   (deadline-boosted) weight in credits and spends [`SchedConfig::quantum`]
//!   credits per job released to the execution layer.
//! - **Priority aging** — a head-of-line job that has waited
//!   [`SchedConfig::age_promote_rounds`] drain rounds is promoted ahead
//!   of the deficit accounting, in course rotation, so no course
//!   starves regardless of the weight mix.
//! - **Deadline-proximity boost** — a course whose configured deadline
//!   falls inside [`SchedConfig::deadline_boost_window_ms`] has its
//!   weight multiplied by [`SchedConfig::deadline_boost`]: labs due
//!   soonest drain first during a rush.
//! - **Admission control** — each course's backlog is bounded by a
//!   budget. Inside the brown-out band (the top of the budget) a
//!   full-grade request is downgraded to compile-only; past the budget
//!   the job is shed with a finite retry-after hint.
//!
//! Every decision is recorded on the shared [`Recorder`]: admissions,
//! sheds, brown-outs, aged promotions and dequeues as counters, the
//! per-course dequeue tally as scoped counters, and brown-outs/sheds
//! as span annotations on the affected job.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;
use wb_obs::{Annotation, Counter, Recorder};

/// Per-course scheduling parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct CourseConfig {
    /// Relative share of the fleet (credits earned per drain round).
    pub weight: u64,
    /// The course's next lab deadline in virtual ms, if known.
    pub deadline_ms: Option<u64>,
    /// Backlog budget override; `None` uses [`SchedConfig::backlog_budget`].
    pub backlog_budget: Option<usize>,
}

impl Default for CourseConfig {
    fn default() -> Self {
        CourseConfig {
            weight: 1,
            deadline_ms: None,
            backlog_budget: None,
        }
    }
}

/// Scheduler-wide configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedConfig {
    /// Credits one dequeue costs. A course with weight `w` releases
    /// `w / quantum` jobs per drain round once backlogged.
    pub quantum: u64,
    /// Default per-course backlog budget; offers beyond it are shed.
    /// The default is effectively unbounded — admission control is
    /// opt-in, a deployment sizes the budget to its fleet.
    pub backlog_budget: usize,
    /// Fraction of the budget where the brown-out band begins:
    /// full-grade offers landing at or past `brownout_start * budget`
    /// are downgraded to compile-only instead of queued whole.
    pub brownout_start: f64,
    /// Drain rounds a head-of-line job may wait before it is promoted
    /// ahead of the deficit accounting.
    pub age_promote_rounds: u64,
    /// How close (virtual ms) a course deadline must be to earn the
    /// proximity boost.
    pub deadline_boost_window_ms: u64,
    /// Weight multiplier applied inside the boost window.
    pub deadline_boost: u64,
    /// Base retry-after hint (seconds) returned with a shed. The hint
    /// scales with backlog but is always finite.
    pub shed_retry_after_s: f64,
    /// Per-course overrides, keyed by course id.
    pub courses: BTreeMap<String, CourseConfig>,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            quantum: 1,
            backlog_budget: usize::MAX / 2,
            brownout_start: 0.75,
            age_promote_rounds: 8,
            deadline_boost_window_ms: 48 * 3_600_000,
            deadline_boost: 2,
            shed_retry_after_s: 30.0,
            courses: BTreeMap::new(),
        }
    }
}

impl SchedConfig {
    /// Set (or create) a course's weight, returning `self` for chaining.
    pub fn with_course_weight(mut self, course: &str, weight: u64) -> Self {
        self.courses.entry(course.to_string()).or_default().weight = weight;
        self
    }

    /// Set a course's deadline, returning `self` for chaining.
    pub fn with_course_deadline(mut self, course: &str, deadline_ms: u64) -> Self {
        self.courses
            .entry(course.to_string())
            .or_default()
            .deadline_ms = Some(deadline_ms);
        self
    }

    /// Effective backlog budget for a course (always at least 1).
    pub fn budget_for(&self, course: &str) -> usize {
        self.courses
            .get(course)
            .and_then(|c| c.backlog_budget)
            .unwrap_or(self.backlog_budget)
            .max(1)
    }
}

/// How expensive the offered job is if admitted whole — full grading
/// runs every dataset; everything else is light.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GradeClass {
    /// A full grading run, eligible for brown-out downgrade.
    Full,
    /// Compile-only or single-dataset work; never downgraded.
    Light,
}

/// The admission decision for one offered job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Admission {
    /// Queued. `browned_out` is true when a full-grade request was
    /// downgraded to compile-only inside the brown-out band.
    Admitted {
        /// Whether the brown-out downgrade was applied.
        browned_out: bool,
    },
    /// Refused: the course's backlog budget is exhausted. The caller
    /// should surface the (finite) retry-after hint to the submitter.
    Shed {
        /// Suggested client back-off in seconds.
        retry_after_s: f64,
    },
}

impl Admission {
    /// True for either admitted variant.
    pub fn admitted(&self) -> bool {
        matches!(self, Admission::Admitted { .. })
    }
}

/// One course's backlog row in a [`SchedSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CourseBacklog {
    /// Course id.
    pub course: String,
    /// Jobs admitted and not yet released to the execution layer.
    pub backlog: usize,
    /// Unspent deficit-round-robin credits.
    pub deficit: u64,
}

/// Serializable view of the scheduler's queues, for dashboards.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct SchedSnapshot {
    /// Total jobs held across all courses.
    pub total_backlog: usize,
    /// Per-course rows, in course-id order.
    pub courses: Vec<CourseBacklog>,
}

struct Entry<T> {
    payload: T,
    offered_round: u64,
}

struct CourseQueue<T> {
    q: VecDeque<Entry<T>>,
    deficit: u64,
}

// Not derived: the derive would demand `T: Default`, which the payload
// never needs.
impl<T> Default for CourseQueue<T> {
    fn default() -> Self {
        CourseQueue {
            q: VecDeque::new(),
            deficit: 0,
        }
    }
}

struct SchedState<T> {
    courses: BTreeMap<String, CourseQueue<T>>,
    /// Courses in first-offer order — the persistent rotation ring.
    /// The cursor indexes this ring, never a freshly collected list of
    /// non-empty courses: positional indexing shifted under the cursor
    /// whenever a course emptied mid-ring, skipping the successor's
    /// turn for a round.
    ring: Vec<String>,
    /// Rotation offset shared by the aging and DRR passes; advances
    /// once per drain so ties never favour a fixed course.
    cursor: usize,
    /// Drain rounds elapsed — the aging clock.
    round: u64,
}

/// The fair-share scheduler. `T` is the queued payload (the clusters
/// use `JobRequest`); the scheduler only needs the platform job id to
/// annotate spans.
pub struct FairScheduler<T> {
    config: SchedConfig,
    obs: Arc<Recorder>,
    state: Mutex<SchedState<T>>,
}

impl<T> FairScheduler<T> {
    /// A scheduler recording onto `obs` (pass [`Recorder::noop`] when
    /// tracing is off).
    pub fn new(config: SchedConfig, obs: Arc<Recorder>) -> Self {
        FairScheduler {
            config,
            obs,
            state: Mutex::new(SchedState {
                courses: BTreeMap::new(),
                ring: Vec::new(),
                cursor: 0,
                round: 0,
            }),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &SchedConfig {
        &self.config
    }

    /// Offer one job for admission. On admission the payload is queued
    /// (after `downgrade` is applied if the offer lands in the
    /// brown-out band); on shed it is dropped and the caller should
    /// return [`Admission::Shed`]'s retry hint to the submitter.
    pub fn offer(
        &self,
        course: &str,
        job_id: u64,
        mut payload: T,
        class: GradeClass,
        now_ms: u64,
        downgrade: impl FnOnce(&mut T),
    ) -> Admission {
        let budget = self.config.budget_for(course);
        let mut st = self.state.lock();
        let round = st.round;
        if !st.courses.contains_key(course) {
            st.ring.push(course.to_string());
        }
        let cq = st.courses.entry(course.to_string()).or_default();
        if cq.q.len() >= budget {
            let retry_after_s =
                self.config.shed_retry_after_s * (1.0 + cq.q.len() as f64 / budget as f64);
            drop(st);
            self.obs.annotate(job_id, Annotation::Shed, now_ms);
            return Admission::Shed { retry_after_s };
        }
        let brownout_at = ((budget as f64) * self.config.brownout_start).ceil() as usize;
        let browned_out = class == GradeClass::Full && cq.q.len() >= brownout_at;
        if browned_out {
            downgrade(&mut payload);
        }
        cq.q.push_back(Entry {
            payload,
            offered_round: round,
        });
        drop(st);
        self.obs.bump(Counter::SchedAdmitted);
        if browned_out {
            self.obs.annotate(job_id, Annotation::BrownOut, now_ms);
        }
        Admission::Admitted { browned_out }
    }

    /// Admission decision without queueing, for synchronous callers
    /// that execute immediately (the push cluster's single-job path):
    /// the same bands as [`offer`](Self::offer), judged against the
    /// course's current backlog, but the job never enters the queue —
    /// the caller applies any brown-out downgrade itself.
    pub fn admit(&self, course: &str, job_id: u64, class: GradeClass, now_ms: u64) -> Admission {
        let budget = self.config.budget_for(course);
        let backlog = self.backlog(course);
        if backlog >= budget {
            let retry_after_s =
                self.config.shed_retry_after_s * (1.0 + backlog as f64 / budget as f64);
            self.obs.annotate(job_id, Annotation::Shed, now_ms);
            return Admission::Shed { retry_after_s };
        }
        let brownout_at = ((budget as f64) * self.config.brownout_start).ceil() as usize;
        let browned_out = class == GradeClass::Full && backlog >= brownout_at;
        self.obs.bump(Counter::SchedAdmitted);
        if browned_out {
            self.obs.annotate(job_id, Annotation::BrownOut, now_ms);
        }
        Admission::Admitted { browned_out }
    }

    /// Release up to `max` jobs to the execution layer, in fair-share
    /// order: aged head-of-line jobs first (course rotation), then
    /// deficit-round-robin over the remaining backlogs.
    pub fn drain(&self, max: usize, now_ms: u64) -> Vec<(String, T)> {
        let mut out = Vec::new();
        let mut aged_promotions = 0u64;
        {
            let mut st = self.state.lock();
            st.round += 1;
            let round = st.round;
            let len = st.ring.len();
            let start = if len == 0 { 0 } else { st.cursor % len };

            // Aging pass: any course whose head has waited past the
            // promotion threshold releases one job, in rotation over
            // the persistent ring (key-stable: an emptied course is
            // skipped in place, it never shifts the others' turns).
            for i in 0..len {
                if out.len() >= max {
                    break;
                }
                let name = st.ring[(start + i) % len].clone();
                let Some(cq) = st.courses.get_mut(&name) else {
                    continue;
                };
                let aged =
                    cq.q.front()
                        .is_some_and(|e| round - e.offered_round >= self.config.age_promote_rounds);
                if !aged {
                    continue;
                }
                let e = cq.q.pop_front().unwrap();
                if cq.q.is_empty() {
                    cq.deficit = 0;
                }
                aged_promotions += 1;
                out.push((name, e.payload));
            }

            // Deficit-round-robin: cycle over the ring until capacity
            // fills or every backlog empties. Each visit earns a
            // non-empty course its weight; a dequeue spends `quantum`.
            // Contended capacity therefore divides by weight, while
            // spare capacity still drains every backlog (work
            // conserving).
            'drr: while out.len() < max {
                let mut all_empty = true;
                for i in 0..len {
                    if out.len() >= max {
                        break 'drr;
                    }
                    let name = st.ring[(start + i) % len].clone();
                    let w = self.effective_weight(&name, now_ms);
                    let Some(cq) = st.courses.get_mut(&name) else {
                        continue;
                    };
                    if cq.q.is_empty() {
                        continue;
                    }
                    all_empty = false;
                    cq.deficit += w;
                    while cq.deficit >= self.config.quantum && !cq.q.is_empty() && out.len() < max {
                        cq.deficit -= self.config.quantum;
                        let e = cq.q.pop_front().unwrap();
                        out.push((name.clone(), e.payload));
                    }
                    if cq.q.is_empty() {
                        cq.deficit = 0;
                    }
                }
                if all_empty {
                    break;
                }
            }
            st.cursor = st.cursor.wrapping_add(1);
        }
        self.obs.add(Counter::SchedDequeues, out.len() as u64);
        self.obs.add(Counter::SchedAgedPromotions, aged_promotions);
        for (course, _) in &out {
            self.obs.bump_scoped(&format!("sched/dequeued/{course}"));
        }
        out
    }

    /// A course's current weight: its configured share, multiplied by
    /// the boost when its deadline is inside the proximity window.
    pub fn effective_weight(&self, course: &str, now_ms: u64) -> u64 {
        let cc = self.config.courses.get(course);
        let base = cc.map(|c| c.weight).unwrap_or(1).max(1);
        if let Some(deadline) = cc.and_then(|c| c.deadline_ms) {
            if now_ms <= deadline && deadline - now_ms <= self.config.deadline_boost_window_ms {
                return base.saturating_mul(self.config.deadline_boost.max(1));
            }
        }
        base
    }

    /// Jobs a course holds that have not yet been released.
    pub fn backlog(&self, course: &str) -> usize {
        self.state
            .lock()
            .courses
            .get(course)
            .map_or(0, |cq| cq.q.len())
    }

    /// Total held jobs across all courses.
    pub fn total_backlog(&self) -> usize {
        self.state
            .lock()
            .courses
            .values()
            .map(|cq| cq.q.len())
            .sum()
    }

    /// The largest single-course backlog — the signal a one-course
    /// rush raises long before the global queue depth moves.
    pub fn max_course_backlog(&self) -> usize {
        self.state
            .lock()
            .courses
            .values()
            .map(|cq| cq.q.len())
            .max()
            .unwrap_or(0)
    }

    /// Serializable per-course view for dashboards.
    pub fn snapshot(&self) -> SchedSnapshot {
        let st = self.state.lock();
        SchedSnapshot {
            total_backlog: st.courses.values().map(|cq| cq.q.len()).sum(),
            courses: st
                .courses
                .iter()
                .filter(|(_, cq)| !cq.q.is_empty())
                .map(|(name, cq)| CourseBacklog {
                    course: name.clone(),
                    backlog: cq.q.len(),
                    deficit: cq.deficit,
                })
                .collect(),
        }
    }
}

/// Stable shard for a course: FNV-1a over the course id, mod `shards`.
/// Deliberately a fixed hash (not `DefaultHasher`) and deliberately the
/// same function the sharded broker uses, so a course's scheduler shard
/// and broker lane agree across crates, runs, and processes.
pub fn shard_for_course(course: &str, shards: usize) -> usize {
    debug_assert!(shards > 0, "at least one shard");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in course.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    (h % shards as u64) as usize
}

/// `N` independent [`FairScheduler`] lanes with course-hashed routing
/// and a work-stealing drain.
///
/// Each course lives wholly on one shard (FNV-1a of the course id), so
/// per-course FIFO order, backlog budgets, brown-out bands, and the
/// deficit accounting are exactly the single-scheduler semantics — the
/// shards never split a course. What sharding buys is lock spread:
/// offers and drains for different courses contend on different
/// mutexes.
///
/// The drain steals: a shard asked for `max` jobs serves its own
/// backlog first, then pulls the remainder from the most-loaded
/// sibling shards. Stolen jobs are released through the victim's own
/// fair-share drain, so course order and fairness survive migration.
pub struct ShardedScheduler<T> {
    shards: Vec<FairScheduler<T>>,
    /// Rotating home for callers without a natural lane (the v1 wave
    /// drain), so successive waves start at successive shards.
    next_home: std::sync::atomic::AtomicUsize,
}

impl<T> ShardedScheduler<T> {
    /// A sharded scheduler with `shards` lanes (clamped to at least 1),
    /// each lane reporting to the shared recorder.
    pub fn new(shards: usize, config: SchedConfig, obs: Arc<Recorder>) -> Self {
        let n = shards.max(1);
        ShardedScheduler {
            shards: (0..n)
                .map(|_| FairScheduler::new(config.clone(), Arc::clone(&obs)))
                .collect(),
            next_home: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// Number of scheduler lanes.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard a course's jobs are routed to.
    pub fn shard_for(&self, course: &str) -> usize {
        shard_for_course(course, self.shards.len())
    }

    /// The shared configuration (identical across lanes).
    pub fn config(&self) -> &SchedConfig {
        self.shards[0].config()
    }

    /// Offer a job for admission on its course's shard. Same contract
    /// as [`FairScheduler::offer`].
    pub fn offer(
        &self,
        course: &str,
        job_id: u64,
        payload: T,
        class: GradeClass,
        now_ms: u64,
        downgrade: impl FnOnce(&mut T),
    ) -> Admission {
        self.shards[self.shard_for(course)].offer(course, job_id, payload, class, now_ms, downgrade)
    }

    /// Non-queueing admission decision on the course's shard. Same
    /// contract as [`FairScheduler::admit`].
    pub fn admit(&self, course: &str, job_id: u64, class: GradeClass, now_ms: u64) -> Admission {
        self.shards[self.shard_for(course)].admit(course, job_id, class, now_ms)
    }

    /// Release up to `max` jobs anchored at shard `home`: the home
    /// shard drains first (its aging clock ticks even when `max` is 0),
    /// then the remainder is stolen from the other shards in
    /// descending-backlog order. A victim only ticks when it actually
    /// has work, so idle shards don't age from their siblings' drains.
    pub fn drain_stealing(&self, home: usize, max: usize, now_ms: u64) -> Vec<(String, T)> {
        let n = self.shards.len();
        let home = home % n;
        let mut out = self.shards[home].drain(max, now_ms);
        if out.len() >= max || n == 1 {
            return out;
        }
        let mut victims: Vec<usize> = (0..n).filter(|&i| i != home).collect();
        victims.sort_by_key(|&i| std::cmp::Reverse(self.shards[i].total_backlog()));
        for v in victims {
            if out.len() >= max {
                break;
            }
            if self.shards[v].total_backlog() == 0 {
                continue;
            }
            out.extend(self.shards[v].drain(max - out.len(), now_ms));
        }
        out
    }

    /// Release up to `max` jobs from a rotating home shard — the drain
    /// for callers that pump the whole cluster rather than one lane.
    pub fn drain_rotating(&self, max: usize, now_ms: u64) -> Vec<(String, T)> {
        let home = self
            .next_home
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        self.drain_stealing(home % self.shards.len(), max, now_ms)
    }

    /// A course's unreleased backlog (on its home shard).
    pub fn backlog(&self, course: &str) -> usize {
        self.shards[self.shard_for(course)].backlog(course)
    }

    /// Total unreleased jobs across every shard.
    pub fn total_backlog(&self) -> usize {
        self.shards.iter().map(|s| s.total_backlog()).sum()
    }

    /// The largest single-course backlog across every shard.
    pub fn max_course_backlog(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.max_course_backlog())
            .max()
            .unwrap_or(0)
    }

    /// Merged dashboard snapshot: every shard's non-empty courses, in
    /// course-id order (a course lives on exactly one shard, so the
    /// merge never has to combine rows).
    pub fn snapshot(&self) -> SchedSnapshot {
        let mut courses: Vec<CourseBacklog> = self
            .shards
            .iter()
            .flat_map(|s| s.snapshot().courses)
            .collect();
        courses.sort_by(|a, b| a.course.cmp(&b.course));
        SchedSnapshot {
            total_backlog: courses.iter().map(|c| c.backlog).sum(),
            courses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched(config: SchedConfig) -> FairScheduler<u64> {
        FairScheduler::new(config, Arc::new(Recorder::noop()))
    }

    fn offer_light(s: &FairScheduler<u64>, course: &str, job: u64) -> Admission {
        s.offer(course, job, job, GradeClass::Light, 0, |_| {})
    }

    #[test]
    fn drains_fifo_within_a_course() {
        let s = sched(SchedConfig::default());
        for j in 0..5 {
            assert!(offer_light(&s, "hpp", j).admitted());
        }
        let got: Vec<u64> = s.drain(10, 0).into_iter().map(|(_, j)| j).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        assert_eq!(s.total_backlog(), 0);
    }

    #[test]
    fn equal_weights_interleave_courses() {
        let s = sched(SchedConfig::default());
        for j in 0..4 {
            offer_light(&s, "hpp", j);
            offer_light(&s, "ece408", 100 + j);
        }
        // Capacity 2 per round: each course releases exactly one job.
        for round in 0..4 {
            let got = s.drain(2, round);
            let courses: Vec<&str> = got.iter().map(|(c, _)| c.as_str()).collect();
            assert!(
                courses.contains(&"hpp") && courses.contains(&"ece408"),
                "{courses:?}"
            );
        }
        assert_eq!(s.total_backlog(), 0);
    }

    #[test]
    fn weights_set_the_share() {
        let cfg = SchedConfig::default()
            .with_course_weight("big", 3)
            .with_course_weight("small", 1);
        let s = sched(cfg);
        for j in 0..30 {
            offer_light(&s, "big", j);
            offer_light(&s, "small", 100 + j);
        }
        let mut big = 0;
        let mut small = 0;
        for round in 0..6 {
            for (c, _) in s.drain(4, round) {
                if c == "big" {
                    big += 1;
                } else {
                    small += 1;
                }
            }
        }
        // 3:1 share at capacity 4: the big course gets three slots.
        assert_eq!(big, 18);
        assert_eq!(small, 6);
    }

    #[test]
    fn deadline_boost_prefers_the_due_course() {
        let cfg = SchedConfig {
            deadline_boost: 3,
            deadline_boost_window_ms: 1_000,
            ..SchedConfig::default()
        }
        .with_course_deadline("due", 500);
        let s = sched(cfg);
        assert_eq!(s.effective_weight("due", 0), 3);
        assert_eq!(s.effective_weight("due", 2_000), 1, "past the deadline");
        assert_eq!(s.effective_weight("other", 0), 1);
        for j in 0..12 {
            offer_light(&s, "due", j);
            offer_light(&s, "other", 100 + j);
        }
        let got = s.drain(4, 0);
        let due = got.iter().filter(|(c, _)| c == "due").count();
        assert_eq!(due, 3, "boosted course takes 3 of 4 slots: {got:?}");
    }

    #[test]
    fn aged_heads_jump_the_weight_order() {
        // A weight-9 flood against a weight-1 course: without aging the
        // small course gets 1 slot in 10; with aging its head is
        // promoted once it has waited 3 rounds.
        let cfg = SchedConfig {
            age_promote_rounds: 3,
            ..SchedConfig::default()
        }
        .with_course_weight("flood", 9);
        let s = sched(cfg);
        for j in 0..90 {
            offer_light(&s, "flood", j);
        }
        for j in 0..6 {
            offer_light(&s, "tiny", 1_000 + j);
        }
        let mut tiny_by_round = Vec::new();
        for round in 0..6 {
            let tiny = s
                .drain(5, round)
                .iter()
                .filter(|(c, _)| c == "tiny")
                .count();
            tiny_by_round.push(tiny);
        }
        // Once aged (round 3+), "tiny" is served every round even though
        // its weight share at capacity 5 rounds to zero slots.
        assert!(
            tiny_by_round[3..].iter().all(|&n| n >= 1),
            "aged promotion must serve the starved course: {tiny_by_round:?}"
        );
    }

    #[test]
    fn admission_state_machine_walks_admit_brownout_shed() {
        // Budget 8, brown-out from 6 (0.75 * 8): offers 0-5 admit
        // whole, 6-7 brown out, 8+ shed — and draining reopens the
        // course in the same order.
        let cfg = SchedConfig {
            backlog_budget: 8,
            ..SchedConfig::default()
        };
        let s = FairScheduler::new(cfg, Arc::new(Recorder::traced()));
        let mut downgrades = Vec::new();
        for j in 0..10u64 {
            let adm = s.offer("hpp", j, j, GradeClass::Full, 0, |p| {
                downgrades.push(*p);
            });
            match j {
                0..=5 => assert_eq!(adm, Admission::Admitted { browned_out: false }, "job {j}"),
                6..=7 => assert_eq!(adm, Admission::Admitted { browned_out: true }, "job {j}"),
                _ => {
                    let Admission::Shed { retry_after_s } = adm else {
                        panic!("job {j} must shed, got {adm:?}");
                    };
                    assert!(retry_after_s.is_finite() && retry_after_s > 0.0);
                }
            }
        }
        assert_eq!(
            downgrades,
            vec![6, 7],
            "exactly the brown-out band downgraded"
        );
        assert_eq!(s.backlog("hpp"), 8);
        // Draining below the band reopens whole-grade admission.
        s.drain(3, 0);
        let adm = s.offer("hpp", 20, 20, GradeClass::Full, 0, |_| {
            panic!("below the band")
        });
        assert_eq!(adm, Admission::Admitted { browned_out: false });
        // The decisions landed on the recorder.
        let obs = &s.obs;
        assert_eq!(obs.counter(Counter::SchedAdmitted), 9);
        assert_eq!(obs.counter(Counter::SchedShed), 2);
        assert_eq!(obs.counter(Counter::SchedBrownOuts), 2);
        assert_eq!(obs.counter(Counter::SchedDequeues), 3);
        assert!(obs.span(6).unwrap().has(Annotation::BrownOut));
        assert!(obs.span(8).unwrap().has(Annotation::Shed));
    }

    #[test]
    fn light_class_is_admitted_in_band_without_downgrade() {
        let cfg = SchedConfig {
            backlog_budget: 4,
            ..SchedConfig::default()
        };
        let s = sched(cfg);
        for j in 0..3 {
            offer_light(&s, "c", j);
        }
        // Backlog 3 of 4: inside the band (3 >= ceil(3)), but light
        // work is admitted untouched and never reported browned out.
        let adm = s.offer("c", 9, 9, GradeClass::Light, 0, |_| {
            panic!("light never downgrades")
        });
        assert_eq!(adm, Admission::Admitted { browned_out: false });
    }

    #[test]
    fn admit_judges_bands_without_queueing() {
        let cfg = SchedConfig {
            backlog_budget: 4,
            ..SchedConfig::default()
        };
        let s = sched(cfg);
        assert_eq!(
            s.admit("c", 0, GradeClass::Full, 0),
            Admission::Admitted { browned_out: false }
        );
        for j in 0..3 {
            offer_light(&s, "c", j);
        }
        // Backlog 3 of 4 is inside the band: full grades brown out, but
        // the admit path never grows the backlog.
        assert_eq!(
            s.admit("c", 9, GradeClass::Full, 0),
            Admission::Admitted { browned_out: true }
        );
        assert_eq!(s.backlog("c"), 3);
        offer_light(&s, "c", 3);
        let Admission::Shed { retry_after_s } = s.admit("c", 10, GradeClass::Full, 0) else {
            panic!("budget exhausted must shed");
        };
        assert!(retry_after_s.is_finite() && retry_after_s > 0.0);
    }

    #[test]
    fn shed_retry_hint_is_finite_even_with_tiny_budget() {
        let cfg = SchedConfig {
            backlog_budget: 0, // clamped to 1 internally
            shed_retry_after_s: 10.0,
            ..SchedConfig::default()
        };
        let s = sched(cfg);
        assert!(offer_light(&s, "c", 0).admitted());
        let Admission::Shed { retry_after_s } = offer_light(&s, "c", 1) else {
            panic!("budget exhausted");
        };
        assert!(retry_after_s.is_finite() && retry_after_s >= 10.0);
    }

    #[test]
    fn cursor_survives_an_emptied_mid_ring_course() {
        // Regression: the rotating cursor used to index a freshly
        // collected list of non-empty courses, so a course emptying
        // mid-ring compacted the list under the cursor and the next
        // course's turn was skipped for a round. With courses a, b, c
        // and capacity 1, emptying b must hand the next round to its
        // ring successor c — the positional cursor served a again.
        let s = sched(SchedConfig::default());
        offer_light(&s, "a", 0);
        offer_light(&s, "a", 1);
        offer_light(&s, "b", 10);
        offer_light(&s, "c", 20);
        offer_light(&s, "c", 21);
        let turn = |round: u64| {
            let got = s.drain(1, round);
            assert_eq!(got.len(), 1, "round {round} must release one job");
            got[0].0.clone()
        };
        assert_eq!(turn(0), "a");
        assert_eq!(turn(1), "b", "b empties mid-ring here");
        assert_eq!(turn(2), "c", "b's successor drains next, not a again");
        assert_eq!(turn(3), "a");
        assert_eq!(turn(4), "c", "emptied b is skipped in place");
        assert_eq!(s.total_backlog(), 0);
    }

    #[test]
    fn sharded_routing_keeps_a_course_on_one_shard() {
        let s: ShardedScheduler<u64> =
            ShardedScheduler::new(4, SchedConfig::default(), Arc::new(Recorder::noop()));
        for j in 0..8 {
            assert!(s
                .offer("cs100", j, j, GradeClass::Light, 0, |_| {})
                .admitted());
        }
        let home = s.shard_for("cs100");
        assert_eq!(s.shards[home].backlog("cs100"), 8);
        for (i, sh) in s.shards.iter().enumerate() {
            if i != home {
                assert_eq!(sh.total_backlog(), 0, "course leaked to shard {i}");
            }
        }
        assert_eq!(s.backlog("cs100"), 8);
        assert_eq!(s.total_backlog(), 8);
        // FIFO survives the shard hop: home drain releases offer order.
        let got: Vec<u64> = s
            .drain_stealing(home, 8, 0)
            .into_iter()
            .map(|(_, j)| j)
            .collect();
        assert_eq!(got, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn idle_shards_steal_from_loaded_ones() {
        let s: ShardedScheduler<u64> =
            ShardedScheduler::new(4, SchedConfig::default(), Arc::new(Recorder::noop()));
        for j in 0..12 {
            s.offer("cs100", j, j, GradeClass::Light, 0, |_| {});
        }
        let home = s.shard_for("cs100");
        let idle = (home + 1) % 4;
        // A drain anchored on an idle shard must pull the full quota
        // from the loaded sibling.
        let got = s.drain_stealing(idle, 4, 0);
        assert_eq!(got.len(), 4, "idle shard steals the whole quota");
        assert_eq!(s.total_backlog(), 8);
        // Stolen work drains in the victim's FIFO order.
        let ids: Vec<u64> = got.into_iter().map(|(_, j)| j).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn rotating_waves_are_work_conserving_and_starve_no_course() {
        // Two courses, wherever the hash lands them on 3 shards. Every
        // rotating wave must come back full while any backlog remains
        // (an idle home steals), and both courses must be fully served
        // by the time capacity has covered the offered load — no course
        // starves behind a shard boundary.
        let s: ShardedScheduler<u64> =
            ShardedScheduler::new(3, SchedConfig::default(), Arc::new(Recorder::noop()));
        for j in 0..6 {
            s.offer("hpp", j, j, GradeClass::Light, 0, |_| {});
            s.offer("ece408", 100 + j, 100 + j, GradeClass::Light, 0, |_| {});
        }
        let mut served: BTreeMap<String, usize> = BTreeMap::new();
        for round in 0..6 {
            let got = s.drain_rotating(2, round);
            assert_eq!(
                got.len(),
                2,
                "round {round}: a wave never runs short while backlog remains"
            );
            for (c, _) in got {
                *served.entry(c).or_insert(0) += 1;
            }
        }
        assert_eq!(s.total_backlog(), 0, "work conserving across shards");
        assert_eq!(served.get("hpp"), Some(&6));
        assert_eq!(served.get("ece408"), Some(&6));
    }

    #[test]
    fn single_shard_degenerates_to_the_plain_scheduler() {
        let s: ShardedScheduler<u64> =
            ShardedScheduler::new(1, SchedConfig::default(), Arc::new(Recorder::noop()));
        for j in 0..4 {
            s.offer("c", j, j, GradeClass::Light, 0, |_| {});
        }
        let got: Vec<u64> = s
            .drain_stealing(0, 10, 0)
            .into_iter()
            .map(|(_, j)| j)
            .collect();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn sharded_snapshot_merges_sorted_by_course() {
        let s: ShardedScheduler<u64> =
            ShardedScheduler::new(4, SchedConfig::default(), Arc::new(Recorder::noop()));
        s.offer("zeta", 0, 0, GradeClass::Light, 0, |_| {});
        s.offer("alpha", 1, 1, GradeClass::Light, 0, |_| {});
        s.offer("alpha", 2, 2, GradeClass::Light, 0, |_| {});
        let snap = s.snapshot();
        assert_eq!(snap.total_backlog, 3);
        let names: Vec<&str> = snap.courses.iter().map(|c| c.course.as_str()).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
        assert_eq!(snap.courses[0].backlog, 2);
        assert_eq!(s.max_course_backlog(), 2);
    }

    #[test]
    fn sharded_admission_budgets_are_per_course_not_per_shard() {
        // Budget 2 per course: the third offer for one course sheds on
        // its shard even though the other shards are empty.
        let cfg = SchedConfig {
            backlog_budget: 2,
            ..SchedConfig::default()
        };
        let s: ShardedScheduler<u64> = ShardedScheduler::new(4, cfg, Arc::new(Recorder::noop()));
        assert!(s.offer("c", 0, 0, GradeClass::Light, 0, |_| {}).admitted());
        assert!(s.offer("c", 1, 1, GradeClass::Light, 0, |_| {}).admitted());
        let Admission::Shed { retry_after_s } = s.offer("c", 2, 2, GradeClass::Light, 0, |_| {})
        else {
            panic!("budget exhausted must shed across shards too");
        };
        assert!(retry_after_s.is_finite() && retry_after_s > 0.0);
    }

    #[test]
    fn snapshot_lists_nonempty_courses() {
        let s = sched(SchedConfig::default());
        offer_light(&s, "b", 0);
        offer_light(&s, "a", 1);
        offer_light(&s, "a", 2);
        let snap = s.snapshot();
        assert_eq!(snap.total_backlog, 3);
        assert_eq!(snap.courses.len(), 2);
        assert_eq!(snap.courses[0].course, "a");
        assert_eq!(snap.courses[0].backlog, 2);
        assert_eq!(s.max_course_backlog(), 2);
        s.drain(10, 0);
        assert!(s.snapshot().courses.is_empty());
    }
}
