//! Property-based tests: fairness and conservation invariants of the
//! deficit-round-robin scheduler under adversarial arrival mixes.

use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;
use wb_obs::Recorder;
use wb_sched::{Admission, FairScheduler, GradeClass, SchedConfig, ShardedScheduler};

const COURSES: [&str; 4] = ["ece408", "ece598", "hpp", "pumps"];

fn sched_with_weights(weights: &[u64]) -> FairScheduler<u64> {
    let mut cfg = SchedConfig {
        backlog_budget: 10_000,
        ..SchedConfig::default()
    };
    for (i, w) in weights.iter().enumerate() {
        cfg = cfg.with_course_weight(COURSES[i], *w);
    }
    FairScheduler::new(cfg, Arc::new(Recorder::noop()))
}

proptest! {
    /// Conservation and order: across any arrival mix, draining one
    /// slot at a time releases every admitted job exactly once, in
    /// FIFO order within each course, and terminates within one drain
    /// per job (every drain over a non-empty backlog makes progress).
    #[test]
    fn every_admitted_job_drains_exactly_once(
        arrivals in prop::collection::vec((0usize..4, any::<u8>()), 1..120),
        weights in prop::collection::vec(1u64..9, 4),
    ) {
        let s = sched_with_weights(&weights);
        let mut offered: BTreeMap<usize, Vec<u64>> = BTreeMap::new();
        for (job_id, (course, _)) in arrivals.iter().enumerate() {
            let adm = s.offer(
                COURSES[*course],
                job_id as u64,
                job_id as u64,
                GradeClass::Light,
                0,
                |_| {},
            );
            prop_assert!(adm.admitted(), "budget is generous in this mix");
            offered.entry(*course).or_default().push(job_id as u64);
        }
        let total = arrivals.len();
        let mut drained: BTreeMap<String, Vec<u64>> = BTreeMap::new();
        for round in 0..total {
            let got = s.drain(1, round as u64);
            prop_assert_eq!(got.len(), 1, "non-empty backlog always progresses");
            for (course, job) in got {
                drained.entry(course).or_default().push(job);
            }
        }
        prop_assert_eq!(s.total_backlog(), 0, "exactly one drain per job empties it");
        prop_assert!(s.drain(1, total as u64).is_empty());
        for (i, name) in COURSES.iter().enumerate() {
            let want = offered.remove(&i).unwrap_or_default();
            let got = drained.remove(*name).unwrap_or_default();
            prop_assert_eq!(got, want, "course {} is FIFO and loses nothing", name);
        }
    }

    /// No starvation: when each drain's capacity covers the weight sum,
    /// every course with a non-empty backlog releases at least one job
    /// on every single round, no matter how lopsided the weights or the
    /// arrival mix are.
    #[test]
    fn no_course_starves_under_adversarial_mixes(
        backlogs in prop::collection::vec(1usize..40, 4),
        weights in prop::collection::vec(1u64..9, 4),
        rounds in 1u64..30,
    ) {
        let s = sched_with_weights(&weights);
        let mut job = 0u64;
        for (i, n) in backlogs.iter().enumerate() {
            for _ in 0..*n {
                s.offer(COURSES[i], job, job, GradeClass::Light, 0, |_| {});
                job += 1;
            }
        }
        let capacity: u64 = weights.iter().sum();
        let mut left: Vec<usize> = backlogs.clone();
        for round in 0..rounds {
            let got = s.drain(capacity as usize, round);
            let mut served = [0usize; 4];
            for (course, _) in &got {
                let i = COURSES.iter().position(|c| c == course).unwrap();
                served[i] += 1;
            }
            for i in 0..4 {
                if left[i] > 0 {
                    prop_assert!(
                        served[i] >= 1,
                        "course {} starved on round {round} (served {served:?}, left {left:?})",
                        COURSES[i]
                    );
                }
                left[i] -= served[i].min(left[i]);
            }
        }
    }

    /// Weighted share: with two contending backlogged courses and the
    /// drain capacity equal to the weight sum, one round splits the
    /// capacity exactly by weight.
    #[test]
    fn contended_capacity_splits_by_weight(w0 in 1u64..9, w1 in 1u64..9) {
        let s = sched_with_weights(&[w0, w1, 1, 1]);
        for job in 0..40u64 {
            s.offer(COURSES[0], job, job, GradeClass::Light, 0, |_| {});
            s.offer(COURSES[1], 100 + job, 100 + job, GradeClass::Light, 0, |_| {});
        }
        let got = s.drain((w0 + w1) as usize, 0);
        let c0 = got.iter().filter(|(c, _)| c == COURSES[0]).count() as u64;
        let c1 = got.iter().filter(|(c, _)| c == COURSES[1]).count() as u64;
        prop_assert_eq!((c0, c1), (w0, w1));
    }

    /// Admission control: for any budget, offers admit whole below the
    /// brown-out band, downgrade inside it, and shed with a finite
    /// retry-after hint past the budget — in that order.
    #[test]
    fn admission_bands_are_ordered(budget in 1usize..50, offers in 1usize..120) {
        let cfg = SchedConfig {
            backlog_budget: budget,
            ..SchedConfig::default()
        };
        let s = FairScheduler::new(cfg, Arc::new(Recorder::noop()));
        let band = ((budget as f64) * 0.75).ceil() as usize;
        for j in 0..offers {
            let adm = s.offer("hpp", j as u64, j as u64, GradeClass::Full, 0, |_| {});
            match adm {
                Admission::Admitted { browned_out } => {
                    prop_assert!(j < budget, "admitted only under budget");
                    prop_assert_eq!(browned_out, j >= band, "band at {} (offer {})", band, j);
                }
                Admission::Shed { retry_after_s } => {
                    prop_assert!(j >= budget, "shed only past budget");
                    prop_assert!(retry_after_s.is_finite() && retry_after_s > 0.0);
                }
            }
        }
        prop_assert_eq!(s.backlog("hpp"), offers.min(budget));
    }

    /// Cross-shard conservation: for any lane count, adversarial
    /// arrival mix, anchor-shard sequence, and wave width, stealing
    /// drains release every admitted job exactly once, keep each
    /// course FIFO (a course's queue lives on one home shard, whoever
    /// drains it), always make progress while any shard holds work,
    /// and the recorder's per-course dequeue books reconcile with the
    /// offers.
    #[test]
    fn stealing_drains_release_every_job_exactly_once_across_shards(
        shards in 1usize..8,
        arrivals in prop::collection::vec((0usize..4, any::<u8>()), 1..150),
        homes in prop::collection::vec(0usize..8, 1..40),
        wave in 1usize..9,
    ) {
        let obs = Arc::new(Recorder::traced());
        let cfg = SchedConfig {
            backlog_budget: 10_000,
            ..SchedConfig::default()
        };
        let s: ShardedScheduler<u64> = ShardedScheduler::new(shards, cfg, Arc::clone(&obs));
        let mut offered: BTreeMap<usize, Vec<u64>> = BTreeMap::new();
        for (job_id, (course, _)) in arrivals.iter().enumerate() {
            let adm = s.offer(
                COURSES[*course],
                job_id as u64,
                job_id as u64,
                GradeClass::Light,
                0,
                |_| {},
            );
            prop_assert!(adm.admitted(), "budget is generous in this mix");
            offered.entry(*course).or_default().push(job_id as u64);
        }
        let mut drained: BTreeMap<String, Vec<u64>> = BTreeMap::new();
        let mut round = 0u64;
        let mut anchors = homes.iter().cycle();
        while s.total_backlog() > 0 {
            prop_assert!(round < 10_000, "stealing drains must terminate");
            let home = *anchors.next().unwrap() % shards;
            let got = s.drain_stealing(home, wave, round);
            prop_assert!(
                !got.is_empty(),
                "backlog {} but the wave anchored at {home} released nothing",
                s.total_backlog()
            );
            for (course, job) in got {
                drained.entry(course).or_default().push(job);
            }
            round += 1;
        }
        let mut released = 0usize;
        for (i, name) in COURSES.iter().enumerate() {
            let want = offered.remove(&i).unwrap_or_default();
            let got = drained.remove(*name).unwrap_or_default();
            released += got.len();
            prop_assert_eq!(
                obs.scoped(&format!("sched/dequeued/{}", name)),
                got.len() as u64,
                "course {} books reconcile across lanes", name
            );
            prop_assert_eq!(got, want, "course {} is FIFO and loses nothing", name);
        }
        prop_assert_eq!(released, arrivals.len(), "exactly once, cluster-wide");
    }
}
