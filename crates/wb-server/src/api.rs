//! The typed submission API: one request shape, one outcome shape, one
//! error taxonomy — shared by the web server and both cluster
//! generations.
//!
//! The original server grew three parallel entry points (`compile`,
//! `run_dataset`, `submit`) with three return types and a stringly
//! `Dispatch(String)` error that flattened every failure mode the
//! clusters could produce. The redesigned surface is a single
//! [`WebGpuServer::submit`](crate::WebGpuServer::submit) taking a
//! [`SubmitRequest`] and returning a [`SubmissionOutcome`] whose
//! `trace_id` joins the result to its recorded span in `wb-obs`.
//! Failures are a closed [`WbError`] taxonomy, so the UI layer can
//! branch on *kind* (show a retry countdown, render a compiler diag,
//! page the operator) instead of grepping message strings.

use crate::session::AuthError;

/// Every way a submission can fail, across the web tier and both
/// cluster backends.
#[derive(Debug, Clone, PartialEq)]
pub enum WbError {
    /// Refused before any work ran: auth failure, unknown lab,
    /// malformed input, forbidden operation.
    Rejected {
        /// Student-facing explanation.
        reason: String,
    },
    /// The per-user token bucket is empty.
    RateLimited {
        /// Seconds until the next token accrues.
        retry_after_s: f64,
    },
    /// Admission control shed the submission: the course's backlog
    /// budget is exhausted and queuing more work would only grow
    /// everyone's wait. Unlike [`WbError::RateLimited`] this is a
    /// platform-load signal, not a per-user one.
    Overloaded {
        /// Suggested client back-off in seconds (always finite).
        retry_after_s: f64,
    },
    /// The student's code did not compile (includes blacklist and
    /// size-limit rejections — anything the compile phase refuses).
    CompileError {
        /// Rendered compiler output, plus any automated hints.
        report: String,
    },
    /// The code compiled but a dataset run crashed, was killed by the
    /// sandbox, or otherwise errored (wrong *answers* are not errors —
    /// they come back as a non-passing [`SubmissionOutcome`]).
    RuntimeError {
        /// Rendered run output, plus any automated hints.
        report: String,
    },
    /// The platform, not the student: no workers, queue down, fleet
    /// scaled to zero, job lost.
    Infra {
        /// Operator-facing detail.
        detail: String,
    },
}

impl std::fmt::Display for WbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WbError::Rejected { reason } => write!(f, "{reason}"),
            WbError::RateLimited { retry_after_s } => {
                write!(
                    f,
                    "submission rate limit: retry in {retry_after_s:.0} seconds"
                )
            }
            WbError::Overloaded { retry_after_s } => {
                write!(
                    f,
                    "the grading fleet is overloaded: retry in {retry_after_s:.0} seconds"
                )
            }
            WbError::CompileError { report } => write!(f, "compilation failed:\n{report}"),
            WbError::RuntimeError { report } => write!(f, "program failed:\n{report}"),
            WbError::Infra { detail } => write!(f, "could not run your code: {detail}"),
        }
    }
}

impl std::error::Error for WbError {}

impl From<AuthError> for WbError {
    fn from(e: AuthError) -> Self {
        WbError::Rejected {
            reason: e.to_string(),
        }
    }
}

impl WbError {
    /// Shorthand for an [`WbError::Infra`] failure.
    pub fn infra(detail: impl Into<String>) -> Self {
        WbError::Infra {
            detail: detail.into(),
        }
    }

    /// Shorthand for an [`WbError::Rejected`] refusal.
    pub fn rejected(reason: impl Into<String>) -> Self {
        WbError::Rejected {
            reason: reason.into(),
        }
    }

    /// The student-facing report carried by compile/runtime failures.
    pub fn report(&self) -> Option<&str> {
        match self {
            WbError::CompileError { report } | WbError::RuntimeError { report } => Some(report),
            _ => None,
        }
    }
}

/// What a submission asks the platform to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitAction {
    /// Compile only (student action 2).
    CompileOnly,
    /// Run against one instructor dataset (student action 3).
    RunDataset(usize),
    /// Run every dataset and record a grade (student action 5).
    FullGrade,
}

/// A typed submission request, built with the named constructors and
/// stamped with a virtual time via [`SubmitRequest::at`].
///
/// ```
/// # use wb_server::SubmitRequest;
/// let req = SubmitRequest::run_dataset(42, "vecadd", 1).at(30_000);
/// assert_eq!(req.lab, "vecadd");
/// assert_eq!(req.at_ms, 30_000);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitRequest {
    /// Session token of the submitting student.
    pub token: u64,
    /// Lab id.
    pub lab: String,
    /// What to run.
    pub action: SubmitAction,
    /// Virtual ms of the request (defaults to 0).
    pub at_ms: u64,
    /// Inline source for this submission. `None` — the common
    /// interactive path — submits the student's latest autosaved
    /// revision; `Some` carries the code in the request itself, the
    /// way batch clients and the semester replay submit without a
    /// round-trip through the revisions table.
    pub source: Option<String>,
}

impl SubmitRequest {
    fn new(token: u64, lab: &str, action: SubmitAction) -> Self {
        SubmitRequest {
            token,
            lab: lab.to_string(),
            action,
            at_ms: 0,
            source: None,
        }
    }

    /// A compile-only request.
    pub fn compile_only(token: u64, lab: &str) -> Self {
        Self::new(token, lab, SubmitAction::CompileOnly)
    }

    /// A single-dataset run.
    pub fn run_dataset(token: u64, lab: &str, dataset: usize) -> Self {
        Self::new(token, lab, SubmitAction::RunDataset(dataset))
    }

    /// A full graded submission.
    pub fn full_grade(token: u64, lab: &str) -> Self {
        Self::new(token, lab, SubmitAction::FullGrade)
    }

    /// Stamp the request with a virtual time.
    pub fn at(mut self, now_ms: u64) -> Self {
        self.at_ms = now_ms;
        self
    }

    /// Carry the source inline instead of reading the latest revision.
    pub fn with_source(mut self, source: impl Into<String>) -> Self {
        self.source = Some(source.into());
        self
    }
}

/// The result of a successful submission, of any [`SubmitAction`].
#[derive(Debug, Clone, PartialEq)]
pub struct SubmissionOutcome {
    /// The platform job id this submission ran as — also the span id
    /// under which `wb-obs` recorded its lifecycle, so a slow or odd
    /// outcome can be joined straight to its trace.
    pub trace_id: u64,
    /// Row id of the durable record: an attempt row for
    /// compile/run-dataset, a submission row for full grades.
    pub record_id: u64,
    /// Did the code compile? (Always true for compile/run actions —
    /// their compile failures surface as [`WbError::CompileError`] —
    /// but a recorded full grade keeps the flag.)
    pub compiled: bool,
    /// Datasets whose output matched.
    pub passed: usize,
    /// Datasets that ran.
    pub total: usize,
    /// Rubric score — `Some` only for [`SubmitAction::FullGrade`].
    pub score: Option<f64>,
    /// Student-facing text: per-dataset summaries, timer report, logs,
    /// automated hints.
    pub report: String,
    /// Rendered static-verifier findings (warn-mode labs). Kept out of
    /// `report` so warn-mode analysis never perturbs the grading text;
    /// the UI shows them as a separate advisory panel.
    pub analysis: Vec<String>,
}

impl SubmissionOutcome {
    /// True when the code compiled and every dataset that ran matched.
    pub fn all_passed(&self) -> bool {
        self.compiled && self.passed == self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_and_stamping() {
        let r = SubmitRequest::full_grade(7, "scan");
        assert_eq!(r.at_ms, 0);
        assert_eq!(r.action, SubmitAction::FullGrade);
        assert_eq!(r.source, None);
        let r = SubmitRequest::compile_only(7, "scan").at(99);
        assert_eq!(r.at_ms, 99);
        let r = SubmitRequest::full_grade(7, "scan").with_source("int main() {}");
        assert_eq!(r.source.as_deref(), Some("int main() {}"));
        assert_eq!(
            SubmitRequest::run_dataset(7, "scan", 2).action,
            SubmitAction::RunDataset(2)
        );
    }

    #[test]
    fn error_display_keeps_ui_contracts() {
        let e = WbError::RateLimited { retry_after_s: 9.4 };
        assert!(e.to_string().contains("retry in 9 seconds"));
        let e = WbError::Overloaded {
            retry_after_s: 31.7,
        };
        assert!(e.to_string().contains("overloaded: retry in 32 seconds"));
        let e = WbError::infra("no workers in the pool");
        assert!(e.to_string().contains("no workers in the pool"));
        let e = WbError::CompileError {
            report: "syntax error".into(),
        };
        assert_eq!(e.report(), Some("syntax error"));
        assert!(WbError::rejected("nope").report().is_none());
    }

    #[test]
    fn auth_errors_become_rejections() {
        let e: WbError = AuthError::NotInstructor.into();
        assert!(matches!(e, WbError::Rejected { .. }));
    }
}
