//! OpenEdx frontend adapter — the WebGPU 2.0 face (§VI-A).
//!
//! In the new architecture, instructors author labs and students work
//! inside OpenEdx via a programming XBlock; the XBlock's only job on
//! the execution path is to enqueue jobs to the message broker and
//! collect results. This adapter models that contract: it turns the
//! server's synchronous dispatch into an enqueue + poll-for-result
//! flow over `wb-queue`, with lab datasets fetched from the blob store
//! instead of shipped inline.

use crate::api::WbError;
use crate::server::JobDispatcher;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use wb_db::BlobStore;
use wb_queue::Broker;
use wb_worker::{JobOutcome, JobRequest};

/// A dispatcher that enqueues to the v2 broker and waits for the
/// result to be posted back by a worker.
///
/// The "wait" is cooperative: after enqueueing, the caller is expected
/// to drive workers (`pump`) until the result lands — the discrete-
/// event simulation does exactly that. For convenience, `dispatch`
/// drives the supplied worker set itself.
pub struct EdxFrontend {
    broker: Arc<Broker<JobRequest>>,
    results: Mutex<HashMap<u64, JobOutcome>>,
    workers: Vec<Arc<wb_worker::WorkerNode>>,
}

impl EdxFrontend {
    /// Build over a broker and a worker fleet.
    pub fn new(broker: Arc<Broker<JobRequest>>, workers: Vec<Arc<wb_worker::WorkerNode>>) -> Self {
        EdxFrontend {
            broker,
            results: Mutex::new(HashMap::new()),
            workers,
        }
    }

    /// Upload a lab dataset bundle to the blob store under the keys
    /// workers expect (`labs/<id>/<case>/...`).
    pub fn upload_datasets(
        store: &BlobStore,
        lab_id: &str,
        cases: &[wb_worker::DatasetCase],
    ) -> usize {
        let mut n = 0;
        for (i, case) in cases.iter().enumerate() {
            for (j, input) in case.inputs.iter().enumerate() {
                store.put(
                    format!("labs/{lab_id}/case{i}/input{j}.raw"),
                    input.export().into_bytes(),
                );
                n += 1;
            }
            store.put(
                format!("labs/{lab_id}/case{i}/expected.raw"),
                case.expected.export().into_bytes(),
            );
            n += 1;
        }
        n
    }

    /// Fetch a lab's dataset bundle back from the store.
    pub fn fetch_datasets(
        store: &BlobStore,
        lab_id: &str,
    ) -> Result<Vec<wb_worker::DatasetCase>, String> {
        let mut cases = Vec::new();
        for i in 0.. {
            let expected_key = format!("labs/{lab_id}/case{i}/expected.raw");
            let Some(expected_bytes) = store.get(&expected_key) else {
                break;
            };
            let expected = libwb::Dataset::import(
                std::str::from_utf8(&expected_bytes).map_err(|e| e.to_string())?,
            )
            .map_err(|e| e.to_string())?;
            let mut inputs = Vec::new();
            for j in 0.. {
                let key = format!("labs/{lab_id}/case{i}/input{j}.raw");
                let Some(bytes) = store.get(&key) else { break };
                inputs.push(
                    libwb::Dataset::import(std::str::from_utf8(&bytes).map_err(|e| e.to_string())?)
                        .map_err(|e| e.to_string())?,
                );
            }
            cases.push(wb_worker::DatasetCase {
                name: format!("case{i}"),
                inputs,
                expected,
            });
        }
        if cases.is_empty() {
            return Err(format!("no datasets stored for lab {lab_id:?}"));
        }
        Ok(cases)
    }

    /// Let every live worker poll once; posted results are collected.
    pub fn pump(&self, now_ms: u64) -> usize {
        let mut done = 0;
        for w in &self.workers {
            if let Some(outcome) = w.poll_once(&self.broker, now_ms) {
                self.results.lock().insert(outcome.job_id, outcome);
                done += 1;
            }
        }
        done
    }

    /// Take a completed result.
    pub fn take_result(&self, job_id: u64) -> Option<JobOutcome> {
        self.results.lock().remove(&job_id)
    }
}

impl JobDispatcher for EdxFrontend {
    fn dispatch(&self, req: JobRequest, now_ms: u64) -> Result<JobOutcome, WbError> {
        let job_id = req.job_id;
        let tags = req.spec.tags.to_wire();
        self.broker.enqueue(req, tags, now_ms);
        // Drive the fleet until the job completes or nobody can take it.
        for round in 0..1_000 {
            if self.pump(now_ms + round) == 0 && self.take_result(job_id).is_none() {
                // No worker made progress this round: either the job is
                // tagged beyond the fleet's capabilities or everyone is
                // down.
                if self.broker.depth(now_ms + round + 1) > 0 {
                    return Err(WbError::infra(
                        "no worker in the fleet can run this job (missing capability tags or all down)",
                    ));
                }
            }
            if let Some(out) = self.take_result(job_id) {
                return Ok(out);
            }
        }
        Err(WbError::infra("job did not complete"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use libwb::Dataset;
    use minicuda::DeviceConfig;
    use wb_worker::{DatasetCase, JobAction, LabSpec, WorkerConfig, WorkerNode};

    fn fleet(n: usize) -> (Arc<Broker<JobRequest>>, Vec<Arc<WorkerNode>>) {
        let broker = Arc::new(Broker::new(60_000, 3));
        let workers = (0..n)
            .map(|i| {
                Arc::new(WorkerNode::boot(
                    i as u64 + 1,
                    DeviceConfig::test_small(),
                    &WorkerConfig::default(),
                ))
            })
            .collect();
        (broker, workers)
    }

    fn echo_request(job_id: u64) -> JobRequest {
        JobRequest {
            job_id,
            user: "alice".into(),
            source: r#"
                int main() {
                    int n;
                    float* a = wbImportVector(0, &n);
                    wbSolution(a, n);
                    return 0;
                }
            "#
            .to_string(),
            spec: LabSpec::cuda_test("echo"),
            datasets: vec![DatasetCase {
                name: "d0".into(),
                inputs: vec![Dataset::Vector(vec![1.0])],
                expected: Dataset::Vector(vec![1.0]),
            }],
            action: JobAction::FullGrade,
        }
    }

    #[test]
    fn dispatch_roundtrips_through_queue() {
        let (broker, workers) = fleet(2);
        let edx = EdxFrontend::new(broker, workers);
        let out = edx.dispatch(echo_request(1), 0).unwrap();
        assert!(out.compiled());
        assert_eq!(out.passed_count(), 1);
    }

    #[test]
    fn untakeable_job_reports_capability_gap() {
        let (broker, workers) = fleet(1);
        let edx = EdxFrontend::new(broker, workers);
        let mut req = echo_request(2);
        req.spec.tags = ["mpi".to_string()].into_iter().collect();
        let err = edx.dispatch(req, 0).unwrap_err();
        assert!(matches!(err, WbError::Infra { .. }));
        assert!(err.to_string().contains("capability"));
    }

    #[test]
    fn dataset_blob_roundtrip() {
        let store = BlobStore::new();
        let cases = vec![
            DatasetCase {
                name: "case0".into(),
                inputs: vec![Dataset::Vector(vec![1.0, 2.0]), Dataset::Scalar(3.0)],
                expected: Dataset::Vector(vec![4.0]),
            },
            DatasetCase {
                name: "case1".into(),
                inputs: vec![Dataset::IntVector(vec![1, 2, 3])],
                expected: Dataset::Scalar(6.0),
            },
        ];
        let n = EdxFrontend::upload_datasets(&store, "sum", &cases);
        assert_eq!(n, 5); // 3 inputs + 2 expected
        let back = EdxFrontend::fetch_datasets(&store, "sum").unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].inputs, cases[0].inputs);
        assert_eq!(back[1].expected, cases[1].expected);
        assert!(EdxFrontend::fetch_datasets(&store, "missing").is_err());
    }

    #[test]
    fn crashed_fleet_reports_down() {
        let (broker, workers) = fleet(1);
        workers[0].crash();
        let edx = EdxFrontend::new(broker, workers);
        let err = edx.dispatch(echo_request(3), 0).unwrap_err().to_string();
        assert!(err.contains("down") || err.contains("capability"));
    }
}
