//! External gradebook export.
//!
//! §IV-F: *"the system assigns a grade automatically and records it in
//! the grade book (storing the grade in Coursera, for example)."*
//! The export path is a trait so courses can target Coursera, a campus
//! LMS, or a CSV file; the in-memory [`CourseraGradebook`] records
//! posts for tests and keeps only each student's best grade, which is
//! the MOOC's policy.

use crate::state::ServerState;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One posted grade.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GradePost {
    /// Student login.
    pub user: String,
    /// Lab id.
    pub lab: String,
    /// Effective score (override-aware) plus question points.
    pub score: f64,
    /// Virtual ms of the posting.
    pub at_ms: u64,
}

/// Where grades are published.
pub trait ExternalGradebook: Send + Sync {
    /// Record a grade; implementations decide idempotency policy.
    fn post(&self, grade: GradePost) -> Result<(), String>;
}

/// The Coursera-style gradebook: keeps the best score per (user, lab).
#[derive(Default)]
pub struct CourseraGradebook {
    posts: Mutex<Vec<GradePost>>,
    best: Mutex<HashMap<(String, String), f64>>,
}

impl CourseraGradebook {
    /// Empty gradebook.
    pub fn new() -> Self {
        Self::default()
    }

    /// Every post received, in order.
    pub fn posts(&self) -> Vec<GradePost> {
        self.posts.lock().clone()
    }

    /// Best recorded score for a student on a lab.
    pub fn best(&self, user: &str, lab: &str) -> Option<f64> {
        self.best
            .lock()
            .get(&(user.to_string(), lab.to_string()))
            .copied()
    }
}

impl ExternalGradebook for CourseraGradebook {
    fn post(&self, grade: GradePost) -> Result<(), String> {
        let key = (grade.user.clone(), grade.lab.clone());
        let mut best = self.best.lock();
        let entry = best.entry(key).or_insert(f64::NEG_INFINITY);
        if grade.score > *entry {
            *entry = grade.score;
        }
        self.posts.lock().push(grade);
        Ok(())
    }
}

/// Publish every submission's effective grade (plus any instructor
/// question score) for a lab. Returns the number of posts made.
pub fn publish_lab_grades(
    state: &ServerState,
    gradebook: &dyn ExternalGradebook,
    lab: &str,
    now_ms: u64,
) -> Result<usize, String> {
    let ids = state
        .submissions
        .find("by_lab", lab)
        .map_err(|e| e.to_string())?;
    let mut n = 0;
    for id in ids {
        let sub = state.submissions.get(id).map_err(|e| e.to_string())?;
        let question = state
            .answers
            .find("by_user_lab", &format!("{}/{}", sub.user, lab))
            .ok()
            .and_then(|ids| ids.first().copied())
            .and_then(|aid| state.answers.get(aid).ok())
            .and_then(|a| a.question_score)
            .unwrap_or(0.0);
        gradebook.post(GradePost {
            user: sub.user.clone(),
            lab: lab.to_string(),
            score: sub.effective_score() + question,
            at_ms: now_ms,
        })?;
        n += 1;
    }
    Ok(n)
}

/// Render a CSV export of best grades (campus-LMS style).
pub fn render_csv(gradebook: &CourseraGradebook) -> String {
    let best = gradebook.best.lock();
    let mut rows: Vec<(&(String, String), &f64)> = best.iter().collect();
    rows.sort_by(|a, b| a.0.cmp(b.0));
    let mut out = String::from("user,lab,score\n");
    for ((user, lab), score) in rows {
        out.push_str(&format!("{user},{lab},{score:.1}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::SubmissionRec;

    fn submission(user: &str, lab: &str, score: f64, at: u64) -> SubmissionRec {
        SubmissionRec {
            user: user.into(),
            lab: lab.into(),
            at_ms: at,
            passed: 1,
            total: 1,
            compiled: true,
            score,
            override_score: None,
            source: String::new(),
        }
    }

    #[test]
    fn best_grade_wins() {
        let gb = CourseraGradebook::new();
        gb.post(GradePost {
            user: "a".into(),
            lab: "l".into(),
            score: 40.0,
            at_ms: 0,
        })
        .unwrap();
        gb.post(GradePost {
            user: "a".into(),
            lab: "l".into(),
            score: 90.0,
            at_ms: 1,
        })
        .unwrap();
        gb.post(GradePost {
            user: "a".into(),
            lab: "l".into(),
            score: 60.0,
            at_ms: 2,
        })
        .unwrap();
        assert_eq!(gb.best("a", "l"), Some(90.0));
        assert_eq!(gb.posts().len(), 3);
        assert_eq!(gb.best("a", "other"), None);
    }

    #[test]
    fn publish_includes_question_scores_and_overrides() {
        let st = ServerState::new();
        let id = st
            .submissions
            .insert(&submission("alice", "vecadd", 80.0, 5))
            .unwrap();
        // Instructor overrides the program grade and grades questions.
        let mut rec = st.submissions.get(id).unwrap();
        rec.override_score = Some(85.0);
        st.submissions.update(id, &rec).unwrap();
        st.answers
            .insert(&crate::state::AnswerRec {
                user: "alice".into(),
                lab: "vecadd".into(),
                answers: vec!["x".into()],
                question_score: Some(10.0),
                comment: None,
            })
            .unwrap();

        let gb = CourseraGradebook::new();
        let n = publish_lab_grades(&st, &gb, "vecadd", 100).unwrap();
        assert_eq!(n, 1);
        assert_eq!(gb.best("alice", "vecadd"), Some(95.0));
    }

    #[test]
    fn publish_posts_every_submission() {
        let st = ServerState::new();
        st.submissions
            .insert(&submission("a", "l", 10.0, 1))
            .unwrap();
        st.submissions
            .insert(&submission("a", "l", 90.0, 2))
            .unwrap();
        st.submissions
            .insert(&submission("b", "l", 50.0, 3))
            .unwrap();
        let gb = CourseraGradebook::new();
        assert_eq!(publish_lab_grades(&st, &gb, "l", 10).unwrap(), 3);
        assert_eq!(gb.best("a", "l"), Some(90.0));
        assert_eq!(gb.best("b", "l"), Some(50.0));
    }

    #[test]
    fn csv_export_is_sorted() {
        let gb = CourseraGradebook::new();
        for (u, l, s) in [("b", "l1", 70.0), ("a", "l2", 80.0), ("a", "l1", 90.0)] {
            gb.post(GradePost {
                user: u.into(),
                lab: l.into(),
                score: s,
                at_ms: 0,
            })
            .unwrap();
        }
        let csv = render_csv(&gb);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "user,lab,score");
        assert_eq!(lines[1], "a,l1,90.0");
        assert_eq!(lines[2], "a,l2,80.0");
        assert_eq!(lines[3], "b,l1,70.0");
    }

    #[test]
    fn empty_lab_publishes_nothing() {
        let st = ServerState::new();
        let gb = CourseraGradebook::new();
        assert_eq!(publish_lab_grades(&st, &gb, "ghost", 0).unwrap(), 0);
    }
}
