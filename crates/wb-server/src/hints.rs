//! Automated feedback — the paper's stated future work, implemented.
//!
//! §VIII: *"Future work on WebGPU includes automated feedback to
//! students and on-demand help/hints during development."* The hint
//! engine classifies a failed attempt (compile diagnostics, runtime
//! errors, mismatch patterns, cost-model smells) and produces the
//! message a TA would have typed, without a TA — the scaling story of
//! §II-A carried one step further.

use minicuda::{CostSummary, Diag, Phase};
use serde::{Deserialize, Serialize};
use wb_worker::JobOutcome;

/// A piece of automated feedback.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hint {
    /// Stable identifier (used to avoid repeating hints to a student).
    pub code: &'static str,
    /// The student-facing message.
    pub message: String,
}

/// Derive hints from a job outcome. Returns the most specific hints
/// first; an empty vec means "nothing obviously wrong that we
/// recognize".
pub fn hints_for(outcome: &JobOutcome, source: &str) -> Vec<Hint> {
    let mut hints = Vec::new();

    if let Some(err) = &outcome.compile_error {
        hints.extend(compile_hints(err));
        return hints; // nothing ran; later analyses don't apply
    }

    for d in &outcome.datasets {
        if let Some(err) = &d.error {
            hints.extend(runtime_hints(err));
        } else if let Some(check) = &d.check {
            if !check.passed() {
                hints.extend(mismatch_hints(check, source));
            }
        }
        hints.extend(cost_hints(&d.cost, source));
    }

    dedup(hints)
}

fn compile_hints(err: &str) -> Vec<Hint> {
    let mut hints = Vec::new();
    if err.contains("not allowed in this lab") {
        hints.push(Hint {
            code: "blacklist",
            message: "Your code uses a function this lab forbids — note that the scanner also \
matches inside comments, so delete the word entirely."
                .to_string(),
        });
    }
    if err.contains("expected `;`") || err.contains("found `;`") {
        hints.push(Hint {
            code: "semicolon",
            message: "Check the line the compiler points at for a missing or extra semicolon."
                .to_string(),
        });
    }
    if err.contains("missing `}`") {
        hints.push(Hint {
            code: "braces",
            message: "A block is never closed — count your braces from the function the \
compiler names."
                .to_string(),
        });
    }
    if err.contains("undeclared variable") {
        hints.push(Hint {
            code: "undeclared",
            message: "You are using a name before declaring it (or it is declared in an inner \
scope). Declare it with a type first."
                .to_string(),
        });
    }
    if err.contains("must be launched") {
        hints.push(Hint {
            code: "launch-syntax",
            message: "Kernels are launched with kernel<<<grid, block>>>(args), not called like \
functions."
                .to_string(),
        });
    }
    if err.contains("only available in device code") || err.contains("device code") {
        hints.push(Hint {
            code: "host-device-split",
            message: "threadIdx/blockIdx and __syncthreads exist only inside __global__ or \
__device__ functions; host code cannot use them."
                .to_string(),
        });
    }
    if hints.is_empty() {
        hints.push(Hint {
            code: "compile-generic",
            message: format!(
                "Compilation failed: {err}. Fix the first error the compiler reports; later \
ones are often cascades."
            ),
        });
    }
    hints
}

fn runtime_hints(err: &Diag) -> Vec<Hint> {
    let mut hints = Vec::new();
    let msg = &err.message;
    if msg.contains("out of bounds") || msg.contains("negative index") {
        hints.push(Hint {
            code: "bounds",
            message: "A thread indexed outside an allocation. The usual cause: the grid covers \
more threads than elements — guard with `if (i < n)` — or an off-by-one in an index expression."
                .to_string(),
        });
    }
    if msg.contains("host pointer") {
        hints.push(Hint {
            code: "memcpy-missing",
            message: "Your kernel received a host pointer. Allocate device memory with \
cudaMalloc and copy inputs over with cudaMemcpy before launching."
                .to_string(),
        });
    }
    if msg.contains("device pointer") {
        hints.push(Hint {
            code: "copy-back",
            message: "Host code dereferenced a device pointer. Copy results back with \
cudaMemcpy(..., cudaMemcpyDeviceToHost) before reading them."
                .to_string(),
        });
    }
    if msg.contains("barrier divergence") {
        hints.push(Hint {
            code: "barrier-divergence",
            message: "__syncthreads() ran while some threads of the block had branched away or \
returned. Every thread must reach every barrier: hoist the barrier out of the `if`."
                .to_string(),
        });
    }
    if msg.contains("direction says") {
        hints.push(Hint {
            code: "memcpy-direction",
            message: "The cudaMemcpy direction flag disagrees with the pointers you passed — \
check the argument order (dst, src, bytes, direction)."
                .to_string(),
        });
    }
    if err.phase == Phase::Limit {
        hints.push(Hint {
            code: "timeout",
            message: "Your program exceeded the lab's execution time limit. Look for a loop \
whose condition never becomes false — a missing stride update is the classic cause."
                .to_string(),
        });
    }
    if err.phase == Phase::Security {
        hints.push(Hint {
            code: "whitelist",
            message: "Your program called an API this lab does not allow. Stick to the calls \
shown in the lab description."
                .to_string(),
        });
    }
    if msg.contains("use after free") || msg.contains("double free") {
        hints.push(Hint {
            code: "lifetime",
            message: "A buffer was used after being freed (or freed twice). Free each \
allocation exactly once, after its last use."
                .to_string(),
        });
    }
    if hints.is_empty() {
        hints.push(Hint {
            code: "runtime-generic",
            message: format!("Runtime failure: {err}"),
        });
    }
    hints
}

fn mismatch_hints(check: &libwb::CheckReport, source: &str) -> Vec<Hint> {
    let mut hints = Vec::new();
    if let Some(shape) = &check.shape_error {
        if shape.contains("wbSolution") {
            hints.push(Hint {
                code: "no-solution",
                message: "Your program finished without calling wbSolution — submit your \
result buffer at the end of main."
                    .to_string(),
            });
            return hints;
        }
        hints.push(Hint {
            code: "shape",
            message: format!(
                "Your output has the wrong shape ({shape}). Check the dimensions you pass to \
wbSolution*."
            ),
        });
        return hints;
    }
    let frac = check.mismatch_count as f64 / check.total.max(1) as f64;
    if frac >= 0.999 {
        hints.push(Hint {
            code: "all-wrong",
            message: "Every value differs — the output buffer probably still holds its \
initial contents. Is the kernel writing to the buffer you copy back?"
                .to_string(),
        });
    } else if frac < 0.05 {
        hints.push(Hint {
            code: "edge-wrong",
            message: "Only a few values differ — usually the edges. Check boundary conditions: \
the first/last elements, the last partial tile, or sizes that are not multiples of the block."
                .to_string(),
        });
        if !source.contains("if") {
            hints.push(Hint {
                code: "no-guard",
                message: "Your kernel has no conditional at all: add a bounds guard like \
`if (i < n)`."
                    .to_string(),
            });
        }
    } else {
        hints.push(Hint {
            code: "many-wrong",
            message: format!(
                "{} of {} values differ. Compare your formula against the lab description on \
the first mismatching index shown in the report.",
                check.mismatch_count, check.total
            ),
        });
    }
    hints
}

fn cost_hints(cost: &CostSummary, source: &str) -> Vec<Hint> {
    let mut hints = Vec::new();
    // Coalescing smell: far fewer accesses per transaction than the
    // hardware can merge.
    if cost.global_transactions > 64 && cost.coalescing_ratio() < 4.0 {
        hints.push(Hint {
            code: "uncoalesced",
            message: format!(
                "Your global memory accesses average {:.1} useful values per 128-byte \
transaction (32 is ideal). Consecutive threads should touch consecutive addresses.",
                cost.coalescing_ratio()
            ),
        });
    }
    // Bank conflict smell.
    if cost.shared_accesses > 0 && cost.shared_conflicts > cost.shared_accesses * 4 {
        hints.push(Hint {
            code: "bank-conflicts",
            message: "Shared-memory bank conflicts are serializing your warps — pad the inner \
dimension of your tile (e.g. [TILE][TILE + 1])."
                .to_string(),
        });
    }
    // Tiling lab without shared memory.
    if source.contains("tileA") && !source.contains("__shared__") {
        hints.push(Hint {
            code: "missing-shared",
            message: "Your tile arrays are not in shared memory — declare them __shared__ or \
every thread keeps a private copy."
                .to_string(),
        });
    }
    hints
}

fn dedup(hints: Vec<Hint>) -> Vec<Hint> {
    let mut seen = std::collections::BTreeSet::new();
    hints.into_iter().filter(|h| seen.insert(h.code)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    use minicuda::DeviceConfig;
    use wb_labs::LabScale;
    use wb_worker::{execute_job, JobAction, JobRequest};

    fn grade(lab: &str, source: &str) -> (JobOutcome, String) {
        let lab = wb_labs::definition(lab, LabScale::Small).unwrap();
        let req = JobRequest {
            job_id: 1,
            user: "t".into(),
            source: source.to_string(),
            spec: lab.spec,
            datasets: lab.datasets,
            action: JobAction::FullGrade,
        };
        (
            execute_job(&req, &DeviceConfig::test_small(), 0, 0),
            source.to_string(),
        )
    }

    fn codes(outcome: &JobOutcome, source: &str) -> Vec<&'static str> {
        hints_for(outcome, source)
            .into_iter()
            .map(|h| h.code)
            .collect()
    }

    #[test]
    fn missing_guard_gets_bounds_hint() {
        let buggy = wb_labs::solution("vecadd").unwrap().replace(
            "if (i < n) { out[i] = a[i] + b[i]; }",
            "out[i] = a[i] + b[i];",
        );
        let (out, src) = grade("vecadd", &buggy);
        let c = codes(&out, &src);
        assert!(c.contains(&"bounds"), "{c:?}");
    }

    #[test]
    fn forgotten_memcpy_gets_memcpy_hint() {
        let buggy = wb_labs::solution("vecadd").unwrap().replace(
            "vecAdd<<<(n + 255) / 256, 256>>>(dA, dB, dC, n);",
            "vecAdd<<<(n + 255) / 256, 256>>>(hostA, hostB, dC, n);",
        );
        let (out, src) = grade("vecadd", &buggy);
        let c = codes(&out, &src);
        assert!(c.contains(&"memcpy-missing"), "{c:?}");
    }

    #[test]
    fn infinite_loop_gets_timeout_hint() {
        let src = r#"
            __global__ void spin() { int i = 0; while (i < 10) { i = i * 1; } }
            int main() { spin<<<1, 32>>>(); return 0; }
        "#;
        let lab = wb_labs::definition("vecadd", LabScale::Small).unwrap();
        let req = JobRequest {
            job_id: 1,
            user: "t".into(),
            source: src.to_string(),
            spec: wb_worker::LabSpec {
                limits: wb_sandbox::ResourceLimits::strict(),
                ..lab.spec
            },
            datasets: lab.datasets,
            action: JobAction::RunDataset(0),
        };
        let out = execute_job(&req, &DeviceConfig::test_small(), 0, 0);
        let c = codes(&out, src);
        assert!(c.contains(&"timeout"), "{c:?}");
    }

    #[test]
    fn blacklisted_code_gets_blacklist_hint() {
        let (out, src) = grade("vecadd", "int main() { asm(\"x\"); return 0; }");
        let c = codes(&out, &src);
        assert!(c.contains(&"blacklist"), "{c:?}");
    }

    #[test]
    fn missing_wbsolution_gets_no_solution_hint() {
        let (out, src) = grade("vecadd", "int main() { return 0; }");
        let c = codes(&out, &src);
        assert!(c.contains(&"no-solution"), "{c:?}");
    }

    #[test]
    fn wrong_everywhere_gets_all_wrong_hint() {
        let buggy = wb_labs::solution("vecadd")
            .unwrap()
            .replace("out[i] = a[i] + b[i];", "int unused = 0;");
        let (out, src) = grade("vecadd", &buggy);
        let c = codes(&out, &src);
        assert!(c.contains(&"all-wrong"), "{c:?}");
    }

    #[test]
    fn barrier_in_branch_gets_divergence_hint() {
        let src = r#"
            __global__ void k() { if (threadIdx.x < 8) { __syncthreads(); } }
            int main() { k<<<1, 32>>>(); return 0; }
        "#;
        let (out, s) = grade("vecadd", src);
        let c = codes(&out, &s);
        assert!(c.contains(&"barrier-divergence"), "{c:?}");
    }

    #[test]
    fn strided_access_gets_coalescing_hint() {
        // A deliberately strided copy over enough data to trip the
        // heuristic.
        let src = r#"
            __global__ void badCopy(float* a, float* b) {
                int t = blockIdx.x * blockDim.x + threadIdx.x;
                b[(t * 37) % 8192] = a[(t * 53) % 8192];
            }
            int main() {
                int n;
                float* hostA = wbImportVector(0, &n);
                float* dA; float* dB;
                cudaMalloc(&dA, 8192 * sizeof(float));
                cudaMalloc(&dB, 8192 * sizeof(float));
                badCopy<<<32, 128>>>(dA, dB);
                wbSolution(hostA, n);
                return 0;
            }
        "#;
        let (out, s) = grade("vecadd", src);
        let c = codes(&out, &s);
        assert!(c.contains(&"uncoalesced"), "{c:?}");
    }

    #[test]
    fn clean_solution_gets_no_hints() {
        let (out, src) = grade("vecadd", wb_labs::solution("vecadd").unwrap());
        assert!(hints_for(&out, &src).is_empty());
    }

    #[test]
    fn hints_are_deduplicated() {
        // Multiple failing datasets with the same cause produce the
        // bounds hint once.
        let buggy = wb_labs::solution("vecadd").unwrap().replace(
            "if (i < n) { out[i] = a[i] + b[i]; }",
            "out[i] = a[i] + b[i];",
        );
        let (out, src) = grade("vecadd", &buggy);
        let hints = hints_for(&out, &src);
        let bounds = hints.iter().filter(|h| h.code == "bounds").count();
        assert_eq!(bounds, 1);
    }
}
