//! Instructor-side lab definition and the grading rubric.
//!
//! §IV-E: a lab is a markdown description, a solution skeleton,
//! datasets, short-answer questions, and a configuration file with the
//! deadline and how to award points: *"Points are arbitrarily divided
//! among datasets, short-answer questions, presence of keywords, and
//! successful compilation."*

use serde::{Deserialize, Serialize};
use wb_worker::{DatasetCase, JobOutcome, LabSpec};

/// How points are awarded (§IV-E item 5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rubric {
    /// Points for a successful compilation.
    pub compile_points: f64,
    /// Points split evenly across passing datasets.
    pub dataset_points: f64,
    /// Points reserved for short-answer questions (instructor-graded).
    pub question_points: f64,
    /// Points for the presence of specific keywords in the source
    /// (e.g. `__shared__` in the tiling lab).
    pub keyword_points: Vec<(String, f64)>,
}

impl Default for Rubric {
    fn default() -> Self {
        Rubric {
            compile_points: 10.0,
            dataset_points: 80.0,
            question_points: 10.0,
            keyword_points: Vec::new(),
        }
    }
}

impl Rubric {
    /// Maximum attainable points.
    pub fn max_points(&self) -> f64 {
        self.compile_points
            + self.dataset_points
            + self.question_points
            + self.keyword_points.iter().map(|(_, p)| p).sum::<f64>()
    }

    /// Auto-gradable portion of the score: compilation, datasets, and
    /// keywords. Question points are added later by the instructor.
    pub fn auto_score(&self, outcome: &JobOutcome, source: &str) -> f64 {
        let mut score = 0.0;
        if outcome.compiled() {
            score += self.compile_points;
        } else {
            return 0.0;
        }
        let total = outcome.datasets.len();
        if total > 0 {
            let per = self.dataset_points / total as f64;
            score += per * outcome.passed_count() as f64;
        }
        for (kw, pts) in &self.keyword_points {
            if source.contains(kw) {
                score += pts;
            }
        }
        score
    }
}

/// A deployed lab (§IV-E).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LabDefinition {
    /// Catalog id (`vecadd`, `tiled-matmul`, …).
    pub id: String,
    /// Display title.
    pub title: String,
    /// Markdown manual (rendered by `markdown::render`).
    pub description_md: String,
    /// Starter code shown on first open.
    pub skeleton: String,
    /// Instructor datasets.
    pub datasets: Vec<DatasetCase>,
    /// Short-answer questions.
    pub questions: Vec<String>,
    /// Toolchain/sandbox/limits configuration.
    pub spec: LabSpec,
    /// Rubric.
    pub rubric: Rubric,
    /// Deadline, virtual ms since course start.
    pub deadline_ms: u64,
}

impl LabDefinition {
    /// A minimal test lab with one identity dataset.
    pub fn test_lab(id: &str) -> Self {
        use libwb::Dataset;
        LabDefinition {
            id: id.to_string(),
            title: format!("Test lab {id}"),
            description_md: "# Test\n\nEcho the input.".to_string(),
            skeleton: "int main() {\n    // your code here\n    return 0;\n}\n".to_string(),
            datasets: vec![DatasetCase {
                name: "d0".into(),
                inputs: vec![Dataset::Vector(vec![1.0, 2.0, 3.0])],
                expected: Dataset::Vector(vec![1.0, 2.0, 3.0]),
            }],
            questions: vec!["Why is the sky blue?".to_string()],
            spec: LabSpec::cuda_test(id),
            rubric: Rubric::default(),
            deadline_ms: 7 * 24 * 3600 * 1000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minicuda::CostSummary;
    use wb_worker::job::DatasetOutcome;

    fn outcome(compiled: bool, passes: &[bool]) -> JobOutcome {
        JobOutcome {
            job_id: 1,
            worker_id: 1,
            compile_error: if compiled { None } else { Some("boom".into()) },
            datasets: passes
                .iter()
                .map(|&p| DatasetOutcome {
                    name: "d".into(),
                    check: Some(libwb::check::compare(
                        &libwb::Dataset::Scalar(if p { 1.0 } else { 2.0 }),
                        &libwb::Dataset::Scalar(1.0),
                        &libwb::CheckPolicy::exact(),
                    )),
                    error: None,
                    cost: CostSummary::default(),
                    elapsed_cycles: 0,
                    log_text: String::new(),
                    timing_text: String::new(),
                })
                .collect(),
            analysis: Vec::new(),
            container_wait_ms: 0,
        }
    }

    #[test]
    fn full_marks_for_perfect_run() {
        let r = Rubric::default();
        let o = outcome(true, &[true, true]);
        assert!((r.auto_score(&o, "code") - 90.0).abs() < 1e-9);
        assert!((r.max_points() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn partial_dataset_credit() {
        let r = Rubric::default();
        let o = outcome(true, &[true, false, true, false]);
        // 10 compile + 2/4 of 80 = 50.
        assert!((r.auto_score(&o, "") - 50.0).abs() < 1e-9);
    }

    #[test]
    fn compile_failure_scores_zero() {
        let r = Rubric::default();
        let o = outcome(false, &[]);
        assert_eq!(r.auto_score(&o, ""), 0.0);
    }

    #[test]
    fn keyword_points_awarded() {
        let r = Rubric {
            keyword_points: vec![("__shared__".to_string(), 5.0)],
            ..Rubric::default()
        };
        let o = outcome(true, &[true]);
        let with = r.auto_score(&o, "__shared__ float tile[16];");
        let without = r.auto_score(&o, "float tile[16];");
        assert!((with - without - 5.0).abs() < 1e-9);
        assert!((r.max_points() - 105.0).abs() < 1e-9);
    }

    #[test]
    fn test_lab_is_consistent() {
        let lab = LabDefinition::test_lab("x");
        assert_eq!(lab.id, "x");
        assert_eq!(lab.datasets.len(), 1);
        assert_eq!(lab.questions.len(), 1);
    }
}
