//! `wb-server` — the WebGPU web tier.
//!
//! §III-A: *"The web-server generates the site's HTML code and handles
//! user requests. … It automatically saves all student code, and their
//! compilation and execution status, and previous attempts. … Finally,
//! the web-server acts as an intermediary, dispatching jobs to a node
//! in the pool of workers and relaying the results \[to\] users."*
//!
//! Modules:
//!
//! * [`api`] — the typed submission surface: [`SubmitRequest`],
//!   [`SubmissionOutcome`], and the unified [`WbError`] taxonomy shared
//!   by the server and both cluster generations;
//! * [`server`] — the six student actions (§IV-A), instructor tools and
//!   roster (§IV-F), behind a [`server::JobDispatcher`] abstraction so
//!   the same logic runs on the v1 push cluster, the v2 queue cluster,
//!   or a local worker;
//! * [`lab`] — lab definitions and the grading rubric (§IV-E);
//! * [`markdown`] — the lab-description renderer;
//! * [`session`] — accounts and bearer-token sessions;
//! * [`ratelimit`] — the per-lab submission rate limit (§III-C);
//! * [`peer`] — peer-review assignment and the starvation statistics
//!   that led to the feature's removal (§IV-D);
//! * [`edx`] — the WebGPU 2.0 OpenEdx adapter over the message broker
//!   and blob store (§VI-A);
//! * [`state`] — record types and the database schema.

pub mod api;
pub mod edx;
pub mod gradebook;
pub mod hints;
pub mod lab;
pub mod markdown;
pub mod peer;
pub mod ratelimit;
pub mod server;
pub mod session;
pub mod state;

pub use api::{SubmissionOutcome, SubmitAction, SubmitRequest, WbError};
pub use edx::EdxFrontend;
pub use gradebook::{CourseraGradebook, ExternalGradebook, GradePost};
pub use hints::{hints_for, Hint};
pub use lab::{LabDefinition, Rubric};
pub use ratelimit::{RateLimit, RateLimiter};
pub use server::{JobDispatcher, LocalDispatcher, RosterRow, WebGpuServer};
pub use session::{AuthError, Session, Sessions};
pub use state::{DeviceKind, Role, ServerState};
