//! Markdown renderer for lab descriptions.
//!
//! §IV-E: *"Lab Description: a file in markdown format. This
//! description can include any text, images, and external links that
//! are desired."* The renderer covers the subset lab manuals use:
//! ATX headings, paragraphs, fenced code blocks, inline code, bold,
//! italics, unordered/ordered lists, links, and images. Output is
//! HTML with all source text entity-escaped (lab descriptions are
//! instructor-authored, but escaping is still the right default —
//! student-visible pages must never become an injection channel).

/// Render markdown to HTML.
pub fn render(md: &str) -> String {
    let mut out = String::with_capacity(md.len() * 2);
    let lines: Vec<&str> = md.lines().collect();
    let mut i = 0;
    while i < lines.len() {
        let line = lines[i];
        let trimmed = line.trim_end();
        if trimmed.trim().is_empty() {
            i += 1;
            continue;
        }
        // Fenced code block.
        if let Some(lang) = trimmed.strip_prefix("```") {
            let lang = lang.trim();
            let mut body = String::new();
            i += 1;
            while i < lines.len() && !lines[i].trim_end().starts_with("```") {
                body.push_str(&escape(lines[i]));
                body.push('\n');
                i += 1;
            }
            i += 1; // closing fence
            if lang.is_empty() {
                out.push_str(&format!("<pre><code>{body}</code></pre>\n"));
            } else {
                out.push_str(&format!(
                    "<pre><code class=\"language-{}\">{body}</code></pre>\n",
                    escape(lang)
                ));
            }
            continue;
        }
        // Headings.
        if let Some(rest) = heading(trimmed) {
            let (level, text) = rest;
            out.push_str(&format!("<h{level}>{}</h{level}>\n", inline(text)));
            i += 1;
            continue;
        }
        // Unordered list.
        if is_ul_item(trimmed) {
            out.push_str("<ul>\n");
            while i < lines.len() && is_ul_item(lines[i].trim_end()) {
                let item = lines[i].trim_start()[2..].trim_start();
                out.push_str(&format!("<li>{}</li>\n", inline(item)));
                i += 1;
            }
            out.push_str("</ul>\n");
            continue;
        }
        // Ordered list.
        if ol_item(trimmed).is_some() {
            out.push_str("<ol>\n");
            while i < lines.len() {
                match ol_item(lines[i].trim_end()) {
                    Some(item) => {
                        out.push_str(&format!("<li>{}</li>\n", inline(item)));
                        i += 1;
                    }
                    None => break,
                }
            }
            out.push_str("</ol>\n");
            continue;
        }
        // Paragraph: collect until a blank line or a block start.
        let mut para = String::new();
        while i < lines.len() {
            let l = lines[i].trim_end();
            if l.trim().is_empty()
                || heading(l).is_some()
                || l.starts_with("```")
                || is_ul_item(l)
                || ol_item(l).is_some()
            {
                break;
            }
            if !para.is_empty() {
                para.push(' ');
            }
            para.push_str(l.trim());
            i += 1;
        }
        out.push_str(&format!("<p>{}</p>\n", inline(&para)));
    }
    out
}

fn heading(line: &str) -> Option<(usize, &str)> {
    let hashes = line.chars().take_while(|&c| c == '#').count();
    if (1..=6).contains(&hashes) && line.chars().nth(hashes) == Some(' ') {
        Some((hashes, line[hashes + 1..].trim()))
    } else {
        None
    }
}

fn is_ul_item(line: &str) -> bool {
    let t = line.trim_start();
    t.starts_with("- ") || t.starts_with("* ")
}

fn ol_item(line: &str) -> Option<&str> {
    let t = line.trim_start();
    let digits = t.chars().take_while(char::is_ascii_digit).count();
    if digits == 0 {
        return None;
    }
    let rest = &t[digits..];
    rest.strip_prefix(". ").map(str::trim_start)
}

/// Inline spans: images, links, code, bold, italics — processed over
/// escaped text with placeholders to avoid double-processing.
fn inline(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let rest = &text[i..];
        // Inline code: literal until the closing backtick.
        if bytes[i] == b'`' {
            if let Some(end) = rest[1..].find('`') {
                out.push_str(&format!("<code>{}</code>", escape(&rest[1..1 + end])));
                i += end + 2;
                continue;
            }
        }
        // Image: ![alt](url)
        if rest.starts_with("![") {
            if let Some((alt, url, len)) = bracket_pair(&rest[1..]) {
                out.push_str(&format!(
                    "<img src=\"{}\" alt=\"{}\">",
                    escape(url),
                    escape(alt)
                ));
                i += 1 + len;
                continue;
            }
        }
        // Link: [text](url)
        if bytes[i] == b'[' {
            if let Some((label, url, len)) = bracket_pair(rest) {
                out.push_str(&format!(
                    "<a href=\"{}\">{}</a>",
                    escape(url),
                    inline(label)
                ));
                i += len;
                continue;
            }
        }
        // Bold. Empty emphasis (`****`, or a lone `**` that would
        // match zero characters) is treated as literal text.
        if let Some(body) = rest.strip_prefix("**") {
            if let Some(end) = body.find("**") {
                if end > 0 {
                    out.push_str(&format!("<strong>{}</strong>", inline(&body[..end])));
                    i += end + 4;
                    continue;
                }
            }
        }
        // Italic.
        if bytes[i] == b'*' {
            if let Some(end) = rest[1..].find('*') {
                if end > 0 {
                    out.push_str(&format!("<em>{}</em>", inline(&rest[1..1 + end])));
                    i += end + 2;
                    continue;
                }
            }
        }
        let c = text[i..].chars().next().expect("in bounds");
        out.push_str(&escape_char(c));
        i += c.len_utf8();
    }
    out
}

/// Parse `[a](b)` returning (a, b, consumed length).
fn bracket_pair(s: &str) -> Option<(&str, &str, usize)> {
    if !s.starts_with('[') {
        return None;
    }
    let close = s.find(']')?;
    let after = &s[close + 1..];
    if !after.starts_with('(') {
        return None;
    }
    let url_end = after.find(')')?;
    Some((&s[1..close], &after[1..url_end], close + 1 + url_end + 1))
}

fn escape(s: &str) -> String {
    s.chars().map(escape_char).collect()
}

fn escape_char(c: char) -> String {
    match c {
        '&' => "&amp;".to_string(),
        '<' => "&lt;".to_string(),
        '>' => "&gt;".to_string(),
        '"' => "&quot;".to_string(),
        other => other.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headings_render() {
        assert_eq!(render("# Vector Addition"), "<h1>Vector Addition</h1>\n");
        assert_eq!(render("### Objective"), "<h3>Objective</h3>\n");
        // Not a heading without the space.
        assert!(render("#nope").contains("<p>#nope</p>"));
    }

    #[test]
    fn paragraphs_join_lines() {
        let html = render("first line\nsecond line\n\nnew para\n");
        assert!(html.contains("<p>first line second line</p>"));
        assert!(html.contains("<p>new para</p>"));
    }

    #[test]
    fn code_blocks_escape_contents() {
        let html = render("```c\nif (i < n) { c[i] = a[i]; }\n```\n");
        assert!(html.contains("class=\"language-c\""));
        assert!(html.contains("i &lt; n"));
        assert!(!html.contains("<p>"));
    }

    #[test]
    fn inline_code_and_bold_italic() {
        let html = render("Use `cudaMalloc` with **care** and *style*.");
        assert!(html.contains("<code>cudaMalloc</code>"));
        assert!(html.contains("<strong>care</strong>"));
        assert!(html.contains("<em>style</em>"));
    }

    #[test]
    fn lists_render() {
        let html = render("- one\n- two\n");
        assert_eq!(html, "<ul>\n<li>one</li>\n<li>two</li>\n</ul>\n");
        let html = render("1. first\n2. second\n");
        assert_eq!(html, "<ol>\n<li>first</li>\n<li>second</li>\n</ol>\n");
    }

    #[test]
    fn links_and_images() {
        let html = render("[libwb](https://github.com/abduld/libwb)");
        assert!(html.contains("<a href=\"https://github.com/abduld/libwb\">libwb</a>"));
        let html = render("![tiling](fig/tile.png)");
        assert!(html.contains("<img src=\"fig/tile.png\" alt=\"tiling\">"));
    }

    #[test]
    fn html_is_escaped() {
        let html = render("<script>alert(1)</script>");
        assert!(!html.contains("<script>"));
        assert!(html.contains("&lt;script&gt;"));
    }

    #[test]
    fn unterminated_markers_fall_through_literally() {
        let html = render("a ** b");
        assert!(html.contains("a ** b") || html.contains("**"));
        let html = render("a ` b");
        assert!(html.contains('`'));
    }

    #[test]
    fn mixed_document() {
        let md = "# Lab 1\n\nWrite a **vector add** kernel.\n\n## Steps\n\n1. allocate\n2. copy\n\n```c\nint i;\n```\n";
        let html = render(md);
        assert!(html.contains("<h1>Lab 1</h1>"));
        assert!(html.contains("<h2>Steps</h2>"));
        assert!(html.contains("<ol>"));
        assert!(html.contains("<pre><code"));
    }

    #[test]
    fn code_inside_list_item() {
        let html = render("- call `wbSolution` last\n");
        assert!(html.contains("<li>call <code>wbSolution</code> last</li>"));
    }
}
