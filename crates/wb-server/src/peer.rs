//! Peer review (§IV-D).
//!
//! *"each student was assigned three other random students' labs with
//! 10% of the lab's grade given to the completion of the peer reviews.
//! … The high drop rate at the beginning of the course caused low
//! probability of an active student being assigned an active peer
//! reviewer"* — the weight was cut to 5% and the feature was phased
//! out. This module implements the random assignment and the
//! received-review statistics that motivated the removal, which the
//! `peer_review` experiment sweeps over dropout rates.

use crate::state::{PeerReviewRec, ServerState};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Assign each student `k` random peers to review (never themselves,
/// never the same peer twice). Deterministic given the seed.
///
/// The classic round-robin-over-a-shuffle construction guarantees every
/// student also *receives* exactly `k` assignments — the inequity the
/// paper observed comes from reviewers dropping out, not from the
/// assignment itself.
pub fn assign_reviews(
    state: &ServerState,
    lab: &str,
    students: &[String],
    k: usize,
    seed: u64,
) -> Vec<u64> {
    assert!(
        k < students.len().max(1),
        "cannot assign {k} reviews among {} students",
        students.len()
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<&String> = students.iter().collect();
    order.shuffle(&mut rng);
    let n = order.len();
    let mut ids = Vec::new();
    for offset in 1..=k {
        for i in 0..n {
            let reviewer = order[i].clone();
            let reviewee = order[(i + offset) % n].clone();
            let id = state
                .peer_reviews
                .insert(&PeerReviewRec {
                    lab: lab.to_string(),
                    reviewer,
                    reviewee,
                    review: None,
                })
                .expect("insert review");
            ids.push(id);
        }
    }
    ids
}

/// Record a completed review; returns false when no matching
/// assignment exists.
pub fn complete_review(
    state: &ServerState,
    lab: &str,
    reviewer: &str,
    reviewee: &str,
    text: &str,
) -> bool {
    let key = format!("{reviewer}/{lab}");
    let Ok(ids) = state.peer_reviews.find("by_reviewer_lab", &key) else {
        return false;
    };
    for id in ids {
        if let Ok(mut rec) = state.peer_reviews.get(id) {
            if rec.reviewee == reviewee && rec.review.is_none() {
                rec.review = Some(text.to_string());
                return state.peer_reviews.update(id, &rec).is_ok();
            }
        }
    }
    false
}

/// Peer-review completion credit for one student: the fraction of their
/// assigned reviews they completed (the auto-gradable 10%/5%).
pub fn completion_fraction(state: &ServerState, lab: &str, reviewer: &str) -> f64 {
    let key = format!("{reviewer}/{lab}");
    let ids = state
        .peer_reviews
        .find("by_reviewer_lab", &key)
        .unwrap_or_default();
    if ids.is_empty() {
        return 0.0;
    }
    let done = ids
        .iter()
        .filter(|&&id| {
            state
                .peer_reviews
                .get(id)
                .map(|r| r.review.is_some())
                .unwrap_or(false)
        })
        .count();
    done as f64 / ids.len() as f64
}

/// The statistic that killed the feature: among `active` students, the
/// fraction who received at least one completed review, assuming only
/// active students write reviews.
pub fn received_review_fraction(state: &ServerState, lab: &str, active: &[String]) -> f64 {
    if active.is_empty() {
        return 0.0;
    }
    let got = active
        .iter()
        .filter(|student| {
            let key = format!("{student}/{lab}");
            state
                .peer_reviews
                .find("by_reviewee_lab", &key)
                .unwrap_or_default()
                .iter()
                .any(|&id| {
                    state
                        .peer_reviews
                        .get(id)
                        .map(|r| r.review.is_some())
                        .unwrap_or(false)
                })
        })
        .count();
    got as f64 / active.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn students(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("s{i}")).collect()
    }

    #[test]
    fn everyone_gives_and_receives_k() {
        let st = ServerState::new();
        let names = students(10);
        assign_reviews(&st, "lab1", &names, 3, 42);
        for s in &names {
            let gives = st
                .peer_reviews
                .find("by_reviewer_lab", &format!("{s}/lab1"))
                .unwrap()
                .len();
            let gets = st
                .peer_reviews
                .find("by_reviewee_lab", &format!("{s}/lab1"))
                .unwrap()
                .len();
            assert_eq!(gives, 3);
            assert_eq!(gets, 3);
        }
    }

    #[test]
    fn no_self_review_and_no_duplicates() {
        let st = ServerState::new();
        let names = students(7);
        assign_reviews(&st, "lab1", &names, 3, 1);
        for s in &names {
            let ids = st
                .peer_reviews
                .find("by_reviewer_lab", &format!("{s}/lab1"))
                .unwrap();
            let mut seen = std::collections::HashSet::new();
            for id in ids {
                let r = st.peer_reviews.get(id).unwrap();
                assert_ne!(&r.reviewee, s, "no self review");
                assert!(seen.insert(r.reviewee.clone()), "no duplicate reviewee");
            }
        }
    }

    #[test]
    fn assignment_is_deterministic_per_seed() {
        let st1 = ServerState::new();
        let st2 = ServerState::new();
        let names = students(6);
        assign_reviews(&st1, "l", &names, 2, 9);
        assign_reviews(&st2, "l", &names, 2, 9);
        let a: Vec<_> = st1
            .peer_reviews
            .scan()
            .into_iter()
            .map(|(_, r)| r)
            .collect();
        let b: Vec<_> = st2
            .peer_reviews
            .scan()
            .into_iter()
            .map(|(_, r)| r)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    fn too_many_reviews_for_cohort_panics() {
        let st = ServerState::new();
        let names = students(3);
        assign_reviews(&st, "l", &names, 3, 0);
    }

    #[test]
    fn completion_tracking() {
        let st = ServerState::new();
        let names = students(4);
        assign_reviews(&st, "l", &names, 2, 5);
        assert_eq!(completion_fraction(&st, "l", "s0"), 0.0);
        // Complete one of s0's two reviews.
        let ids = st.peer_reviews.find("by_reviewer_lab", "s0/l").unwrap();
        let target = st.peer_reviews.get(ids[0]).unwrap().reviewee;
        assert!(complete_review(&st, "l", "s0", &target, "nice tiling"));
        assert!((completion_fraction(&st, "l", "s0") - 0.5).abs() < 1e-9);
        // Completing the same one twice fails.
        assert!(!complete_review(&st, "l", "s0", &target, "again"));
        // Unknown assignment fails.
        assert!(!complete_review(&st, "l", "s0", "s0", "self"));
    }

    #[test]
    fn dropout_starves_active_students() {
        // 20 students assigned, but only 5 stay active and write
        // reviews — exactly the paper's complaint.
        let st = ServerState::new();
        let names = students(20);
        assign_reviews(&st, "l", &names, 3, 7);
        let active: Vec<String> = names[..5].to_vec();
        // Active students complete all their reviews.
        for s in &active {
            let ids = st
                .peer_reviews
                .find("by_reviewer_lab", &format!("{s}/l"))
                .unwrap();
            for id in ids {
                let r = st.peer_reviews.get(id).unwrap();
                complete_review(&st, "l", s, &r.reviewee, "done");
            }
        }
        let frac = received_review_fraction(&st, "l", &active);
        // With 25% of the cohort active, most active students get no
        // review from an active reviewer.
        assert!(
            frac < 1.0,
            "starvation should leave some active students unreviewed (got {frac})"
        );
        // The statistic is 0 for an empty active set.
        assert_eq!(received_review_fraction(&st, "l", &[]), 0.0);
    }
}
