//! Submission rate limiting.
//!
//! §III-C: *"To maintain fairness, time limits are placed on the
//! submission rate…"* — a per-user token bucket over virtual time,
//! configured per lab.

use crate::api::WbError;
use parking_lot::Mutex;
use std::collections::HashMap;

/// Token-bucket configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateLimit {
    /// Maximum burst (bucket capacity).
    pub burst: f64,
    /// Refill rate in tokens per virtual second.
    pub per_second: f64,
}

impl Default for RateLimit {
    fn default() -> Self {
        // One submission every 15 s sustained, bursts of 3 — matches
        // the "don't spam the run button" intent.
        RateLimit {
            burst: 3.0,
            per_second: 1.0 / 15.0,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Bucket {
    tokens: f64,
    updated_ms: u64,
}

/// Per-key (user/lab) rate limiter.
pub struct RateLimiter {
    limit: RateLimit,
    buckets: Mutex<HashMap<String, Bucket>>,
}

impl RateLimiter {
    /// Build with a limit.
    pub fn new(limit: RateLimit) -> Self {
        RateLimiter {
            limit,
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// Try to consume one token for `key` at virtual time `now_ms`.
    /// Returns `Ok(())` or [`WbError::RateLimited`] carrying the
    /// seconds until the next token.
    pub fn check(&self, key: &str, now_ms: u64) -> Result<(), WbError> {
        let mut g = self.buckets.lock();
        let b = g.entry(key.to_string()).or_insert(Bucket {
            tokens: self.limit.burst,
            updated_ms: now_ms,
        });
        let elapsed_s = (now_ms.saturating_sub(b.updated_ms)) as f64 / 1000.0;
        b.tokens = (b.tokens + elapsed_s * self.limit.per_second).min(self.limit.burst);
        b.updated_ms = now_ms;
        if b.tokens >= 1.0 {
            b.tokens -= 1.0;
            Ok(())
        } else {
            Err(WbError::RateLimited {
                retry_after_s: (1.0 - b.tokens) / self.limit.per_second,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_blocked() {
        let rl = RateLimiter::new(RateLimit {
            burst: 2.0,
            per_second: 0.1,
        });
        assert!(rl.check("alice/vecadd", 0).is_ok());
        assert!(rl.check("alice/vecadd", 1).is_ok());
        let WbError::RateLimited { retry_after_s } = rl.check("alice/vecadd", 2).unwrap_err()
        else {
            panic!("expected a rate-limit error");
        };
        assert!(retry_after_s > 0.0 && retry_after_s <= 10.0);
    }

    #[test]
    fn refills_over_time() {
        let rl = RateLimiter::new(RateLimit {
            burst: 1.0,
            per_second: 1.0, // 1 token per second
        });
        assert!(rl.check("k", 0).is_ok());
        assert!(rl.check("k", 100).is_err(), "only 0.1 tokens back");
        assert!(rl.check("k", 1100).is_ok(), "refilled after 1s");
    }

    #[test]
    fn keys_are_independent() {
        let rl = RateLimiter::new(RateLimit {
            burst: 1.0,
            per_second: 0.01,
        });
        assert!(rl.check("alice/l1", 0).is_ok());
        assert!(rl.check("bob/l1", 0).is_ok());
        assert!(rl.check("alice/l2", 0).is_ok());
        assert!(rl.check("alice/l1", 1).is_err());
    }

    #[test]
    fn bucket_never_exceeds_burst() {
        let rl = RateLimiter::new(RateLimit {
            burst: 2.0,
            per_second: 100.0,
        });
        assert!(rl.check("k", 0).is_ok());
        // Huge idle time: capacity still caps at burst = 2.
        assert!(rl.check("k", 10_000_000).is_ok());
        assert!(rl.check("k", 10_000_000).is_ok());
        assert!(rl.check("k", 10_000_000).is_err());
    }
}
