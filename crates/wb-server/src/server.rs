//! The WebGPU web server: the six student actions, instructor tools,
//! and the roster — everything of §IV that runs on the web tier.
//!
//! Job execution is behind the [`JobDispatcher`] trait so the same
//! server logic runs on the v1 push cluster, the v2 queue cluster, or a
//! single in-process worker (tests). Submissions of every kind go
//! through one typed entry point, [`WebGpuServer::submit`], which
//! returns a [`SubmissionOutcome`] or a [`WbError`] and records the
//! attempt in the per-course metrics of a shared [`Recorder`].

use crate::api::{SubmissionOutcome, SubmitAction, SubmitRequest, WbError};
use crate::lab::LabDefinition;
use crate::markdown;
use crate::ratelimit::{RateLimit, RateLimiter};
use crate::session::Sessions;
use crate::state::{
    AnswerRec, AttemptRec, DeviceKind, RevisionRec, Role, ServerState, SubmissionRec,
};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use wb_obs::{Counter, MetricsSnapshot, Recorder};
use wb_worker::{JobAction, JobOutcome, JobRequest};

/// Abstract job execution backend.
///
/// Two execution styles share the trait. [`dispatch`] is the
/// interactive path: run the job and block until its outcome is in
/// hand. The queued trio — [`submit_queued`] / [`advance`] /
/// [`poll_queued`] — is the throughput path the semester replay
/// drives: admission happens at submit time, execution happens in
/// pumped rounds, and outcomes are collected when they surface.
/// Backends without a queue keep the defaults and remain plain
/// synchronous dispatchers.
///
/// [`dispatch`]: JobDispatcher::dispatch
/// [`submit_queued`]: JobDispatcher::submit_queued
/// [`advance`]: JobDispatcher::advance
/// [`poll_queued`]: JobDispatcher::poll_queued
pub trait JobDispatcher: Send + Sync {
    /// Execute a job somewhere, synchronously from the caller's view.
    /// Backend failures come back as [`WbError::Infra`]; the student's
    /// own compile/runtime failures are *not* errors at this layer —
    /// they ride inside the [`JobOutcome`].
    fn dispatch(&self, req: JobRequest, now_ms: u64) -> Result<JobOutcome, WbError>;

    /// Offer a job through the backend's admission control without
    /// waiting for execution; `Ok(job_id)` when queued,
    /// [`WbError::Overloaded`] when shed.
    fn submit_queued(&self, _req: JobRequest, _now_ms: u64) -> Result<u64, WbError> {
        Err(WbError::infra("this dispatcher has no queued path"))
    }

    /// Take the outcome of a previously queued job, if it finished.
    fn poll_queued(&self, _job_id: u64) -> Option<JobOutcome> {
        None
    }

    /// Drive queued work one scheduling round; returns jobs completed
    /// this round.
    fn advance(&self, _now_ms: u64) -> usize {
        0
    }
}

/// Dispatchers pass through `Arc` unchanged, so a cluster can be
/// shared between a [`WebGpuServer`] and a harness that reads its
/// gauges directly.
impl<D: JobDispatcher + ?Sized> JobDispatcher for Arc<D> {
    fn dispatch(&self, req: JobRequest, now_ms: u64) -> Result<JobOutcome, WbError> {
        (**self).dispatch(req, now_ms)
    }

    fn submit_queued(&self, req: JobRequest, now_ms: u64) -> Result<u64, WbError> {
        (**self).submit_queued(req, now_ms)
    }

    fn poll_queued(&self, job_id: u64) -> Option<JobOutcome> {
        (**self).poll_queued(job_id)
    }

    fn advance(&self, now_ms: u64) -> usize {
        (**self).advance(now_ms)
    }
}

/// A dispatcher running jobs on one in-process worker node (used by
/// tests and the quickstart example).
pub struct LocalDispatcher {
    node: wb_worker::WorkerNode,
    /// Outcomes of queued jobs. The single local node executes at
    /// submit time, so "queued" work is already done and merely waits
    /// to be polled — which is exactly what server-level tests of the
    /// queued path need.
    done: parking_lot::Mutex<HashMap<u64, JobOutcome>>,
}

impl Default for LocalDispatcher {
    fn default() -> Self {
        Self::new()
    }
}

impl LocalDispatcher {
    /// A single small deterministic worker.
    pub fn new() -> Self {
        LocalDispatcher {
            node: wb_worker::WorkerNode::boot(
                1,
                minicuda::DeviceConfig::test_small(),
                &wb_worker::WorkerConfig::default(),
            ),
            done: parking_lot::Mutex::new(HashMap::new()),
        }
    }

    /// A single worker reporting to a shared recorder.
    pub fn traced(obs: Arc<Recorder>) -> Self {
        LocalDispatcher {
            node: wb_worker::WorkerNode::launch(
                1,
                &wb_worker::NodeConfig {
                    obs,
                    ..wb_worker::NodeConfig::new(minicuda::DeviceConfig::test_small())
                },
            ),
            done: parking_lot::Mutex::new(HashMap::new()),
        }
    }
}

impl JobDispatcher for LocalDispatcher {
    fn dispatch(&self, req: JobRequest, now_ms: u64) -> Result<JobOutcome, WbError> {
        self.node
            .submit(&req, now_ms)
            .ok_or_else(|| WbError::infra("worker unavailable"))
    }

    fn submit_queued(&self, req: JobRequest, now_ms: u64) -> Result<u64, WbError> {
        let job_id = req.job_id;
        let outcome = self.dispatch(req, now_ms)?;
        self.done.lock().insert(job_id, outcome);
        Ok(job_id)
    }

    fn poll_queued(&self, job_id: u64) -> Option<JobOutcome> {
        self.done.lock().remove(&job_id)
    }
}

/// One row of the instructor roster view (§IV-F, Fig. 5).
#[derive(Debug, Clone, PartialEq)]
pub struct RosterRow {
    /// Student name.
    pub user: String,
    /// Student email.
    pub email: String,
    /// Number of graded submissions for the lab.
    pub submissions: usize,
    /// Best effective program score.
    pub program_grade: f64,
    /// Instructor-assigned question grade (0 until graded).
    pub question_grade: f64,
    /// Program + question.
    pub total_grade: f64,
    /// Virtual ms of the latest submission.
    pub last_submission_ms: Option<u64>,
}

/// The WebGPU web server.
pub struct WebGpuServer {
    /// Database tables.
    pub state: ServerState,
    /// Session manager.
    pub sessions: Sessions,
    labs: RwLock<HashMap<String, LabDefinition>>,
    dispatcher: Box<dyn JobDispatcher>,
    limiter: RateLimiter,
    obs: Arc<Recorder>,
    next_job: AtomicU64,
    next_share: AtomicU64,
    /// Submissions queued on the dispatcher whose outcomes have not
    /// been reaped yet, keyed by job id.
    pending: parking_lot::Mutex<HashMap<u64, PendingSubmission>>,
}

/// Everything [`WebGpuServer::reap_queued`] needs to finish a
/// submission's record-keeping once its outcome surfaces.
struct PendingSubmission {
    user: String,
    lab: String,
    action: SubmitAction,
    at_ms: u64,
    source: String,
}

fn db_err(e: impl std::fmt::Display) -> WbError {
    WbError::infra(e.to_string())
}

impl WebGpuServer {
    /// Build a server over a dispatcher (recording disabled).
    pub fn new(dispatcher: Box<dyn JobDispatcher>) -> Self {
        Self::new_traced(dispatcher, Arc::new(Recorder::noop()))
    }

    /// Build a server whose attempt/rate-limit counters land in a
    /// shared recorder. Pass the same `Arc` to the cluster so queue,
    /// worker, and web-tier metrics compose into one snapshot.
    pub fn new_traced(dispatcher: Box<dyn JobDispatcher>, obs: Arc<Recorder>) -> Self {
        WebGpuServer {
            state: ServerState::new(),
            sessions: Sessions::new(),
            labs: RwLock::new(HashMap::new()),
            dispatcher,
            limiter: RateLimiter::new(RateLimit::default()),
            obs,
            next_job: AtomicU64::new(1),
            next_share: AtomicU64::new(1),
            pending: parking_lot::Mutex::new(HashMap::new()),
        }
    }

    /// Replace the default per-student submission rate limit (burst 3,
    /// one token per 15 s).
    pub fn with_rate_limit(mut self, limit: RateLimit) -> Self {
        self.limiter = RateLimiter::new(limit);
        self
    }

    /// Current metrics: counters, latency percentiles, per-course
    /// attempt tallies, recent events — the queryable snapshot the
    /// operations dashboard renders.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.obs.snapshot()
    }

    // ---- lab management (instructor, §IV-E) ---------------------------

    /// Deploy a lab. Unlike the rest of the instructor tools, the paper
    /// notes lab creation is a developer-level operation; here it is a
    /// server API guarded by the instructor role.
    pub fn deploy_lab(&self, token: u64, lab: LabDefinition) -> Result<(), WbError> {
        self.sessions.authenticate_instructor(token)?;
        self.labs.write().insert(lab.id.clone(), lab);
        Ok(())
    }

    /// Lab ids currently deployed.
    pub fn lab_ids(&self) -> Vec<String> {
        let mut v: Vec<String> = self.labs.read().keys().cloned().collect();
        v.sort();
        v
    }

    fn lab(&self, id: &str) -> Result<LabDefinition, WbError> {
        self.labs
            .read()
            .get(id)
            .cloned()
            .ok_or_else(|| WbError::rejected(format!("no lab named {id:?}")))
    }

    /// The rendered lab manual + rubric shown to students (§IV-B 1).
    pub fn lab_description_html(&self, lab_id: &str) -> Result<String, WbError> {
        let lab = self.lab(lab_id)?;
        let mut html = markdown::render(&lab.description_md);
        html.push_str(&format!(
            "<h2>Grading</h2>\n<p>Compilation: {} points. Datasets: {} points. Questions: {} points.</p>\n",
            lab.rubric.compile_points, lab.rubric.dataset_points, lab.rubric.question_points
        ));
        Ok(html)
    }

    /// The skeleton code a student sees on first open (§IV-B 2).
    pub fn lab_skeleton(&self, lab_id: &str) -> Result<String, WbError> {
        Ok(self.lab(lab_id)?.skeleton)
    }

    // ---- student actions (§IV-A) ----------------------------------------

    /// Action 1 — the editor autosaves code.
    pub fn save_code(
        &self,
        token: u64,
        lab_id: &str,
        source: &str,
        now_ms: u64,
    ) -> Result<u64, WbError> {
        let s = self.sessions.authenticate(token)?;
        self.lab(lab_id)?;
        self.state
            .revisions
            .insert(&RevisionRec {
                user: s.user,
                lab: lab_id.to_string(),
                at_ms: now_ms,
                source: source.to_string(),
            })
            .map_err(db_err)
    }

    /// The student's latest saved code, or the skeleton.
    pub fn current_code(&self, token: u64, lab_id: &str) -> Result<String, WbError> {
        let s = self.sessions.authenticate(token)?;
        let ids = self
            .state
            .revisions
            .find("by_user_lab", &format!("{}/{}", s.user, lab_id))
            .map_err(db_err)?;
        match ids.last() {
            Some(&id) => Ok(self.state.revisions.get(id).map_err(db_err)?.source),
            None => self.lab_skeleton(lab_id),
        }
    }

    /// Actions 2, 3, and 5 — the unified submission entry point.
    ///
    /// One request type covers compile-only, single-dataset runs, and
    /// full grades; one outcome type carries the attempt record id and
    /// the `trace_id` under which `wb-obs` recorded the job's span.
    /// Failure kinds are typed: the UI shows a countdown for
    /// [`WbError::RateLimited`], a compiler diagnostic for
    /// [`WbError::CompileError`], a crash report for
    /// [`WbError::RuntimeError`], and pages the operator for
    /// [`WbError::Infra`]. Wrong answers are not errors: they come back
    /// `Ok` with `passed < total`.
    ///
    /// Full grades are the exception to the error taxonomy: grading
    /// records whatever happened — compile failure included — as a
    /// scored submission row, because a failed graded submission is a
    /// gradebook fact, not a transient error.
    pub fn submit(&self, req: &SubmitRequest) -> Result<SubmissionOutcome, WbError> {
        let (lab, meta, job) = self.prepare_submission(req)?;
        let job_id = job.job_id;
        let outcome = self.dispatcher.dispatch(job, req.at_ms)?;
        self.record_outcome(&lab, meta, job_id, &outcome)
    }

    /// The queued half of the submission API: everything up to and
    /// including admission happens now — auth, lab lookup, rate limit,
    /// the dispatcher's own admission control — but execution does
    /// not. Returns the job id to poll; record-keeping happens when
    /// [`reap_queued`](Self::reap_queued) collects the outcome. A shed
    /// ([`WbError::Overloaded`]) leaves no record, exactly like a
    /// synchronous dispatch failure.
    pub fn submit_queued(&self, req: &SubmitRequest) -> Result<u64, WbError> {
        let (_, meta, job) = self.prepare_submission(req)?;
        let job_id = job.job_id;
        self.dispatcher.submit_queued(job, req.at_ms)?;
        self.pending.lock().insert(job_id, meta);
        Ok(job_id)
    }

    /// Drive the dispatcher one scheduling round (no-op for purely
    /// synchronous backends); returns jobs completed this round.
    pub fn advance(&self, now_ms: u64) -> usize {
        self.dispatcher.advance(now_ms)
    }

    /// Collect every queued submission whose outcome is ready and
    /// finish its record-keeping — rubric scoring, submission/attempt
    /// rows, hints — identically to the synchronous path. Returns
    /// `(job_id, result)` pairs in job-id order.
    #[allow(clippy::type_complexity)]
    pub fn reap_queued(&self) -> Vec<(u64, Result<SubmissionOutcome, WbError>)> {
        let mut ids: Vec<u64> = self.pending.lock().keys().copied().collect();
        ids.sort_unstable();
        let mut reaped = Vec::new();
        for job_id in ids {
            let Some(outcome) = self.dispatcher.poll_queued(job_id) else {
                continue;
            };
            let Some(meta) = self.pending.lock().remove(&job_id) else {
                continue;
            };
            let result = self
                .lab(&meta.lab)
                .and_then(|lab| self.record_outcome(&lab, meta, job_id, &outcome));
            reaped.push((job_id, result));
        }
        reaped
    }

    /// Queued submissions not yet reaped.
    pub fn pending_queued(&self) -> usize {
        self.pending.lock().len()
    }

    /// The shared front half of both submission paths: authenticate,
    /// resolve lab and source, rate-limit, count the attempt, and
    /// build the job.
    fn prepare_submission(
        &self,
        req: &SubmitRequest,
    ) -> Result<(LabDefinition, PendingSubmission, JobRequest), WbError> {
        let s = self.sessions.authenticate(req.token)?;
        let lab = self.lab(&req.lab)?;
        let source = match &req.source {
            Some(src) => src.clone(),
            None => self.current_code(req.token, &req.lab)?,
        };
        if let Err(e) = self
            .limiter
            .check(&format!("{}/{}", s.user, req.lab), req.at_ms)
        {
            self.obs.bump(Counter::RateLimited);
            return Err(e);
        }
        let action = match req.action {
            SubmitAction::CompileOnly => JobAction::CompileOnly,
            SubmitAction::RunDataset(i) => JobAction::RunDataset(i),
            SubmitAction::FullGrade => JobAction::FullGrade,
        };
        let job_id = self.next_job.fetch_add(1, Ordering::Relaxed);
        self.obs.bump(Counter::AttemptsServed);
        self.obs.bump_scoped(&format!("attempts/{}", req.lab));
        let job = JobRequest {
            job_id,
            user: s.user.clone(),
            source: source.clone(),
            spec: lab.spec.clone(),
            datasets: lab.datasets.clone(),
            action,
        };
        let meta = PendingSubmission {
            user: s.user,
            lab: req.lab.clone(),
            action: req.action,
            at_ms: req.at_ms,
            source,
        };
        Ok((lab, meta, job))
    }

    /// The shared back half: render the outcome, append hints, write
    /// the durable row, and shape the typed result.
    fn record_outcome(
        &self,
        lab: &LabDefinition,
        meta: PendingSubmission,
        job_id: u64,
        outcome: &JobOutcome,
    ) -> Result<SubmissionOutcome, WbError> {
        let PendingSubmission {
            user,
            lab: lab_id,
            action,
            at_ms,
            source,
        } = meta;
        let (passed, mut report) = render_outcome(outcome);
        let analysis: Vec<String> = outcome
            .analysis
            .iter()
            .map(minicuda::Finding::render)
            .collect();
        // Automated feedback (the paper's future-work item): hints are
        // appended to failing attempts only — passing students are not
        // second-guessed.
        if !passed {
            for hint in crate::hints::hints_for(outcome, &source) {
                report.push_str(&format!("Hint: {}\n", hint.message));
            }
        }

        if action == SubmitAction::FullGrade {
            let score = lab.rubric.auto_score(outcome, &source);
            let record_id = self
                .state
                .submissions
                .insert(&SubmissionRec {
                    user,
                    lab: lab_id,
                    at_ms,
                    passed: outcome.passed_count(),
                    total: outcome.datasets.len(),
                    compiled: outcome.compiled(),
                    score,
                    override_score: None,
                    source,
                })
                .map_err(db_err)?;
            return Ok(SubmissionOutcome {
                trace_id: job_id,
                record_id,
                compiled: outcome.compiled(),
                passed: outcome.passed_count(),
                total: outcome.datasets.len(),
                score: Some(score),
                report,
                analysis,
            });
        }

        let record_id = self
            .state
            .attempts
            .insert(&AttemptRec {
                user,
                lab: lab_id,
                dataset: match action {
                    SubmitAction::RunDataset(i) => Some(i),
                    _ => None,
                },
                at_ms,
                compiled: outcome.compiled(),
                passed,
                summary: report.lines().next().unwrap_or_default().to_string(),
                source,
                share_token: None,
            })
            .map_err(db_err)?;
        if !outcome.compiled() {
            return Err(WbError::CompileError { report });
        }
        if outcome.datasets.iter().any(|d| d.error.is_some()) {
            return Err(WbError::RuntimeError { report });
        }
        Ok(SubmissionOutcome {
            trace_id: job_id,
            record_id,
            compiled: true,
            passed: outcome.passed_count(),
            total: outcome.datasets.len(),
            score: None,
            report,
            analysis,
        })
    }

    /// Action 4 — short-answer questions.
    pub fn answer_questions(
        &self,
        token: u64,
        lab_id: &str,
        answers: Vec<String>,
    ) -> Result<(), WbError> {
        let s = self.sessions.authenticate(token)?;
        let lab = self.lab(lab_id)?;
        if answers.len() != lab.questions.len() {
            return Err(WbError::rejected(format!(
                "lab has {} questions, {} answers given",
                lab.questions.len(),
                answers.len()
            )));
        }
        let key = format!("{}/{}", s.user, lab_id);
        let existing = self
            .state
            .answers
            .find("by_user_lab", &key)
            .unwrap_or_default();
        let rec = AnswerRec {
            user: s.user,
            lab: lab_id.to_string(),
            answers,
            question_score: None,
            comment: None,
        };
        match existing.first() {
            Some(&id) => self.state.answers.update(id, &rec).map_err(db_err)?,
            None => {
                self.state.answers.insert(&rec).map_err(db_err)?;
            }
        }
        Ok(())
    }

    /// Action 6 — code history (§IV-B 5).
    pub fn history(&self, token: u64, lab_id: &str) -> Result<Vec<RevisionRec>, WbError> {
        let s = self.sessions.authenticate(token)?;
        let ids = self
            .state
            .revisions
            .find("by_user_lab", &format!("{}/{}", s.user, lab_id))
            .map_err(db_err)?;
        Ok(ids
            .into_iter()
            .filter_map(|id| self.state.revisions.get(id).ok())
            .collect())
    }

    /// The attempts view (§IV-B 4).
    pub fn attempts(&self, token: u64, lab_id: &str) -> Result<Vec<AttemptRec>, WbError> {
        let s = self.sessions.authenticate(token)?;
        let ids = self
            .state
            .attempts
            .find("by_user_lab", &format!("{}/{}", s.user, lab_id))
            .map_err(db_err)?;
        Ok(ids
            .into_iter()
            .filter_map(|id| self.state.attempts.get(id).ok())
            .collect())
    }

    /// Generate a public link for an attempt — only after the lab
    /// deadline has passed (§IV-B 2).
    pub fn share_attempt(&self, token: u64, attempt_id: u64, now_ms: u64) -> Result<u64, WbError> {
        let s = self.sessions.authenticate(token)?;
        let mut rec = self.state.attempts.get(attempt_id).map_err(db_err)?;
        if rec.user != s.user {
            return Err(WbError::rejected("you can only share your own attempts"));
        }
        let lab = self.lab(&rec.lab)?;
        if now_ms < lab.deadline_ms {
            return Err(WbError::rejected(
                "attempts can be shared after the lab deadline",
            ));
        }
        let t = self.next_share.fetch_add(1, Ordering::Relaxed) ^ 0x5bd1e995;
        rec.share_token = Some(t);
        self.state
            .attempts
            .update(attempt_id, &rec)
            .map_err(db_err)?;
        Ok(t)
    }

    // ---- instructor tools (§IV-F) ---------------------------------------

    /// The roster view: every student with a submission for the lab.
    pub fn roster(&self, token: u64, lab_id: &str) -> Result<Vec<RosterRow>, WbError> {
        self.sessions.authenticate_instructor(token)?;
        let ids = self
            .state
            .submissions
            .find("by_lab", lab_id)
            .map_err(db_err)?;
        let mut per_user: HashMap<String, RosterRow> = HashMap::new();
        for id in ids {
            let sub = match self.state.submissions.get(id) {
                Ok(s) => s,
                Err(_) => continue,
            };
            let email = self
                .state
                .users
                .find("by_name", &sub.user)
                .ok()
                .and_then(|ids| ids.first().copied())
                .and_then(|uid| self.state.users.get(uid).ok())
                .map(|u| u.email)
                .unwrap_or_default();
            let row = per_user.entry(sub.user.clone()).or_insert(RosterRow {
                user: sub.user.clone(),
                email,
                submissions: 0,
                program_grade: 0.0,
                question_grade: 0.0,
                total_grade: 0.0,
                last_submission_ms: None,
            });
            row.submissions += 1;
            row.program_grade = row.program_grade.max(sub.effective_score());
            row.last_submission_ms = Some(row.last_submission_ms.unwrap_or(0).max(sub.at_ms));
        }
        // Question grades come from the answers table.
        for row in per_user.values_mut() {
            let key = format!("{}/{}", row.user, lab_id);
            if let Ok(ids) = self.state.answers.find("by_user_lab", &key) {
                if let Some(&id) = ids.first() {
                    if let Ok(a) = self.state.answers.get(id) {
                        row.question_grade = a.question_score.unwrap_or(0.0);
                    }
                }
            }
            row.total_grade = row.program_grade + row.question_grade;
        }
        let mut rows: Vec<RosterRow> = per_user.into_values().collect();
        rows.sort_by(|a, b| a.user.cmp(&b.user));
        Ok(rows)
    }

    /// Override a submission's grade (§IV-F: "Instructors are provided
    /// an interface to override a grade").
    pub fn override_grade(
        &self,
        token: u64,
        submission_id: u64,
        score: f64,
    ) -> Result<(), WbError> {
        self.sessions.authenticate_instructor(token)?;
        let mut rec = self.state.submissions.get(submission_id).map_err(db_err)?;
        rec.override_score = Some(score);
        self.state
            .submissions
            .update(submission_id, &rec)
            .map_err(db_err)
    }

    /// Grade a student's short answers and optionally leave a comment.
    pub fn grade_questions(
        &self,
        token: u64,
        user: &str,
        lab_id: &str,
        score: f64,
        comment: Option<String>,
    ) -> Result<(), WbError> {
        self.sessions.authenticate_instructor(token)?;
        let key = format!("{user}/{lab_id}");
        let ids = self
            .state
            .answers
            .find("by_user_lab", &key)
            .map_err(db_err)?;
        let id = *ids
            .first()
            .ok_or_else(|| WbError::rejected(format!("{user} has no answers for {lab_id}")))?;
        let mut rec = self.state.answers.get(id).map_err(db_err)?;
        rec.question_score = Some(score);
        if comment.is_some() {
            rec.comment = comment;
        }
        self.state.answers.update(id, &rec).map_err(db_err)
    }

    /// Publish a lab's grades to an external gradebook (§IV-F:
    /// "storing the grade in Coursera, for example"). Instructor-only;
    /// returns the number of grade posts made.
    pub fn publish_grades(
        &self,
        token: u64,
        lab_id: &str,
        gradebook: &dyn crate::gradebook::ExternalGradebook,
        now_ms: u64,
    ) -> Result<usize, WbError> {
        self.sessions.authenticate_instructor(token)?;
        self.lab(lab_id)?;
        crate::gradebook::publish_lab_grades(&self.state, gradebook, lab_id, now_ms)
            .map_err(WbError::infra)
    }

    // ---- registration passthroughs ---------------------------------------

    /// Register a student account.
    pub fn register_student(&self, name: &str, password: &str) -> Result<(), WbError> {
        Ok(self
            .sessions
            .register(&self.state, name, password, Role::Student)?)
    }

    /// Register an instructor account.
    pub fn register_instructor(&self, name: &str, password: &str) -> Result<(), WbError> {
        Ok(self
            .sessions
            .register(&self.state, name, password, Role::Instructor)?)
    }

    /// Log in.
    pub fn login(
        &self,
        name: &str,
        password: &str,
        device: DeviceKind,
        now_ms: u64,
    ) -> Result<u64, WbError> {
        Ok(self
            .sessions
            .login(&self.state, name, password, device, now_ms)?
            .token)
    }
}

/// Render a job outcome the way the attempt view shows it.
fn render_outcome(outcome: &JobOutcome) -> (bool, String) {
    if let Some(err) = &outcome.compile_error {
        return (false, format!("Compilation failed: {err}"));
    }
    if outcome.datasets.is_empty() {
        return (false, "Compilation successful.".to_string());
    }
    let mut passed = true;
    let mut report = String::new();
    for d in &outcome.datasets {
        if let Some(err) = &d.error {
            passed = false;
            report.push_str(&format!("[{}] failed: {err}\n", d.name));
        } else if let Some(check) = &d.check {
            if !check.passed() {
                passed = false;
            }
            report.push_str(&format!("[{}] {}\n", d.name, check.summary()));
        }
        if !d.timing_text.is_empty() {
            report.push_str(&d.timing_text);
        }
        if !d.log_text.is_empty() {
            report.push_str(&d.log_text);
        }
    }
    (passed, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lab::LabDefinition;

    const ECHO: &str = r#"
        int main() {
            int n;
            float* a = wbImportVector(0, &n);
            wbSolution(a, n);
            return 0;
        }
    "#;

    fn server_with_lab() -> (WebGpuServer, u64, u64) {
        let srv = WebGpuServer::new(Box::new(LocalDispatcher::new()));
        srv.register_instructor("prof", "pw").unwrap();
        srv.register_student("alice", "pw").unwrap();
        let staff = srv.login("prof", "pw", DeviceKind::Desktop, 0).unwrap();
        let student = srv.login("alice", "pw", DeviceKind::Desktop, 0).unwrap();
        srv.deploy_lab(staff, LabDefinition::test_lab("echo"))
            .unwrap();
        (srv, staff, student)
    }

    #[test]
    fn students_cannot_deploy_labs() {
        let (srv, _, student) = server_with_lab();
        let err = srv
            .deploy_lab(student, LabDefinition::test_lab("evil"))
            .unwrap_err();
        assert!(matches!(err, WbError::Rejected { ref reason } if reason.contains("instructor")));
    }

    #[test]
    fn skeleton_shown_before_any_save() {
        let (srv, _, student) = server_with_lab();
        let code = srv.current_code(student, "echo").unwrap();
        assert!(code.contains("your code here"));
    }

    #[test]
    fn autosave_and_history() {
        let (srv, _, student) = server_with_lab();
        srv.save_code(student, "echo", "v1", 100).unwrap();
        srv.save_code(student, "echo", "v2", 200).unwrap();
        assert_eq!(srv.current_code(student, "echo").unwrap(), "v2");
        let hist = srv.history(student, "echo").unwrap();
        assert_eq!(hist.len(), 2);
        assert_eq!(hist[0].source, "v1");
        assert_eq!(hist[1].at_ms, 200);
    }

    #[test]
    fn compile_records_attempt() {
        let (srv, _, student) = server_with_lab();
        srv.save_code(student, "echo", ECHO, 100).unwrap();
        let out = srv
            .submit(&SubmitRequest::compile_only(student, "echo").at(200))
            .unwrap();
        assert!(out.compiled);
        assert_eq!(out.total, 0, "compile-only runs no datasets");
        assert!(out.trace_id > 0);
        let attempts = srv.attempts(student, "echo").unwrap();
        assert_eq!(attempts.len(), 1);
        assert!(attempts[0].compiled);
        assert_eq!(attempts[0].dataset, None);
    }

    #[test]
    fn compile_error_is_typed() {
        let (srv, _, student) = server_with_lab();
        srv.save_code(student, "echo", "int main( {", 100).unwrap();
        let err = srv
            .submit(&SubmitRequest::compile_only(student, "echo").at(200))
            .unwrap_err();
        let WbError::CompileError { report } = err else {
            panic!("expected CompileError, got {err:?}");
        };
        assert!(report.contains("Compilation failed"));
        // The failed attempt is still on the record.
        let attempts = srv.attempts(student, "echo").unwrap();
        assert_eq!(attempts.len(), 1);
        assert!(!attempts[0].compiled);
    }

    #[test]
    fn run_dataset_reports_pass() {
        let (srv, _, student) = server_with_lab();
        srv.save_code(student, "echo", ECHO, 100).unwrap();
        let out = srv
            .submit(&SubmitRequest::run_dataset(student, "echo", 0).at(200))
            .unwrap();
        assert!(out.all_passed(), "{}", out.report);
        assert!(out.report.contains("correct"));
        assert!(out.score.is_none(), "no rubric score outside full grades");
    }

    #[test]
    fn run_dataset_reports_mismatch() {
        let (srv, _, student) = server_with_lab();
        let buggy = ECHO.replace("wbSolution(a, n)", "a[0] = 99.0; wbSolution(a, n)");
        srv.save_code(student, "echo", &buggy, 100).unwrap();
        let out = srv
            .submit(&SubmitRequest::run_dataset(student, "echo", 0).at(200))
            .unwrap();
        assert!(!out.all_passed(), "wrong answers are outcomes, not errors");
        assert_eq!((out.passed, out.total), (0, 1));
        assert!(out.report.contains("differs"));
    }

    #[test]
    fn submit_scores_with_rubric() {
        let (srv, _, student) = server_with_lab();
        srv.save_code(student, "echo", ECHO, 100).unwrap();
        let sub = srv
            .submit(&SubmitRequest::full_grade(student, "echo").at(200))
            .unwrap();
        assert!(sub.compiled);
        assert_eq!(sub.passed, 1);
        // 10 compile + 80 datasets = 90 (10 question points pending).
        assert!((sub.score.unwrap() - 90.0).abs() < 1e-9);
    }

    #[test]
    fn full_grade_records_even_compile_failures() {
        let (srv, _, student) = server_with_lab();
        srv.save_code(student, "echo", "int main( {", 0).unwrap();
        let sub = srv
            .submit(&SubmitRequest::full_grade(student, "echo").at(1))
            .unwrap();
        assert!(!sub.compiled);
        assert_eq!(sub.score, Some(0.0));
    }

    #[test]
    fn rate_limit_kicks_in() {
        let (srv, _, student) = server_with_lab();
        srv.save_code(student, "echo", ECHO, 0).unwrap();
        // Default burst is 3.
        for k in 0..3 {
            srv.submit(&SubmitRequest::compile_only(student, "echo").at(k))
                .unwrap();
        }
        let err = srv
            .submit(&SubmitRequest::compile_only(student, "echo").at(4))
            .unwrap_err();
        assert!(matches!(err, WbError::RateLimited { .. }));
        assert!(err.to_string().contains("retry in"));
    }

    #[test]
    fn attempts_and_rate_limits_land_in_metrics() {
        let obs = Arc::new(Recorder::traced());
        let srv =
            WebGpuServer::new_traced(Box::new(LocalDispatcher::traced(Arc::clone(&obs))), obs);
        srv.register_instructor("prof", "pw").unwrap();
        srv.register_student("alice", "pw").unwrap();
        let staff = srv.login("prof", "pw", DeviceKind::Desktop, 0).unwrap();
        let student = srv.login("alice", "pw", DeviceKind::Desktop, 0).unwrap();
        srv.deploy_lab(staff, LabDefinition::test_lab("echo"))
            .unwrap();
        srv.save_code(student, "echo", ECHO, 0).unwrap();
        for k in 0..3 {
            srv.submit(&SubmitRequest::compile_only(student, "echo").at(k))
                .unwrap();
        }
        let _ = srv
            .submit(&SubmitRequest::compile_only(student, "echo").at(4))
            .unwrap_err();
        let snap = srv.metrics_snapshot();
        assert!(snap.enabled);
        assert_eq!(snap.counter("attempts_served"), 3);
        assert_eq!(snap.counter("rate_limited"), 1);
        assert_eq!(snap.counter("attempts/echo"), 3, "per-course tally");
        assert_eq!(
            snap.compile_micros.count, 3,
            "each dispatched attempt timed its compile"
        );
    }

    #[test]
    fn queued_submission_records_like_the_sync_path() {
        let (srv, _, student) = server_with_lab();
        srv.save_code(student, "echo", ECHO, 100).unwrap();
        let job_id = srv
            .submit_queued(&SubmitRequest::full_grade(student, "echo").at(200))
            .unwrap();
        assert_eq!(srv.pending_queued(), 1);
        let reaped = srv.reap_queued();
        assert_eq!(reaped.len(), 1);
        assert_eq!(reaped[0].0, job_id);
        let out = reaped[0].1.as_ref().expect("grade lands");
        assert_eq!(out.trace_id, job_id);
        assert!((out.score.unwrap() - 90.0).abs() < 1e-9);
        assert_eq!(srv.pending_queued(), 0);
        // The submission row is identical to what submit() writes.
        let ids = srv.state.submissions.find("by_lab", "echo").unwrap();
        assert_eq!(ids.len(), 1);
        let rec = srv.state.submissions.get(ids[0]).unwrap();
        assert_eq!(rec.user, "alice");
        assert!(rec.compiled);
        // Reaping again finds nothing.
        assert!(srv.reap_queued().is_empty());
    }

    #[test]
    fn queued_submission_takes_inline_source() {
        let (srv, _, student) = server_with_lab();
        // No save_code: the source rides in the request.
        let job_id = srv
            .submit_queued(
                &SubmitRequest::compile_only(student, "echo")
                    .at(50)
                    .with_source(ECHO),
            )
            .unwrap();
        let reaped = srv.reap_queued();
        assert_eq!(reaped[0].0, job_id);
        assert!(reaped[0].1.as_ref().unwrap().compiled);
        let attempts = srv.attempts(student, "echo").unwrap();
        assert_eq!(attempts.len(), 1);
        assert!(attempts[0].source.contains("wbSolution"));
        // The revisions table stayed empty — no autosave round-trip.
        assert!(srv.history(student, "echo").unwrap().is_empty());
    }

    #[test]
    fn queued_failures_are_typed_and_recorded() {
        let (srv, _, student) = server_with_lab();
        srv.submit_queued(
            &SubmitRequest::compile_only(student, "echo")
                .at(10)
                .with_source("int main( {"),
        )
        .unwrap();
        let reaped = srv.reap_queued();
        assert!(matches!(
            reaped[0].1.as_ref().unwrap_err(),
            WbError::CompileError { .. }
        ));
        // The failed attempt is on the record, same as the sync path.
        let attempts = srv.attempts(student, "echo").unwrap();
        assert_eq!(attempts.len(), 1);
        assert!(!attempts[0].compiled);
    }

    #[test]
    fn queued_rate_limit_applies_at_submit_time() {
        let (srv, _, student) = server_with_lab();
        for k in 0..3 {
            srv.submit_queued(
                &SubmitRequest::compile_only(student, "echo")
                    .at(k)
                    .with_source(ECHO),
            )
            .unwrap();
        }
        let err = srv
            .submit_queued(
                &SubmitRequest::compile_only(student, "echo")
                    .at(4)
                    .with_source(ECHO),
            )
            .unwrap_err();
        assert!(matches!(err, WbError::RateLimited { .. }));
        assert_eq!(srv.pending_queued(), 3, "the shed attempt never queued");
    }

    #[test]
    fn custom_rate_limit_replaces_the_default() {
        let srv = WebGpuServer::new(Box::new(LocalDispatcher::new())).with_rate_limit(RateLimit {
            burst: 1.0,
            per_second: 0.0,
        });
        srv.register_instructor("prof", "pw").unwrap();
        srv.register_student("alice", "pw").unwrap();
        let staff = srv.login("prof", "pw", DeviceKind::Desktop, 0).unwrap();
        let student = srv.login("alice", "pw", DeviceKind::Desktop, 0).unwrap();
        srv.deploy_lab(staff, LabDefinition::test_lab("echo"))
            .unwrap();
        srv.save_code(student, "echo", ECHO, 0).unwrap();
        srv.submit(&SubmitRequest::compile_only(student, "echo").at(1))
            .unwrap();
        let err = srv
            .submit(&SubmitRequest::compile_only(student, "echo").at(2))
            .unwrap_err();
        assert!(matches!(err, WbError::RateLimited { .. }));
    }

    #[test]
    fn questions_answered_and_graded() {
        let (srv, staff, student) = server_with_lab();
        srv.answer_questions(student, "echo", vec!["rayleigh scattering".into()])
            .unwrap();
        // Wrong count rejected.
        assert!(srv
            .answer_questions(student, "echo", vec!["a".into(), "b".into()])
            .is_err());
        srv.grade_questions(staff, "alice", "echo", 8.0, Some("good".into()))
            .unwrap();
        // Students cannot grade.
        assert!(srv
            .grade_questions(student, "alice", "echo", 10.0, None)
            .is_err());
    }

    #[test]
    fn roster_aggregates_best_scores() {
        let (srv, staff, student) = server_with_lab();
        srv.save_code(student, "echo", "int main( {", 0).unwrap();
        srv.submit(&SubmitRequest::full_grade(student, "echo").at(1))
            .unwrap(); // fails: 0 points
        srv.save_code(student, "echo", ECHO, 100_000).unwrap();
        srv.submit(&SubmitRequest::full_grade(student, "echo").at(200_000))
            .unwrap(); // 90 points
        srv.answer_questions(student, "echo", vec!["x".into()])
            .unwrap();
        srv.grade_questions(staff, "alice", "echo", 7.5, None)
            .unwrap();
        let roster = srv.roster(staff, "echo").unwrap();
        assert_eq!(roster.len(), 1);
        let row = &roster[0];
        assert_eq!(row.submissions, 2);
        assert!((row.program_grade - 90.0).abs() < 1e-9);
        assert!((row.question_grade - 7.5).abs() < 1e-9);
        assert!((row.total_grade - 97.5).abs() < 1e-9);
        // Students cannot see the roster.
        assert!(srv.roster(student, "echo").is_err());
    }

    #[test]
    fn grade_override_applies() {
        let (srv, staff, student) = server_with_lab();
        srv.save_code(student, "echo", ECHO, 0).unwrap();
        srv.submit(&SubmitRequest::full_grade(student, "echo").at(1))
            .unwrap();
        let ids = srv.state.submissions.find("by_lab", "echo").unwrap();
        srv.override_grade(staff, ids[0], 100.0).unwrap();
        let roster = srv.roster(staff, "echo").unwrap();
        assert!((roster[0].program_grade - 100.0).abs() < 1e-9);
    }

    #[test]
    fn share_only_after_deadline() {
        let (srv, staff, student) = server_with_lab();
        let _ = staff;
        srv.save_code(student, "echo", ECHO, 0).unwrap();
        let out = srv
            .submit(&SubmitRequest::compile_only(student, "echo").at(1))
            .unwrap();
        let before = srv.share_attempt(student, out.record_id, 1000);
        assert!(before.is_err(), "deadline not passed");
        let deadline = 7 * 24 * 3600 * 1000;
        let token = srv
            .share_attempt(student, out.record_id, deadline + 1)
            .unwrap();
        assert!(token > 0);
    }

    #[test]
    fn cannot_share_others_attempts() {
        let (srv, _, student) = server_with_lab();
        srv.register_student("bob", "pw").unwrap();
        let bob = srv.login("bob", "pw", DeviceKind::Desktop, 0).unwrap();
        srv.save_code(student, "echo", ECHO, 0).unwrap();
        let out = srv
            .submit(&SubmitRequest::compile_only(student, "echo").at(1))
            .unwrap();
        let err = srv.share_attempt(bob, out.record_id, u64::MAX).unwrap_err();
        assert!(matches!(err, WbError::Rejected { .. }));
    }

    #[test]
    fn description_renders_markdown_and_rubric() {
        let (srv, _, _) = server_with_lab();
        let html = srv.lab_description_html("echo").unwrap();
        assert!(html.contains("<h1>Test</h1>"));
        assert!(html.contains("<h2>Grading</h2>"));
    }

    #[test]
    fn unknown_lab_rejected_everywhere() {
        let (srv, _, student) = server_with_lab();
        let err = srv.save_code(student, "nope", "x", 0).unwrap_err();
        assert!(matches!(err, WbError::Rejected { ref reason } if reason.contains("no lab")));
        assert!(srv.lab_description_html("nope").is_err());
    }
}
