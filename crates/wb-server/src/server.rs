//! The WebGPU web server: the six student actions, instructor tools,
//! and the roster — everything of §IV that runs on the web tier.
//!
//! Job execution is behind the [`JobDispatcher`] trait so the same
//! server logic runs on the v1 push cluster, the v2 queue cluster, or a
//! single in-process worker (tests).

use crate::lab::LabDefinition;
use crate::markdown;
use crate::ratelimit::{RateLimit, RateLimiter};
use crate::session::{AuthError, Sessions};
use crate::state::{
    AnswerRec, AttemptRec, DeviceKind, RevisionRec, Role, ServerState, SubmissionRec,
};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use wb_worker::{JobAction, JobOutcome, JobRequest};

/// Abstract job execution backend.
pub trait JobDispatcher: Send + Sync {
    /// Execute a job somewhere, synchronously from the caller's view.
    fn dispatch(&self, req: JobRequest, now_ms: u64) -> Result<JobOutcome, String>;
}

/// A dispatcher running jobs on one in-process worker node (used by
/// tests and the quickstart example).
pub struct LocalDispatcher {
    node: wb_worker::WorkerNode,
}

impl Default for LocalDispatcher {
    fn default() -> Self {
        Self::new()
    }
}

impl LocalDispatcher {
    /// A single small deterministic worker.
    pub fn new() -> Self {
        LocalDispatcher {
            node: wb_worker::WorkerNode::boot(
                1,
                minicuda::DeviceConfig::test_small(),
                &wb_worker::WorkerConfig::default(),
            ),
        }
    }
}

impl JobDispatcher for LocalDispatcher {
    fn dispatch(&self, req: JobRequest, _now_ms: u64) -> Result<JobOutcome, String> {
        self.node
            .submit(&req)
            .ok_or_else(|| "worker unavailable".to_string())
    }
}

/// Errors surfaced to the UI layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerError {
    /// Authentication / authorization failure.
    Auth(AuthError),
    /// Unknown lab id.
    NoSuchLab(String),
    /// Rate limited; retry after this many seconds.
    RateLimited(f64),
    /// Dispatch failed (no workers, queue down…).
    Dispatch(String),
    /// Anything else.
    Invalid(String),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Auth(e) => write!(f, "{e}"),
            ServerError::NoSuchLab(l) => write!(f, "no lab named {l:?}"),
            ServerError::RateLimited(s) => {
                write!(f, "submission rate limit: retry in {s:.0} seconds")
            }
            ServerError::Dispatch(m) => write!(f, "could not run your code: {m}"),
            ServerError::Invalid(m) => write!(f, "{m}"),
        }
    }
}

impl From<AuthError> for ServerError {
    fn from(e: AuthError) -> Self {
        ServerError::Auth(e)
    }
}

/// One row of the instructor roster view (§IV-F, Fig. 5).
#[derive(Debug, Clone, PartialEq)]
pub struct RosterRow {
    /// Student name.
    pub user: String,
    /// Student email.
    pub email: String,
    /// Number of graded submissions for the lab.
    pub submissions: usize,
    /// Best effective program score.
    pub program_grade: f64,
    /// Instructor-assigned question grade (0 until graded).
    pub question_grade: f64,
    /// Program + question.
    pub total_grade: f64,
    /// Virtual ms of the latest submission.
    pub last_submission_ms: Option<u64>,
}

/// The result of a compile or run action, shaped like the attempt view.
#[derive(Debug, Clone)]
pub struct AttemptView {
    /// Attempt row id.
    pub attempt_id: u64,
    /// Compiled?
    pub compiled: bool,
    /// Output matched (false for compile-only attempts)?
    pub passed: bool,
    /// Student-facing text: compile error, mismatch summary, timer
    /// report and logs.
    pub report: String,
}

/// The WebGPU web server.
pub struct WebGpuServer {
    /// Database tables.
    pub state: ServerState,
    /// Session manager.
    pub sessions: Sessions,
    labs: RwLock<HashMap<String, LabDefinition>>,
    dispatcher: Box<dyn JobDispatcher>,
    limiter: RateLimiter,
    next_job: AtomicU64,
    next_share: AtomicU64,
}

impl WebGpuServer {
    /// Build a server over a dispatcher.
    pub fn new(dispatcher: Box<dyn JobDispatcher>) -> Self {
        WebGpuServer {
            state: ServerState::new(),
            sessions: Sessions::new(),
            labs: RwLock::new(HashMap::new()),
            dispatcher,
            limiter: RateLimiter::new(RateLimit::default()),
            next_job: AtomicU64::new(1),
            next_share: AtomicU64::new(1),
        }
    }

    // ---- lab management (instructor, §IV-E) ---------------------------

    /// Deploy a lab. Unlike the rest of the instructor tools, the paper
    /// notes lab creation is a developer-level operation; here it is a
    /// server API guarded by the instructor role.
    pub fn deploy_lab(&self, token: u64, lab: LabDefinition) -> Result<(), ServerError> {
        self.sessions.authenticate_instructor(token)?;
        self.labs.write().insert(lab.id.clone(), lab);
        Ok(())
    }

    /// Lab ids currently deployed.
    pub fn lab_ids(&self) -> Vec<String> {
        let mut v: Vec<String> = self.labs.read().keys().cloned().collect();
        v.sort();
        v
    }

    fn lab(&self, id: &str) -> Result<LabDefinition, ServerError> {
        self.labs
            .read()
            .get(id)
            .cloned()
            .ok_or_else(|| ServerError::NoSuchLab(id.to_string()))
    }

    /// The rendered lab manual + rubric shown to students (§IV-B 1).
    pub fn lab_description_html(&self, lab_id: &str) -> Result<String, ServerError> {
        let lab = self.lab(lab_id)?;
        let mut html = markdown::render(&lab.description_md);
        html.push_str(&format!(
            "<h2>Grading</h2>\n<p>Compilation: {} points. Datasets: {} points. Questions: {} points.</p>\n",
            lab.rubric.compile_points, lab.rubric.dataset_points, lab.rubric.question_points
        ));
        Ok(html)
    }

    /// The skeleton code a student sees on first open (§IV-B 2).
    pub fn lab_skeleton(&self, lab_id: &str) -> Result<String, ServerError> {
        Ok(self.lab(lab_id)?.skeleton)
    }

    // ---- student actions (§IV-A) ----------------------------------------

    /// Action 1 — the editor autosaves code.
    pub fn save_code(
        &self,
        token: u64,
        lab_id: &str,
        source: &str,
        now_ms: u64,
    ) -> Result<u64, ServerError> {
        let s = self.sessions.authenticate(token)?;
        self.lab(lab_id)?;
        self.state
            .revisions
            .insert(&RevisionRec {
                user: s.user,
                lab: lab_id.to_string(),
                at_ms: now_ms,
                source: source.to_string(),
            })
            .map_err(|e| ServerError::Invalid(e.to_string()))
    }

    /// The student's latest saved code, or the skeleton.
    pub fn current_code(&self, token: u64, lab_id: &str) -> Result<String, ServerError> {
        let s = self.sessions.authenticate(token)?;
        let ids = self
            .state
            .revisions
            .find("by_user_lab", &format!("{}/{}", s.user, lab_id))
            .map_err(|e| ServerError::Invalid(e.to_string()))?;
        match ids.last() {
            Some(&id) => Ok(self
                .state
                .revisions
                .get(id)
                .map_err(|e| ServerError::Invalid(e.to_string()))?
                .source),
            None => self.lab_skeleton(lab_id),
        }
    }

    /// Action 2 — compile only.
    pub fn compile(
        &self,
        token: u64,
        lab_id: &str,
        now_ms: u64,
    ) -> Result<AttemptView, ServerError> {
        self.run_action(token, lab_id, JobAction::CompileOnly, now_ms)
    }

    /// Action 3 — run against one instructor dataset.
    pub fn run_dataset(
        &self,
        token: u64,
        lab_id: &str,
        dataset: usize,
        now_ms: u64,
    ) -> Result<AttemptView, ServerError> {
        self.run_action(token, lab_id, JobAction::RunDataset(dataset), now_ms)
    }

    fn run_action(
        &self,
        token: u64,
        lab_id: &str,
        action: JobAction,
        now_ms: u64,
    ) -> Result<AttemptView, ServerError> {
        let s = self.sessions.authenticate(token)?;
        let lab = self.lab(lab_id)?;
        let source = self.current_code(token, lab_id)?;
        self.limiter
            .check(&format!("{}/{}", s.user, lab_id), now_ms)
            .map_err(ServerError::RateLimited)?;
        let req = JobRequest {
            job_id: self.next_job.fetch_add(1, Ordering::Relaxed),
            user: s.user.clone(),
            source: source.clone(),
            spec: lab.spec.clone(),
            datasets: lab.datasets.clone(),
            action: action.clone(),
        };
        let outcome = self
            .dispatcher
            .dispatch(req, now_ms)
            .map_err(ServerError::Dispatch)?;

        let (passed, mut report) = render_outcome(&outcome);
        // Automated feedback (the paper's future-work item): hints are
        // appended to failing attempts only — passing students are not
        // second-guessed.
        if !passed {
            for hint in crate::hints::hints_for(&outcome, &source) {
                report.push_str(&format!("Hint: {}\n", hint.message));
            }
        }
        let attempt_id = self
            .state
            .attempts
            .insert(&AttemptRec {
                user: s.user,
                lab: lab_id.to_string(),
                dataset: match action {
                    JobAction::RunDataset(i) => Some(i),
                    _ => None,
                },
                at_ms: now_ms,
                compiled: outcome.compiled(),
                passed,
                summary: report.lines().next().unwrap_or_default().to_string(),
                source,
                share_token: None,
            })
            .map_err(|e| ServerError::Invalid(e.to_string()))?;
        Ok(AttemptView {
            attempt_id,
            compiled: outcome.compiled(),
            passed,
            report,
        })
    }

    /// Action 4 — short-answer questions.
    pub fn answer_questions(
        &self,
        token: u64,
        lab_id: &str,
        answers: Vec<String>,
    ) -> Result<(), ServerError> {
        let s = self.sessions.authenticate(token)?;
        let lab = self.lab(lab_id)?;
        if answers.len() != lab.questions.len() {
            return Err(ServerError::Invalid(format!(
                "lab has {} questions, {} answers given",
                lab.questions.len(),
                answers.len()
            )));
        }
        let key = format!("{}/{}", s.user, lab_id);
        let existing = self
            .state
            .answers
            .find("by_user_lab", &key)
            .unwrap_or_default();
        let rec = AnswerRec {
            user: s.user,
            lab: lab_id.to_string(),
            answers,
            question_score: None,
            comment: None,
        };
        match existing.first() {
            Some(&id) => self
                .state
                .answers
                .update(id, &rec)
                .map_err(|e| ServerError::Invalid(e.to_string()))?,
            None => {
                self.state
                    .answers
                    .insert(&rec)
                    .map_err(|e| ServerError::Invalid(e.to_string()))?;
            }
        }
        Ok(())
    }

    /// Action 5 — submit for grading: run all datasets, apply the
    /// rubric, record the grade (§IV-F: "the system assigns a grade
    /// automatically and records it in the grade book").
    pub fn submit(
        &self,
        token: u64,
        lab_id: &str,
        now_ms: u64,
    ) -> Result<SubmissionRec, ServerError> {
        let s = self.sessions.authenticate(token)?;
        let lab = self.lab(lab_id)?;
        let source = self.current_code(token, lab_id)?;
        self.limiter
            .check(&format!("{}/{}", s.user, lab_id), now_ms)
            .map_err(ServerError::RateLimited)?;
        let req = JobRequest {
            job_id: self.next_job.fetch_add(1, Ordering::Relaxed),
            user: s.user.clone(),
            source: source.clone(),
            spec: lab.spec.clone(),
            datasets: lab.datasets.clone(),
            action: JobAction::FullGrade,
        };
        let outcome = self
            .dispatcher
            .dispatch(req, now_ms)
            .map_err(ServerError::Dispatch)?;
        let score = lab.rubric.auto_score(&outcome, &source);
        let rec = SubmissionRec {
            user: s.user,
            lab: lab_id.to_string(),
            at_ms: now_ms,
            passed: outcome.passed_count(),
            total: outcome.datasets.len(),
            compiled: outcome.compiled(),
            score,
            override_score: None,
            source,
        };
        self.state
            .submissions
            .insert(&rec)
            .map_err(|e| ServerError::Invalid(e.to_string()))?;
        Ok(rec)
    }

    /// Action 6 — code history (§IV-B 5).
    pub fn history(&self, token: u64, lab_id: &str) -> Result<Vec<RevisionRec>, ServerError> {
        let s = self.sessions.authenticate(token)?;
        let ids = self
            .state
            .revisions
            .find("by_user_lab", &format!("{}/{}", s.user, lab_id))
            .map_err(|e| ServerError::Invalid(e.to_string()))?;
        Ok(ids
            .into_iter()
            .filter_map(|id| self.state.revisions.get(id).ok())
            .collect())
    }

    /// The attempts view (§IV-B 4).
    pub fn attempts(&self, token: u64, lab_id: &str) -> Result<Vec<AttemptRec>, ServerError> {
        let s = self.sessions.authenticate(token)?;
        let ids = self
            .state
            .attempts
            .find("by_user_lab", &format!("{}/{}", s.user, lab_id))
            .map_err(|e| ServerError::Invalid(e.to_string()))?;
        Ok(ids
            .into_iter()
            .filter_map(|id| self.state.attempts.get(id).ok())
            .collect())
    }

    /// Generate a public link for an attempt — only after the lab
    /// deadline has passed (§IV-B 2).
    pub fn share_attempt(
        &self,
        token: u64,
        attempt_id: u64,
        now_ms: u64,
    ) -> Result<u64, ServerError> {
        let s = self.sessions.authenticate(token)?;
        let mut rec = self
            .state
            .attempts
            .get(attempt_id)
            .map_err(|e| ServerError::Invalid(e.to_string()))?;
        if rec.user != s.user {
            return Err(ServerError::Invalid(
                "you can only share your own attempts".to_string(),
            ));
        }
        let lab = self.lab(&rec.lab)?;
        if now_ms < lab.deadline_ms {
            return Err(ServerError::Invalid(
                "attempts can be shared after the lab deadline".to_string(),
            ));
        }
        let t = self.next_share.fetch_add(1, Ordering::Relaxed) ^ 0x5bd1e995;
        rec.share_token = Some(t);
        self.state
            .attempts
            .update(attempt_id, &rec)
            .map_err(|e| ServerError::Invalid(e.to_string()))?;
        Ok(t)
    }

    // ---- instructor tools (§IV-F) ---------------------------------------

    /// The roster view: every student with a submission for the lab.
    pub fn roster(&self, token: u64, lab_id: &str) -> Result<Vec<RosterRow>, ServerError> {
        self.sessions.authenticate_instructor(token)?;
        let ids = self
            .state
            .submissions
            .find("by_lab", lab_id)
            .map_err(|e| ServerError::Invalid(e.to_string()))?;
        let mut per_user: HashMap<String, RosterRow> = HashMap::new();
        for id in ids {
            let sub = match self.state.submissions.get(id) {
                Ok(s) => s,
                Err(_) => continue,
            };
            let email = self
                .state
                .users
                .find("by_name", &sub.user)
                .ok()
                .and_then(|ids| ids.first().copied())
                .and_then(|uid| self.state.users.get(uid).ok())
                .map(|u| u.email)
                .unwrap_or_default();
            let row = per_user.entry(sub.user.clone()).or_insert(RosterRow {
                user: sub.user.clone(),
                email,
                submissions: 0,
                program_grade: 0.0,
                question_grade: 0.0,
                total_grade: 0.0,
                last_submission_ms: None,
            });
            row.submissions += 1;
            row.program_grade = row.program_grade.max(sub.effective_score());
            row.last_submission_ms = Some(row.last_submission_ms.unwrap_or(0).max(sub.at_ms));
        }
        // Question grades come from the answers table.
        for row in per_user.values_mut() {
            let key = format!("{}/{}", row.user, lab_id);
            if let Ok(ids) = self.state.answers.find("by_user_lab", &key) {
                if let Some(&id) = ids.first() {
                    if let Ok(a) = self.state.answers.get(id) {
                        row.question_grade = a.question_score.unwrap_or(0.0);
                    }
                }
            }
            row.total_grade = row.program_grade + row.question_grade;
        }
        let mut rows: Vec<RosterRow> = per_user.into_values().collect();
        rows.sort_by(|a, b| a.user.cmp(&b.user));
        Ok(rows)
    }

    /// Override a submission's grade (§IV-F: "Instructors are provided
    /// an interface to override a grade").
    pub fn override_grade(
        &self,
        token: u64,
        submission_id: u64,
        score: f64,
    ) -> Result<(), ServerError> {
        self.sessions.authenticate_instructor(token)?;
        let mut rec = self
            .state
            .submissions
            .get(submission_id)
            .map_err(|e| ServerError::Invalid(e.to_string()))?;
        rec.override_score = Some(score);
        self.state
            .submissions
            .update(submission_id, &rec)
            .map_err(|e| ServerError::Invalid(e.to_string()))
    }

    /// Grade a student's short answers and optionally leave a comment.
    pub fn grade_questions(
        &self,
        token: u64,
        user: &str,
        lab_id: &str,
        score: f64,
        comment: Option<String>,
    ) -> Result<(), ServerError> {
        self.sessions.authenticate_instructor(token)?;
        let key = format!("{user}/{lab_id}");
        let ids = self
            .state
            .answers
            .find("by_user_lab", &key)
            .map_err(|e| ServerError::Invalid(e.to_string()))?;
        let id = *ids
            .first()
            .ok_or_else(|| ServerError::Invalid(format!("{user} has no answers for {lab_id}")))?;
        let mut rec = self
            .state
            .answers
            .get(id)
            .map_err(|e| ServerError::Invalid(e.to_string()))?;
        rec.question_score = Some(score);
        if comment.is_some() {
            rec.comment = comment;
        }
        self.state
            .answers
            .update(id, &rec)
            .map_err(|e| ServerError::Invalid(e.to_string()))
    }

    /// Publish a lab's grades to an external gradebook (§IV-F:
    /// "storing the grade in Coursera, for example"). Instructor-only;
    /// returns the number of grade posts made.
    pub fn publish_grades(
        &self,
        token: u64,
        lab_id: &str,
        gradebook: &dyn crate::gradebook::ExternalGradebook,
        now_ms: u64,
    ) -> Result<usize, ServerError> {
        self.sessions.authenticate_instructor(token)?;
        self.lab(lab_id)?;
        crate::gradebook::publish_lab_grades(&self.state, gradebook, lab_id, now_ms)
            .map_err(ServerError::Invalid)
    }

    // ---- registration passthroughs ---------------------------------------

    /// Register a student account.
    pub fn register_student(&self, name: &str, password: &str) -> Result<(), ServerError> {
        Ok(self
            .sessions
            .register(&self.state, name, password, Role::Student)?)
    }

    /// Register an instructor account.
    pub fn register_instructor(&self, name: &str, password: &str) -> Result<(), ServerError> {
        Ok(self
            .sessions
            .register(&self.state, name, password, Role::Instructor)?)
    }

    /// Log in.
    pub fn login(
        &self,
        name: &str,
        password: &str,
        device: DeviceKind,
        now_ms: u64,
    ) -> Result<u64, ServerError> {
        Ok(self
            .sessions
            .login(&self.state, name, password, device, now_ms)?
            .token)
    }
}

/// Render a job outcome the way the attempt view shows it.
fn render_outcome(outcome: &JobOutcome) -> (bool, String) {
    if let Some(err) = &outcome.compile_error {
        return (false, format!("Compilation failed: {err}"));
    }
    if outcome.datasets.is_empty() {
        return (false, "Compilation successful.".to_string());
    }
    let mut passed = true;
    let mut report = String::new();
    for d in &outcome.datasets {
        if let Some(err) = &d.error {
            passed = false;
            report.push_str(&format!("[{}] failed: {err}\n", d.name));
        } else if let Some(check) = &d.check {
            if !check.passed() {
                passed = false;
            }
            report.push_str(&format!("[{}] {}\n", d.name, check.summary()));
        }
        if !d.timing_text.is_empty() {
            report.push_str(&d.timing_text);
        }
        if !d.log_text.is_empty() {
            report.push_str(&d.log_text);
        }
    }
    (passed, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lab::LabDefinition;

    const ECHO: &str = r#"
        int main() {
            int n;
            float* a = wbImportVector(0, &n);
            wbSolution(a, n);
            return 0;
        }
    "#;

    fn server_with_lab() -> (WebGpuServer, u64, u64) {
        let srv = WebGpuServer::new(Box::new(LocalDispatcher::new()));
        srv.register_instructor("prof", "pw").unwrap();
        srv.register_student("alice", "pw").unwrap();
        let staff = srv.login("prof", "pw", DeviceKind::Desktop, 0).unwrap();
        let student = srv.login("alice", "pw", DeviceKind::Desktop, 0).unwrap();
        srv.deploy_lab(staff, LabDefinition::test_lab("echo"))
            .unwrap();
        (srv, staff, student)
    }

    #[test]
    fn students_cannot_deploy_labs() {
        let (srv, _, student) = server_with_lab();
        let err = srv
            .deploy_lab(student, LabDefinition::test_lab("evil"))
            .unwrap_err();
        assert_eq!(err, ServerError::Auth(AuthError::NotInstructor));
    }

    #[test]
    fn skeleton_shown_before_any_save() {
        let (srv, _, student) = server_with_lab();
        let code = srv.current_code(student, "echo").unwrap();
        assert!(code.contains("your code here"));
    }

    #[test]
    fn autosave_and_history() {
        let (srv, _, student) = server_with_lab();
        srv.save_code(student, "echo", "v1", 100).unwrap();
        srv.save_code(student, "echo", "v2", 200).unwrap();
        assert_eq!(srv.current_code(student, "echo").unwrap(), "v2");
        let hist = srv.history(student, "echo").unwrap();
        assert_eq!(hist.len(), 2);
        assert_eq!(hist[0].source, "v1");
        assert_eq!(hist[1].at_ms, 200);
    }

    #[test]
    fn compile_records_attempt() {
        let (srv, _, student) = server_with_lab();
        srv.save_code(student, "echo", ECHO, 100).unwrap();
        let view = srv.compile(student, "echo", 200).unwrap();
        assert!(view.compiled);
        let attempts = srv.attempts(student, "echo").unwrap();
        assert_eq!(attempts.len(), 1);
        assert!(attempts[0].compiled);
        assert_eq!(attempts[0].dataset, None);
    }

    #[test]
    fn run_dataset_reports_pass() {
        let (srv, _, student) = server_with_lab();
        srv.save_code(student, "echo", ECHO, 100).unwrap();
        let view = srv.run_dataset(student, "echo", 0, 200).unwrap();
        assert!(view.passed, "{}", view.report);
        assert!(view.report.contains("correct"));
    }

    #[test]
    fn run_dataset_reports_mismatch() {
        let (srv, _, student) = server_with_lab();
        let buggy = ECHO.replace("wbSolution(a, n)", "a[0] = 99.0; wbSolution(a, n)");
        srv.save_code(student, "echo", &buggy, 100).unwrap();
        let view = srv.run_dataset(student, "echo", 0, 200).unwrap();
        assert!(!view.passed);
        assert!(view.report.contains("differs"));
    }

    #[test]
    fn submit_scores_with_rubric() {
        let (srv, _, student) = server_with_lab();
        srv.save_code(student, "echo", ECHO, 100).unwrap();
        let sub = srv.submit(student, "echo", 200).unwrap();
        assert!(sub.compiled);
        assert_eq!(sub.passed, 1);
        // 10 compile + 80 datasets = 90 (10 question points pending).
        assert!((sub.score - 90.0).abs() < 1e-9);
    }

    #[test]
    fn rate_limit_kicks_in() {
        let (srv, _, student) = server_with_lab();
        srv.save_code(student, "echo", ECHO, 0).unwrap();
        // Default burst is 3.
        for k in 0..3 {
            srv.compile(student, "echo", k).unwrap();
        }
        let err = srv.compile(student, "echo", 4).unwrap_err();
        assert!(matches!(err, ServerError::RateLimited(_)));
    }

    #[test]
    fn questions_answered_and_graded() {
        let (srv, staff, student) = server_with_lab();
        srv.answer_questions(student, "echo", vec!["rayleigh scattering".into()])
            .unwrap();
        // Wrong count rejected.
        assert!(srv
            .answer_questions(student, "echo", vec!["a".into(), "b".into()])
            .is_err());
        srv.grade_questions(staff, "alice", "echo", 8.0, Some("good".into()))
            .unwrap();
        // Students cannot grade.
        assert!(srv
            .grade_questions(student, "alice", "echo", 10.0, None)
            .is_err());
    }

    #[test]
    fn roster_aggregates_best_scores() {
        let (srv, staff, student) = server_with_lab();
        srv.save_code(student, "echo", "int main( {", 0).unwrap();
        srv.submit(student, "echo", 1).unwrap(); // fails: 0 points
        srv.save_code(student, "echo", ECHO, 100_000).unwrap();
        srv.submit(student, "echo", 200_000).unwrap(); // 90 points
        srv.answer_questions(student, "echo", vec!["x".into()])
            .unwrap();
        srv.grade_questions(staff, "alice", "echo", 7.5, None)
            .unwrap();
        let roster = srv.roster(staff, "echo").unwrap();
        assert_eq!(roster.len(), 1);
        let row = &roster[0];
        assert_eq!(row.submissions, 2);
        assert!((row.program_grade - 90.0).abs() < 1e-9);
        assert!((row.question_grade - 7.5).abs() < 1e-9);
        assert!((row.total_grade - 97.5).abs() < 1e-9);
        // Students cannot see the roster.
        assert!(srv.roster(student, "echo").is_err());
    }

    #[test]
    fn grade_override_applies() {
        let (srv, staff, student) = server_with_lab();
        srv.save_code(student, "echo", ECHO, 0).unwrap();
        srv.submit(student, "echo", 1).unwrap();
        let ids = srv.state.submissions.find("by_lab", "echo").unwrap();
        srv.override_grade(staff, ids[0], 100.0).unwrap();
        let roster = srv.roster(staff, "echo").unwrap();
        assert!((roster[0].program_grade - 100.0).abs() < 1e-9);
    }

    #[test]
    fn share_only_after_deadline() {
        let (srv, staff, student) = server_with_lab();
        let _ = staff;
        srv.save_code(student, "echo", ECHO, 0).unwrap();
        let view = srv.compile(student, "echo", 1).unwrap();
        let before = srv.share_attempt(student, view.attempt_id, 1000);
        assert!(before.is_err(), "deadline not passed");
        let deadline = 7 * 24 * 3600 * 1000;
        let token = srv
            .share_attempt(student, view.attempt_id, deadline + 1)
            .unwrap();
        assert!(token > 0);
    }

    #[test]
    fn cannot_share_others_attempts() {
        let (srv, _, student) = server_with_lab();
        srv.register_student("bob", "pw").unwrap();
        let bob = srv.login("bob", "pw", DeviceKind::Desktop, 0).unwrap();
        srv.save_code(student, "echo", ECHO, 0).unwrap();
        let view = srv.compile(student, "echo", 1).unwrap();
        let err = srv
            .share_attempt(bob, view.attempt_id, u64::MAX)
            .unwrap_err();
        assert!(matches!(err, ServerError::Invalid(_)));
    }

    #[test]
    fn description_renders_markdown_and_rubric() {
        let (srv, _, _) = server_with_lab();
        let html = srv.lab_description_html("echo").unwrap();
        assert!(html.contains("<h1>Test</h1>"));
        assert!(html.contains("<h2>Grading</h2>"));
    }

    #[test]
    fn unknown_lab_rejected_everywhere() {
        let (srv, _, student) = server_with_lab();
        assert!(matches!(
            srv.save_code(student, "nope", "x", 0).unwrap_err(),
            ServerError::NoSuchLab(_)
        ));
        assert!(srv.lab_description_html("nope").is_err());
    }
}
