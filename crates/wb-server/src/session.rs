//! Accounts and browser sessions.
//!
//! Students only need a web browser (§II-B); sessions are bearer
//! tokens minted at login. Password hashing is a salted FNV — fine for
//! a simulation, clearly **not** a production KDF, and isolated here so
//! swapping it would be a one-line change.

use crate::state::{DeviceKind, LoginRec, Role, ServerState, UserRec};
use parking_lot::RwLock;
use std::collections::HashMap;

/// An authenticated session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Session {
    /// Bearer token.
    pub token: u64,
    /// Logged-in user name.
    pub user: String,
    /// Role at login.
    pub role: Role,
}

/// Session manager over the user table.
#[derive(Default)]
pub struct Sessions {
    live: RwLock<HashMap<u64, Session>>,
    counter: RwLock<u64>,
}

/// Authentication errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuthError {
    /// Unknown user or wrong password (indistinguishable on purpose).
    BadCredentials,
    /// Token not recognized (expired or forged).
    BadToken,
    /// The user exists already (registration).
    UserExists,
    /// Operation requires the instructor role.
    NotInstructor,
}

impl std::fmt::Display for AuthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuthError::BadCredentials => write!(f, "invalid user name or password"),
            AuthError::BadToken => write!(f, "session expired or invalid"),
            AuthError::UserExists => write!(f, "user already exists"),
            AuthError::NotInstructor => write!(f, "instructor access required"),
        }
    }
}

impl Sessions {
    /// Fresh manager.
    pub fn new() -> Self {
        Sessions::default()
    }

    /// Register a user. Anyone may sign up (the paper notes this is
    /// exactly why the cluster-sharing model fails, §III).
    pub fn register(
        &self,
        state: &ServerState,
        name: &str,
        password: &str,
        role: Role,
    ) -> Result<(), AuthError> {
        if !state
            .users
            .find("by_name", name)
            .unwrap_or_default()
            .is_empty()
        {
            return Err(AuthError::UserExists);
        }
        state
            .users
            .insert(&UserRec {
                name: name.to_string(),
                pass_hash: hash_password(name, password),
                role,
                email: format!("{name}@students.example.edu"),
            })
            .map_err(|_| AuthError::UserExists)?;
        Ok(())
    }

    /// Log in, recording the device kind for the login-mix statistic.
    pub fn login(
        &self,
        state: &ServerState,
        name: &str,
        password: &str,
        device: DeviceKind,
        now_ms: u64,
    ) -> Result<Session, AuthError> {
        let ids = state
            .users
            .find("by_name", name)
            .map_err(|_| AuthError::BadCredentials)?;
        let id = *ids.first().ok_or(AuthError::BadCredentials)?;
        let user = state.users.get(id).map_err(|_| AuthError::BadCredentials)?;
        if user.pass_hash != hash_password(name, password) {
            return Err(AuthError::BadCredentials);
        }
        state
            .logins
            .insert(&LoginRec {
                user: name.to_string(),
                device,
                at_ms: now_ms,
            })
            .ok();
        let mut counter = self.counter.write();
        *counter += 1;
        // Token mixes a counter with the user hash: unique and
        // unguessable enough for the simulation.
        let token = (*counter << 20) ^ hash_password(name, "token-salt");
        let session = Session {
            token,
            user: name.to_string(),
            role: user.role,
        };
        self.live.write().insert(token, session.clone());
        Ok(session)
    }

    /// Resolve a bearer token.
    pub fn authenticate(&self, token: u64) -> Result<Session, AuthError> {
        self.live
            .read()
            .get(&token)
            .cloned()
            .ok_or(AuthError::BadToken)
    }

    /// Resolve a token and require the instructor role.
    pub fn authenticate_instructor(&self, token: u64) -> Result<Session, AuthError> {
        let s = self.authenticate(token)?;
        if s.role != Role::Instructor {
            return Err(AuthError::NotInstructor);
        }
        Ok(s)
    }

    /// Invalidate a session.
    pub fn logout(&self, token: u64) {
        self.live.write().remove(&token);
    }

    /// Number of live sessions.
    pub fn live_count(&self) -> usize {
        self.live.read().len()
    }
}

fn hash_password(name: &str, password: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes().chain([0u8]).chain(password.bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (ServerState, Sessions) {
        let st = ServerState::new();
        let s = Sessions::new();
        s.register(&st, "alice", "hunter2", Role::Student).unwrap();
        s.register(&st, "prof", "tenure", Role::Instructor).unwrap();
        (st, s)
    }

    #[test]
    fn register_login_authenticate() {
        let (st, s) = setup();
        let sess = s
            .login(&st, "alice", "hunter2", DeviceKind::Desktop, 0)
            .unwrap();
        let back = s.authenticate(sess.token).unwrap();
        assert_eq!(back.user, "alice");
        assert_eq!(back.role, Role::Student);
    }

    #[test]
    fn wrong_password_rejected() {
        let (st, s) = setup();
        assert_eq!(
            s.login(&st, "alice", "wrong", DeviceKind::Desktop, 0),
            Err(AuthError::BadCredentials)
        );
        assert_eq!(
            s.login(&st, "nobody", "x", DeviceKind::Desktop, 0),
            Err(AuthError::BadCredentials)
        );
    }

    #[test]
    fn duplicate_registration_rejected() {
        let (st, s) = setup();
        assert_eq!(
            s.register(&st, "alice", "again", Role::Student),
            Err(AuthError::UserExists)
        );
    }

    #[test]
    fn logout_invalidates() {
        let (st, s) = setup();
        let sess = s
            .login(&st, "alice", "hunter2", DeviceKind::Phone, 0)
            .unwrap();
        assert_eq!(s.live_count(), 1);
        s.logout(sess.token);
        assert_eq!(s.authenticate(sess.token), Err(AuthError::BadToken));
        assert_eq!(s.live_count(), 0);
    }

    #[test]
    fn instructor_gate() {
        let (st, s) = setup();
        let student = s
            .login(&st, "alice", "hunter2", DeviceKind::Desktop, 0)
            .unwrap();
        let staff = s
            .login(&st, "prof", "tenure", DeviceKind::Desktop, 0)
            .unwrap();
        assert_eq!(
            s.authenticate_instructor(student.token),
            Err(AuthError::NotInstructor)
        );
        assert!(s.authenticate_instructor(staff.token).is_ok());
    }

    #[test]
    fn logins_recorded_with_device() {
        let (st, s) = setup();
        s.login(&st, "alice", "hunter2", DeviceKind::Tablet, 5)
            .unwrap();
        s.login(&st, "alice", "hunter2", DeviceKind::Desktop, 6)
            .unwrap();
        let logins = st.logins.find("by_user", "alice").unwrap();
        assert_eq!(logins.len(), 2);
        assert!(st.mobile_login_fraction() > 0.0);
    }

    #[test]
    fn tokens_are_unique() {
        let (st, s) = setup();
        let a = s
            .login(&st, "alice", "hunter2", DeviceKind::Desktop, 0)
            .unwrap();
        let b = s
            .login(&st, "alice", "hunter2", DeviceKind::Desktop, 1)
            .unwrap();
        assert_ne!(a.token, b.token);
    }
}
