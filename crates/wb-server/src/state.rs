//! Server-side record types and the database schema.
//!
//! §III-A: the web server *"automatically saves all student code, and
//! their compilation and execution status, and previous attempts so
//! that a user can backtrack to earlier versions of their code."*

use serde::{Deserialize, Serialize};
use wb_db::Table;

/// How a login reached the site (the paper reports ~2% of logins come
/// from tablets and smartphones, §II-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeviceKind {
    /// Desktop/laptop browser.
    Desktop,
    /// Tablet browser.
    Tablet,
    /// Smartphone browser.
    Phone,
}

/// User roles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Role {
    /// Enrolled student.
    Student,
    /// Course staff: roster access, grade overrides, comments.
    Instructor,
}

/// A registered user.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserRec {
    /// Unique login name.
    pub name: String,
    /// Salted password hash (simulation-grade, see `session`).
    pub pass_hash: u64,
    /// Role.
    pub role: Role,
    /// Email shown on the roster.
    pub email: String,
}

/// One saved code revision (§IV-A action 1: the editor autosaves).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RevisionRec {
    /// Owner.
    pub user: String,
    /// Lab id.
    pub lab: String,
    /// Virtual ms when saved.
    pub at_ms: u64,
    /// Full source at this revision.
    pub source: String,
}

/// One run against a test dataset (§IV-B: "each attempt is stored under
/// the Attempts view").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttemptRec {
    /// Owner.
    pub user: String,
    /// Lab id.
    pub lab: String,
    /// Dataset index run against (None = compile only).
    pub dataset: Option<usize>,
    /// Virtual ms of the attempt.
    pub at_ms: u64,
    /// Did it compile?
    pub compiled: bool,
    /// Did the output match?
    pub passed: bool,
    /// Student-facing summary line.
    pub summary: String,
    /// The code as it was for this attempt.
    pub source: String,
    /// Public share token, mintable after the deadline (§IV-B).
    pub share_token: Option<u64>,
}

/// A graded submission (§IV-A action 5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubmissionRec {
    /// Owner.
    pub user: String,
    /// Lab id.
    pub lab: String,
    /// Virtual ms of submission.
    pub at_ms: u64,
    /// Datasets passed / total.
    pub passed: usize,
    /// Total datasets graded.
    pub total: usize,
    /// Compiled successfully?
    pub compiled: bool,
    /// Rubric score (0..=max per the lab config).
    pub score: f64,
    /// Instructor override, if any (§IV-F).
    pub override_score: Option<f64>,
    /// Source graded.
    pub source: String,
}

impl SubmissionRec {
    /// Effective score after any instructor override.
    pub fn effective_score(&self) -> f64 {
        self.override_score.unwrap_or(self.score)
    }
}

/// Short-answer responses (§IV-B component 3). Not auto-graded.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnswerRec {
    /// Owner.
    pub user: String,
    /// Lab id.
    pub lab: String,
    /// One answer per configured question.
    pub answers: Vec<String>,
    /// Instructor-assigned question score.
    pub question_score: Option<f64>,
    /// Instructor comment (§IV-F).
    pub comment: Option<String>,
}

/// A peer-review assignment (§IV-D).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeerReviewRec {
    /// Lab id.
    pub lab: String,
    /// Student doing the review.
    pub reviewer: String,
    /// Student whose submission is reviewed.
    pub reviewee: String,
    /// Completed review text, when done.
    pub review: Option<String>,
}

/// A login event (feeds the device-mix statistic).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoginRec {
    /// User.
    pub user: String,
    /// Device used.
    pub device: DeviceKind,
    /// Virtual ms.
    pub at_ms: u64,
}

/// All server tables, with the indexes the views query.
pub struct ServerState {
    /// Users by id.
    pub users: Table<UserRec>,
    /// Code revisions.
    pub revisions: Table<RevisionRec>,
    /// Attempts.
    pub attempts: Table<AttemptRec>,
    /// Graded submissions.
    pub submissions: Table<SubmissionRec>,
    /// Short answers.
    pub answers: Table<AnswerRec>,
    /// Peer reviews.
    pub peer_reviews: Table<PeerReviewRec>,
    /// Login events.
    pub logins: Table<LoginRec>,
}

impl Default for ServerState {
    fn default() -> Self {
        Self::new()
    }
}

impl ServerState {
    /// Fresh state with all indexes created.
    pub fn new() -> Self {
        let users: Table<UserRec> = Table::new();
        users.create_index("by_name", |u: &UserRec| u.name.clone());

        let revisions: Table<RevisionRec> = Table::new();
        revisions.create_index("by_user_lab", |r: &RevisionRec| {
            format!("{}/{}", r.user, r.lab)
        });

        let attempts: Table<AttemptRec> = Table::new();
        attempts.create_index("by_user_lab", |a: &AttemptRec| {
            format!("{}/{}", a.user, a.lab)
        });

        let submissions: Table<SubmissionRec> = Table::new();
        submissions.create_index("by_user_lab", |s: &SubmissionRec| {
            format!("{}/{}", s.user, s.lab)
        });
        submissions.create_index("by_lab", |s: &SubmissionRec| s.lab.clone());

        let answers: Table<AnswerRec> = Table::new();
        answers.create_index("by_user_lab", |a: &AnswerRec| {
            format!("{}/{}", a.user, a.lab)
        });

        let peer_reviews: Table<PeerReviewRec> = Table::new();
        peer_reviews.create_index("by_reviewer_lab", |p: &PeerReviewRec| {
            format!("{}/{}", p.reviewer, p.lab)
        });
        peer_reviews.create_index("by_reviewee_lab", |p: &PeerReviewRec| {
            format!("{}/{}", p.reviewee, p.lab)
        });

        let logins: Table<LoginRec> = Table::new();
        logins.create_index("by_user", |l: &LoginRec| l.user.clone());

        ServerState {
            users,
            revisions,
            attempts,
            submissions,
            answers,
            peer_reviews,
            logins,
        }
    }

    /// Fraction of logins from tablets/phones (the §II-B statistic).
    pub fn mobile_login_fraction(&self) -> f64 {
        let all = self.logins.scan();
        if all.is_empty() {
            return 0.0;
        }
        let mobile = all
            .iter()
            .filter(|(_, l)| matches!(l.device, DeviceKind::Tablet | DeviceKind::Phone))
            .count();
        mobile as f64 / all.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_builds_with_indexes() {
        let st = ServerState::new();
        st.users
            .insert(&UserRec {
                name: "alice".into(),
                pass_hash: 1,
                role: Role::Student,
                email: "a@example.edu".into(),
            })
            .unwrap();
        assert_eq!(st.users.find("by_name", "alice").unwrap().len(), 1);
    }

    #[test]
    fn effective_score_prefers_override() {
        let mut s = SubmissionRec {
            user: "a".into(),
            lab: "l".into(),
            at_ms: 0,
            passed: 1,
            total: 2,
            compiled: true,
            score: 50.0,
            override_score: None,
            source: String::new(),
        };
        assert_eq!(s.effective_score(), 50.0);
        s.override_score = Some(80.0);
        assert_eq!(s.effective_score(), 80.0);
    }

    #[test]
    fn mobile_fraction_computed() {
        let st = ServerState::new();
        for (i, d) in [
            DeviceKind::Desktop,
            DeviceKind::Desktop,
            DeviceKind::Phone,
            DeviceKind::Tablet,
        ]
        .iter()
        .enumerate()
        {
            st.logins
                .insert(&LoginRec {
                    user: format!("u{i}"),
                    device: *d,
                    at_ms: 0,
                })
                .unwrap();
        }
        assert!((st.mobile_login_fraction() - 0.5).abs() < 1e-9);
        assert_eq!(ServerState::new().mobile_login_fraction(), 0.0);
    }
}
