//! The worker's instantiation of the generic submission cache.
//!
//! `wb-cache` sits below this crate and is generic over the grade
//! value; here it is pinned to [`DatasetOutcome`] and given a weigher
//! so the LRU byte budget reflects what an outcome actually holds
//! (log text, timing report, mismatch list).

use crate::job::DatasetOutcome;
use std::sync::Arc;
use wb_cache::CacheConfig;

/// The cluster-wide cache type shared by every worker node.
pub type SubmissionCache = wb_cache::SubmissionCache<DatasetOutcome>;

/// Approximate resident size of a grade outcome in bytes. The fixed
/// term covers the struct itself plus the cost counters; the variable
/// terms cover the heap-owned text and mismatch list.
pub fn dataset_outcome_weight(outcome: &DatasetOutcome) -> usize {
    let check = outcome.check.as_ref().map_or(0, |c| {
        48 + c.mismatches.len() * std::mem::size_of::<libwb::check::Mismatch>()
            + c.shape_error.as_ref().map_or(0, String::len)
    });
    let error = outcome.error.as_ref().map_or(0, |e| 32 + e.message.len());
    192 + outcome.name.len() + outcome.log_text.len() + outcome.timing_text.len() + check + error
}

/// Build a shareable submission cache for a cluster.
pub fn new_submission_cache(config: CacheConfig) -> Arc<SubmissionCache> {
    Arc::new(wb_cache::SubmissionCache::new(
        config,
        dataset_outcome_weight,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_tracks_payload_size() {
        let small = DatasetOutcome {
            name: "d".into(),
            check: None,
            error: None,
            cost: Default::default(),
            elapsed_cycles: 0,
            log_text: String::new(),
            timing_text: String::new(),
        };
        let mut big = small.clone();
        big.log_text = "x".repeat(10_000);
        assert!(dataset_outcome_weight(&big) > dataset_outcome_weight(&small) + 9_000);
    }
}
