//! Remote worker configuration (§VI-B).
//!
//! *"The worker node is also connected to a remote configuration
//! system. This allows all worker nodes to be remotely configured
//! uniformly. A change in the remote configuration triggers the worker
//! node to restart the main driver."*

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use wb_queue::CapabilitySet;

/// The configuration pushed to every worker.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerConfig {
    /// Monotonic version; bumped on every change.
    pub version: u64,
    /// Capability tags this fleet advertises to the broker.
    pub capabilities: CapabilitySet,
    /// Container image name workers should pool.
    pub image: String,
    /// Warm containers to keep per worker.
    pub pool_target: usize,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        WorkerConfig {
            version: 1,
            capabilities: ["cuda"].into(),
            image: "webgpu/cuda".to_string(),
            pool_target: 2,
        }
    }
}

/// The shared configuration service all workers watch.
#[derive(Debug, Default)]
pub struct ConfigServer {
    current: RwLock<WorkerConfig>,
}

impl ConfigServer {
    /// Start with a configuration.
    pub fn new(config: WorkerConfig) -> Self {
        ConfigServer {
            current: RwLock::new(config),
        }
    }

    /// Current configuration (workers poll this).
    pub fn get(&self) -> WorkerConfig {
        self.current.read().clone()
    }

    /// Publish a new configuration; the version is bumped
    /// automatically so watchers see the change.
    pub fn publish(&self, mut config: WorkerConfig) -> u64 {
        let mut g = self.current.write();
        config.version = g.version + 1;
        let v = config.version;
        *g = config;
        v
    }

    /// Convenience: mutate the current config in place and republish.
    pub fn update(&self, f: impl FnOnce(&mut WorkerConfig)) -> u64 {
        let mut g = self.current.write();
        let mut next = g.clone();
        f(&mut next);
        next.version = g.version + 1;
        let v = next.version;
        *g = next;
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_bumps_version() {
        let s = ConfigServer::new(WorkerConfig::default());
        assert_eq!(s.get().version, 1);
        let v = s.publish(WorkerConfig {
            image: "webgpu/full".into(),
            ..WorkerConfig::default()
        });
        assert_eq!(v, 2);
        assert_eq!(s.get().image, "webgpu/full");
    }

    #[test]
    fn update_in_place() {
        let s = ConfigServer::new(WorkerConfig::default());
        s.update(|c| {
            c.capabilities.insert("mpi".into());
        });
        assert!(s.get().capabilities.contains("mpi"));
        assert_eq!(s.get().version, 2);
    }

    #[test]
    fn default_config_advertises_cuda() {
        let c = WorkerConfig::default();
        assert!(c.capabilities.contains("cuda"));
        assert!(c.pool_target >= 1);
    }
}
