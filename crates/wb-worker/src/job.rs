//! Job and result envelopes exchanged between the web server / queue
//! and worker nodes.

use libwb::{CheckPolicy, CheckReport, Dataset};
use minicuda::{AnalysisPolicy, CostSummary, Diag, Dialect, Finding};
use serde::{Deserialize, Serialize};
use wb_queue::CapabilitySet;
use wb_sandbox::{Blacklist, ResourceLimits, SyscallWhitelist};

/// One test dataset: the inputs handed to the program and the expected
/// output the worker evaluates against.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetCase {
    /// Human-visible name ("dataset 3").
    pub name: String,
    /// Program inputs, in `wbImport` index order.
    pub inputs: Vec<Dataset>,
    /// Expected solution.
    pub expected: Dataset,
}

/// Everything the instructor configured that the worker needs: the
/// "configurations specified by the lab" of §III-C.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LabSpec {
    /// Lab identifier (catalog key).
    pub lab_id: String,
    /// Course offering the lab — the fair-share scheduler's
    /// arbitration key.
    pub course: String,
    /// Language surface.
    pub dialect: Dialect,
    /// Compile-time blacklist.
    pub blacklist: Blacklist,
    /// Runtime syscall whitelist.
    pub whitelist: SyscallWhitelist,
    /// Execution budgets.
    pub limits: ResourceLimits,
    /// Float comparison policy for grading.
    pub check: CheckPolicy,
    /// Capability tags a worker must have (`mpi`, `multi-gpu`).
    pub tags: CapabilitySet,
    /// Toolchain the container image must provide.
    pub toolchain: String,
    /// Middle-end level kernels compile at. Part of the compile cache
    /// key: a grade produced at one level is never served for another.
    #[serde(default)]
    pub opt_level: minicuda::OptLevel,
    /// Static-verifier policy for this lab: `Off` skips the verifier,
    /// `Warn` (the default) attaches findings without touching the
    /// grade, `Deny` rejects flagged submissions before any dataset
    /// runs.
    #[serde(default)]
    pub analysis: AnalysisPolicy,
}

impl LabSpec {
    /// A reasonable default CUDA lab spec for tests.
    pub fn cuda_test(lab_id: impl Into<String>) -> Self {
        LabSpec {
            lab_id: lab_id.into(),
            course: "default".to_string(),
            dialect: Dialect::Cuda,
            blacklist: Blacklist::standard(),
            whitelist: SyscallWhitelist::cuda_default(),
            limits: ResourceLimits::default(),
            check: CheckPolicy::default(),
            tags: CapabilitySet::new(),
            toolchain: "cuda".to_string(),
            opt_level: minicuda::OptLevel::default(),
            analysis: AnalysisPolicy::default(),
        }
    }
}

/// What the student asked for (§IV-A actions 2, 3, and 5).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobAction {
    /// Action 2: compile only, report errors.
    CompileOnly,
    /// Action 3: run against one instructor dataset.
    RunDataset(usize),
    /// Action 5: full grading run over all datasets.
    FullGrade,
}

/// A job as dispatched to a worker.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobRequest {
    /// Platform-wide job id.
    pub job_id: u64,
    /// Submitting user (audit trail).
    pub user: String,
    /// Student source code.
    pub source: String,
    /// Lab configuration.
    pub spec: LabSpec,
    /// Instructor datasets (the worker only runs the requested ones).
    pub datasets: Vec<DatasetCase>,
    /// Requested action.
    pub action: JobAction,
}

/// Result of one dataset run.
///
/// `PartialEq` is part of the cache's contract: the hit ≡ fresh
/// property test asserts a cached outcome is indistinguishable from a
/// recomputed one, field by field.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetOutcome {
    /// Dataset name.
    pub name: String,
    /// Comparison against the expected output (absent when the program
    /// failed before producing a solution).
    pub check: Option<CheckReport>,
    /// Runtime error, if the run failed.
    pub error: Option<Diag>,
    /// Cost counters for the run.
    pub cost: CostSummary,
    /// Virtual elapsed device cycles.
    pub elapsed_cycles: u64,
    /// Captured log text shown in the attempt view.
    pub log_text: String,
    /// `wbTime` report text.
    pub timing_text: String,
}

impl DatasetOutcome {
    /// True when the run completed and matched the expected output.
    pub fn passed(&self) -> bool {
        self.error.is_none() && self.check.as_ref().is_some_and(CheckReport::passed)
    }
}

/// The worker's reply for a whole job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobOutcome {
    /// Echoed job id.
    pub job_id: u64,
    /// Worker that executed it.
    pub worker_id: u64,
    /// Compile error (blacklist violation or compiler diagnostic);
    /// when set, no datasets were run.
    pub compile_error: Option<String>,
    /// Per-dataset outcomes in request order.
    pub datasets: Vec<DatasetOutcome>,
    /// Static-verifier findings. Under `Warn` they ride alongside an
    /// otherwise untouched grade; under `Deny` they explain the
    /// `compile_error`. Always empty when the lab's policy is `Off`.
    #[serde(default)]
    pub analysis: Vec<Finding>,
    /// Virtual milliseconds spent waiting for a container.
    pub container_wait_ms: u64,
}

impl JobOutcome {
    /// True when compilation succeeded.
    pub fn compiled(&self) -> bool {
        self.compile_error.is_none()
    }

    /// Number of datasets that passed.
    pub fn passed_count(&self) -> usize {
        self.datasets.iter().filter(|d| d.passed()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_is_sane() {
        let s = LabSpec::cuda_test("vecadd");
        assert_eq!(s.lab_id, "vecadd");
        assert_eq!(s.dialect, Dialect::Cuda);
        assert!(s.tags.is_empty());
    }

    #[test]
    fn outcome_pass_logic() {
        let mut o = DatasetOutcome {
            name: "d0".into(),
            check: Some(libwb::check::compare(
                &Dataset::Scalar(1.0),
                &Dataset::Scalar(1.0),
                &CheckPolicy::default(),
            )),
            error: None,
            cost: CostSummary::default(),
            elapsed_cycles: 0,
            log_text: String::new(),
            timing_text: String::new(),
        };
        assert!(o.passed());
        o.error = Some(minicuda::Diag::nowhere(minicuda::Phase::Runtime, "boom"));
        assert!(!o.passed());
        o.error = None;
        o.check = None;
        assert!(!o.passed());
    }
}
