//! `wb-worker` — the GPU worker node.
//!
//! §III-C: *"Upon a user program submission, the web-server selects a
//! single worker node and sends user code along with configurations
//! specified by the lab. The worker node then compiles, executes, and
//! evaluates the code using the datasets provided by the instructor.
//! … An additional task is for the worker node to send regular health
//! checks to the web-server."*
//!
//! §VI-B adds the v2 internals: a driver that polls the job queue,
//! holds a pool of containers mapped onto the node's GPUs, and restarts
//! when the remote configuration changes.
//!
//! This crate provides:
//!
//! * the job/result envelope types ([`job`]);
//! * the compile → sandbox → execute → evaluate pipeline ([`pipeline`]);
//! * the node itself, supporting both the v1 push interface and the v2
//!   queue-polling driver ([`node`]);
//! * remote configuration with restart-on-change ([`config`]);
//! * the cluster-wide submission cache instantiation ([`cache`]):
//!   `wb-cache`'s generic cache pinned to this crate's
//!   [`job::DatasetOutcome`].

pub mod cache;
pub mod config;
pub mod job;
pub mod node;
pub mod pipeline;

pub use cache::{dataset_outcome_weight, new_submission_cache, SubmissionCache};
pub use config::{ConfigServer, WorkerConfig};
pub use job::{DatasetCase, JobAction, JobOutcome, JobRequest, LabSpec};
pub use node::{default_shards, HealthBeat, NodeConfig, WorkerNode};
pub use pipeline::{
    compile_phase, execute_job, execute_job_cached, execute_job_cached_traced, execute_job_traced,
    run_dataset_case,
};
pub use wb_queue::{Capability, CapabilitySet};
