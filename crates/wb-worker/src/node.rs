//! The worker node: v1 push interface, v2 queue-polling driver,
//! health checks, container pool, and restart-on-config-change.

use crate::cache::SubmissionCache;
use crate::config::{ConfigServer, WorkerConfig};
use crate::job::{JobOutcome, JobRequest};
use crate::pipeline::{execute_job_cached_traced, execute_job_traced};
use minicuda::DeviceConfig;
use parking_lot::Mutex;
use std::sync::Arc;
use wb_obs::{Annotation, JobPhase, Recorder};
use wb_queue::{BrokerHandle, CapabilitySet};
use wb_sandbox::{ContainerPool, Image};

/// A health check emitted periodically to the web server (v1) or
/// written to the metrics database (v2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthBeat {
    /// Reporting worker.
    pub worker_id: u64,
    /// Virtual ms at emission.
    pub at_ms: u64,
    /// Jobs completed so far.
    pub jobs_done: u64,
    /// Driver restarts so far.
    pub restarts: u64,
}

struct NodeState {
    config_version: u64,
    capabilities: CapabilitySet,
    pool: ContainerPool,
    jobs_done: u64,
    restarts: u64,
    /// When true the node stops heartbeating and refuses work
    /// (fault-injection switch).
    crashed: bool,
    /// When true the node vanishes at its *next* poll: it takes one
    /// delivery off the broker and goes dark without executing or
    /// acking it — the spot-instance preemption model, where the
    /// reclaim notice lands while a job is already in hand.
    preempting: bool,
    /// Accumulated virtual busy milliseconds (utilization metric).
    busy_ms: u64,
}

/// Everything a node needs to come up: device, worker configuration,
/// and the optional cluster-shared cache and recorder. One value
/// describes a whole fleet — clusters keep a `NodeConfig` and stamp out
/// workers with [`WorkerNode::launch`].
#[derive(Clone)]
pub struct NodeConfig {
    /// Simulated GPU the node drives.
    pub device: DeviceConfig,
    /// Remote worker configuration (image, capabilities, pool target).
    pub worker: WorkerConfig,
    /// Cluster-wide submission cache; `None` runs every job fresh
    /// (the pre-cache behaviour, kept as the bench baseline).
    pub cache: Option<Arc<SubmissionCache>>,
    /// Cluster-wide trace/metrics recorder (noop for untraced fleets).
    pub obs: Arc<Recorder>,
    /// Control-plane lanes for the cluster this node belongs to: how
    /// many per-course broker/scheduler shards the submission path is
    /// split into. Workers don't read it directly — the cluster that
    /// stamps out the fleet does. Defaults to the host's available
    /// cores ([`default_shards`]); 1 reproduces the single-lane
    /// control plane exactly.
    pub shards: usize,
}

impl NodeConfig {
    /// A plain node: default worker config, no cache, noop recorder,
    /// one control-plane shard per available core.
    pub fn new(device: DeviceConfig) -> Self {
        NodeConfig {
            device,
            worker: WorkerConfig::default(),
            cache: None,
            obs: Arc::new(Recorder::noop()),
            shards: default_shards(),
        }
    }
}

/// The default control-plane shard count: one lane per core the host
/// exposes, so the control plane scales with the machine (1 when the
/// parallelism probe fails).
pub fn default_shards() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// One worker node with a simulated GPU.
pub struct WorkerNode {
    id: u64,
    device: DeviceConfig,
    /// Cluster-wide submission cache; `None` runs every job fresh
    /// (the pre-cache behaviour, kept as the bench baseline).
    cache: Option<Arc<SubmissionCache>>,
    /// Cluster-wide trace/metrics recorder (noop by default).
    obs: Arc<Recorder>,
    state: Mutex<NodeState>,
}

impl WorkerNode {
    /// Boot a node against the current remote configuration.
    pub fn boot(id: u64, device: DeviceConfig, config: &WorkerConfig) -> Self {
        Self::boot_inner(id, device, config, None, Arc::new(Recorder::noop()))
    }

    /// Boot a node from a [`NodeConfig`] — the one constructor that
    /// covers cached, traced, and plain nodes alike.
    pub fn launch(id: u64, cfg: &NodeConfig) -> Self {
        Self::boot_inner(
            id,
            cfg.device.clone(),
            &cfg.worker,
            cfg.cache.clone(),
            Arc::clone(&cfg.obs),
        )
    }

    fn boot_inner(
        id: u64,
        device: DeviceConfig,
        config: &WorkerConfig,
        cache: Option<Arc<SubmissionCache>>,
        obs: Arc<Recorder>,
    ) -> Self {
        WorkerNode {
            id,
            device,
            cache,
            obs,
            state: Mutex::new(NodeState {
                config_version: config.version,
                capabilities: config.capabilities.clone(),
                pool: ContainerPool::new(image_by_name(&config.image), config.pool_target),
                jobs_done: 0,
                restarts: 0,
                crashed: false,
                preempting: false,
                busy_ms: 0,
            }),
        }
    }

    /// Node id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Advertised capability tags.
    pub fn capabilities(&self) -> CapabilitySet {
        self.state.lock().capabilities.clone()
    }

    /// Jobs completed.
    pub fn jobs_done(&self) -> u64 {
        self.state.lock().jobs_done
    }

    /// Driver restarts (config changes).
    pub fn restarts(&self) -> u64 {
        self.state.lock().restarts
    }

    /// Accumulated busy virtual milliseconds.
    pub fn busy_ms(&self) -> u64 {
        self.state.lock().busy_ms
    }

    /// Simulate a crash: stops heartbeats and work.
    pub fn crash(&self) {
        self.state.lock().crashed = true;
    }

    /// Simulate a spot preemption: the node keeps beating until its
    /// next broker poll, where it takes a delivery (if one matches),
    /// crashes without executing or acking it, and leaves the job in
    /// flight for the visibility timeout to reclaim. The harshest
    /// churn case — kill-with-work-in-hand — distilled to a flag.
    pub fn preempt(&self) {
        self.state.lock().preempting = true;
    }

    /// Bring a crashed or preempted node back.
    pub fn recover(&self) {
        let mut g = self.state.lock();
        g.crashed = false;
        g.preempting = false;
    }

    /// True when the node is down.
    pub fn is_crashed(&self) -> bool {
        self.state.lock().crashed
    }

    /// Emit a health check (None while crashed — the web server evicts
    /// nodes whose beats stop arriving, §III-C).
    pub fn health(&self, now_ms: u64) -> Option<HealthBeat> {
        let g = self.state.lock();
        if g.crashed {
            return None;
        }
        Some(HealthBeat {
            worker_id: self.id,
            at_ms: now_ms,
            jobs_done: g.jobs_done,
            restarts: g.restarts,
        })
    }

    /// Watch the remote configuration; on a version change the driver
    /// restarts: capabilities and the container pool are rebuilt
    /// (§VI-B). Returns true when a restart happened.
    pub fn sync_config(&self, server: &ConfigServer) -> bool {
        let config = server.get();
        let mut g = self.state.lock();
        if config.version == g.config_version {
            return false;
        }
        g.config_version = config.version;
        g.capabilities = config.capabilities.clone();
        g.pool = ContainerPool::new(image_by_name(&config.image), config.pool_target);
        g.restarts += 1;
        true
    }

    /// v1 push interface: the web server calls this directly.
    /// Returns `None` when the node is down (the caller treats it as a
    /// dispatch failure and retries elsewhere).
    pub fn submit(&self, req: &JobRequest, now_ms: u64) -> Option<JobOutcome> {
        {
            let g = self.state.lock();
            if g.crashed {
                return None;
            }
        }
        self.obs.phase(req.job_id, JobPhase::Dispatched, now_ms);
        Some(self.run(req, now_ms))
    }

    /// v2 pull interface: poll the broker once; execute and ack a job
    /// if one matches this node's capabilities. Generic over
    /// [`BrokerHandle`] so a mirrored broker's ack reaches every zone,
    /// not just the active one.
    pub fn poll_once(
        &self,
        broker: &impl BrokerHandle<JobRequest>,
        now_ms: u64,
    ) -> Option<JobOutcome> {
        let (caps, preempting) = {
            let g = self.state.lock();
            if g.crashed {
                return None;
            }
            (g.capabilities.clone(), g.preempting)
        };
        let delivery = broker.poll(&caps, now_ms);
        if preempting {
            // The node vanishes at this poll whether or not a job was
            // in hand. With a delivery taken, it goes dark without
            // executing, acking, or recording anything — the delivery
            // stays invisible until its timeout lapses, then redelivers
            // elsewhere with `attempts > 1`. The harshest churn case,
            // kill-with-work-in-hand, distilled to a flag.
            let mut g = self.state.lock();
            g.crashed = true;
            g.preempting = false;
            return None;
        }
        let delivery = delivery?;
        let job_id = delivery.payload.job_id;
        self.obs.phase(job_id, JobPhase::Dispatched, now_ms);
        if delivery.meta.attempts > 1 {
            // Visibility-timeout redelivery: this job already went out
            // at least once and came back unacked.
            self.obs.annotate(job_id, Annotation::Retry, now_ms);
        }
        let outcome = self.run(&delivery.payload, now_ms);
        broker.ack(delivery.meta.id);
        Some(outcome)
    }

    fn run(&self, req: &JobRequest, now_ms: u64) -> JobOutcome {
        // The container image must provide the lab's toolchain (§VI-B:
        // "a CUDA lab will not, for example, have the PGI OpenACC
        // tools"). A v1 cluster that pushes an MPI job to a CUDA-only
        // node hits exactly this failure.
        {
            let g = self.state.lock();
            if !g.pool.image().has(&req.spec.toolchain) {
                self.obs.phase(req.job_id, JobPhase::Failed, now_ms);
                return JobOutcome {
                    job_id: req.job_id,
                    worker_id: self.id,
                    compile_error: Some(format!(
                        "toolchain `{}` is not installed in image `{}` on worker {}",
                        req.spec.toolchain,
                        g.pool.image().name,
                        self.id
                    )),
                    datasets: Vec::new(),
                    analysis: Vec::new(),
                    container_wait_ms: 0,
                };
            }
        }
        // Check out a fresh container for the job (§VI-B: one job per
        // container, destroyed afterwards).
        let (container, wait_ms, image_name) = {
            let g = self.state.lock();
            let (c, w) = g.pool.checkout();
            (c, w, g.pool.image().name.clone())
        };
        let outcome = match &self.cache {
            Some(cache) => execute_job_cached_traced(
                req,
                &self.device,
                self.id,
                wait_ms,
                &image_name,
                cache,
                &self.obs,
                now_ms,
            ),
            None => execute_job_traced(req, &self.device, self.id, wait_ms, &self.obs, now_ms),
        };
        let busy: u64 = outcome
            .datasets
            .iter()
            .map(|d| d.elapsed_cycles / 1_000) // cycles → virtual ms at 1 MHz-ish
            .sum::<u64>()
            .max(1)
            + wait_ms;
        {
            let g = self.state.lock();
            g.pool.destroy(container);
        }
        let mut g = self.state.lock();
        g.jobs_done += 1;
        g.busy_ms += busy;
        outcome
    }
}

fn image_by_name(name: &str) -> Image {
    if name.contains("full") {
        Image::full()
    } else {
        Image::cuda()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{DatasetCase, JobAction, LabSpec};
    use libwb::Dataset;
    use wb_queue::Broker;

    fn trivial_request(job_id: u64) -> JobRequest {
        JobRequest {
            job_id,
            user: "alice".into(),
            source: r#"
                int main() {
                    int n;
                    float* a = wbImportVector(0, &n);
                    wbSolution(a, n);
                    return 0;
                }
            "#
            .to_string(),
            spec: LabSpec::cuda_test("identity"),
            datasets: vec![DatasetCase {
                name: "d0".into(),
                inputs: vec![Dataset::Vector(vec![1.0, 2.0])],
                expected: Dataset::Vector(vec![1.0, 2.0]),
            }],
            action: JobAction::FullGrade,
        }
    }

    fn node() -> WorkerNode {
        WorkerNode::boot(1, DeviceConfig::test_small(), &WorkerConfig::default())
    }

    #[test]
    fn push_submit_executes() {
        let n = node();
        let out = n.submit(&trivial_request(1), 0).expect("node is up");
        assert!(out.compiled());
        assert_eq!(out.passed_count(), 1);
        assert_eq!(n.jobs_done(), 1);
        assert!(n.busy_ms() >= 1);
    }

    #[test]
    fn crashed_node_refuses_work_and_heartbeats() {
        let n = node();
        assert!(n.health(0).is_some());
        n.crash();
        assert!(n.is_crashed());
        assert!(n.health(1).is_none());
        assert!(n.submit(&trivial_request(1), 0).is_none());
        n.recover();
        assert!(n.health(2).is_some());
        assert!(n.submit(&trivial_request(2), 0).is_some());
    }

    #[test]
    fn poll_respects_capabilities() {
        let broker: Broker<JobRequest> = Broker::new(10_000, 3);
        let mut req = trivial_request(1);
        req.spec.tags = ["mpi".to_string()].into_iter().collect();
        broker.enqueue(req.clone(), req.spec.tags.to_wire(), 0);
        let n = node(); // plain cuda worker
        assert!(n.poll_once(&broker, 1).is_none(), "mpi job skipped");
        // An MPI-capable node picks it up.
        let mut cfg = WorkerConfig::default();
        cfg.capabilities.insert("mpi".into());
        let mpi_node = WorkerNode::boot(2, DeviceConfig::test_small(), &cfg);
        let out = mpi_node
            .poll_once(&broker, 2)
            .expect("capable node took it");
        assert_eq!(out.worker_id, 2);
        assert_eq!(broker.depth(3), 0, "job acked");
    }

    #[test]
    fn preempted_node_strands_its_delivery_for_the_timeout() {
        let broker: Broker<JobRequest> = Broker::new(100, 3);
        let req = trivial_request(7);
        broker.enqueue(req, std::collections::BTreeSet::new(), 0);
        let n = node();
        n.preempt();
        assert!(n.health(0).is_some(), "beats continue until the poll");
        // The poll takes the delivery and vanishes: no outcome, no ack.
        assert!(n.poll_once(&broker, 1).is_none());
        assert!(n.is_crashed());
        assert_eq!(broker.in_flight(2), 1, "job stranded in flight");
        assert_eq!(broker.depth(2), 0);
        // Visibility lapses; a healthy node picks the job back up.
        let rescuer = WorkerNode::boot(2, DeviceConfig::test_small(), &WorkerConfig::default());
        let out = rescuer.poll_once(&broker, 101).expect("redelivered");
        assert_eq!(out.worker_id, 2);
        assert_eq!(broker.depth(102), 0, "acked after rescue");
        // Recovery clears both flags: the node polls normally again.
        n.recover();
        assert!(!n.is_crashed());
    }

    #[test]
    fn config_change_restarts_driver() {
        let server = ConfigServer::new(WorkerConfig::default());
        let n = WorkerNode::boot(1, DeviceConfig::test_small(), &server.get());
        assert!(!n.sync_config(&server), "same version: no restart");
        server.update(|c| c.image = "webgpu/full".into());
        assert!(n.sync_config(&server), "new version restarts");
        assert_eq!(n.restarts(), 1);
        assert!(!n.sync_config(&server), "idempotent until next change");
    }

    #[test]
    fn capability_update_applies_after_restart() {
        let server = ConfigServer::new(WorkerConfig::default());
        let n = WorkerNode::boot(1, DeviceConfig::test_small(), &server.get());
        assert!(!n.capabilities().contains("mpi"));
        server.update(|c| {
            c.capabilities.insert("mpi".into());
        });
        n.sync_config(&server);
        assert!(n.capabilities().contains("mpi"));
    }

    #[test]
    fn missing_toolchain_fails_before_any_work() {
        // §VI-B: "a CUDA lab will not, for example, have the PGI
        // OpenACC tools" — a job whose toolchain the image lacks is
        // rejected at intake, without consuming a container.
        let n = node(); // webgpu/cuda image: cuda + opencl only
        let mut req = trivial_request(9);
        req.spec.toolchain = "mpi".to_string();
        let out = n.submit(&req, 0).expect("node is up");
        assert!(!out.compiled());
        assert!(out
            .compile_error
            .as_ref()
            .unwrap()
            .contains("toolchain `mpi` is not installed"));
        assert!(out.datasets.is_empty());
        // A full-image node runs the same job fine.
        let cfg = WorkerConfig {
            image: "webgpu/full".to_string(),
            ..Default::default()
        };
        let fat = WorkerNode::boot(2, DeviceConfig::test_small(), &cfg);
        let out = fat.submit(&req, 0).expect("node is up");
        assert!(out.compiled(), "{:?}", out.compile_error);
    }

    #[test]
    fn nodes_share_a_cluster_wide_cache() {
        use crate::cache::new_submission_cache;
        let cache = new_submission_cache(wb_cache::CacheConfig::default());
        let cfg = NodeConfig {
            cache: Some(cache.clone()),
            ..NodeConfig::new(DeviceConfig::test_small())
        };
        let a = WorkerNode::launch(1, &cfg);
        let b = WorkerNode::launch(2, &cfg);
        let out_a = a.submit(&trivial_request(1), 0).expect("node a up");
        // A different student submits the same bytes to a different node.
        let out_b = b.submit(&trivial_request(2), 0).expect("node b up");
        assert_eq!(out_a.datasets, out_b.datasets);
        assert_eq!(out_b.worker_id, 2, "identity fields stay per-job");
        let m = cache.metrics();
        assert_eq!(m.compile.hits, 1, "node b reused node a's compile");
        assert_eq!(m.grade.hits, 1, "node b reused node a's grade");
    }

    #[test]
    fn health_beat_carries_progress() {
        let n = node();
        n.submit(&trivial_request(1), 0).unwrap();
        n.submit(&trivial_request(2), 0).unwrap();
        let beat = n.health(500).unwrap();
        assert_eq!(beat.jobs_done, 2);
        assert_eq!(beat.at_ms, 500);
        assert_eq!(beat.worker_id, 1);
    }
}
