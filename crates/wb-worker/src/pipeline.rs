//! The compile → sandbox → execute → evaluate pipeline (§III-C/D).
//!
//! Two entry points share the same phases: [`execute_job`] always runs
//! fresh; [`execute_job_cached`] consults a cluster-wide
//! [`SubmissionCache`] first, so byte-identical submissions during a
//! deadline rush compile and grade once. The phases themselves —
//! [`compile_phase`] and [`run_dataset_case`] — are deterministic pure
//! functions of their keyed inputs, which is what makes serving a
//! cached result indistinguishable from fresh execution.

use crate::cache::SubmissionCache;
use crate::job::{DatasetCase, DatasetOutcome, JobAction, JobOutcome, JobRequest, LabSpec};
use libwb::check;
use minicuda::{analyze_program, compile_with, AnalysisPolicy, DeviceConfig, Finding, Program};
use std::sync::Arc;
use std::time::Instant;
use wb_cache::{CompileKey, CompiledEntry, GradeKey, LookupOutcome};
use wb_obs::{Annotation, Counter, JobPhase, Recorder, Timer};
use wb_sandbox::JobDir;

/// Scratch-directory quota per job (mirrors the real worker's tmpfs).
const JOB_DIR_QUOTA: usize = 4 * 1024 * 1024;

/// The compile phase of a submission: size gate → blacklist scan →
/// scratch-dir write (as the real worker writes `solution.cu` before
/// invoking nvcc) → compile. Returns the program or the rendered
/// error shown to the student.
pub fn compile_phase(job_id: u64, source: &str, spec: &LabSpec) -> Result<Arc<Program>, String> {
    spec.limits.check_source_size(source)?;

    // Layer 1: blacklist scan on the raw, unparsed text.
    if let Some(v) = spec.blacklist.scan(source).first() {
        return Err(v.message.clone());
    }

    // The scratch directory is RAII: every exit path below — including
    // the error returns — reclaims it when `dir` drops.
    let mut dir = JobDir::create(job_id, JOB_DIR_QUOTA);
    dir.write("solution.cu", source.as_bytes())
        .map_err(|e| e.to_string())?;

    match compile_with(source, spec.dialect, spec.opt_level) {
        Ok(p) => Ok(Arc::new(p)),
        Err(d) => Err(d.to_string()),
    }
}

/// Run one dataset case: execute under the whitelist policy, then
/// evaluate against the expected output.
pub fn run_dataset_case(
    program: &Program,
    case: &DatasetCase,
    spec: &LabSpec,
    device: &DeviceConfig,
) -> DatasetOutcome {
    let opts = spec.limits.to_run_options(device.clone());
    // Layer 2: the whitelist rides along as the hostcall policy.
    let run = minicuda::run_with_policy(program, &case.inputs, &opts, &spec.whitelist);
    let check_report = match (&run.error, &run.solution) {
        (None, Some(sol)) => Some(check::compare(sol, &case.expected, &spec.check)),
        (None, None) => Some(check::CheckReport {
            total: 0,
            mismatch_count: 0,
            mismatches: Vec::new(),
            shape_error: Some("program completed without calling wbSolution".to_string()),
        }),
        _ => None,
    };
    DatasetOutcome {
        name: case.name.clone(),
        check: check_report,
        error: run.error,
        cost: run.cost,
        elapsed_cycles: run.elapsed_cycles,
        log_text: run.log.render(),
        timing_text: run.timer.report(),
    }
}

/// Run the static verifier over a freshly compiled program: records
/// the verifier's wall time and run/finding counters, and returns the
/// findings. Only ever called when the lab's policy enables analysis,
/// and — on the cached path — only on the single-flight leader, so
/// `analysis_runs` counts actual verifier executions, not lookups.
fn analyze_phase(program: &Program, obs: &Recorder) -> Vec<Finding> {
    let started = Instant::now();
    let findings = analyze_program(program);
    obs.observe(Timer::AnalyzeMicros, started.elapsed().as_micros() as u64);
    obs.bump(Counter::AnalysisRuns);
    obs.add(Counter::AnalysisFindings, findings.len() as u64);
    findings
}

/// Apply the lab's analysis policy to the verifier's findings for one
/// job. Flagged jobs are annotated per job (a cache hit re-reports the
/// stored findings); `Deny` additionally converts them into a compile
/// rejection. Returns `true` when the job is denied and no datasets
/// may run.
fn apply_analysis(
    outcome: &mut JobOutcome,
    policy: AnalysisPolicy,
    findings: Vec<Finding>,
    obs: &Recorder,
    now_ms: u64,
) -> bool {
    if findings.is_empty() {
        return false;
    }
    obs.annotate(outcome.job_id, Annotation::AnalysisFlagged, now_ms);
    let denied = policy == AnalysisPolicy::Deny;
    if denied {
        obs.bump(Counter::AnalysisDenied);
        outcome.compile_error = Some(
            findings
                .iter()
                .map(Finding::render)
                .collect::<Vec<_>>()
                .join("\n"),
        );
    }
    outcome.analysis = findings;
    denied
}

/// The outcome reported when the requested dataset index does not
/// exist.
fn missing_dataset_outcome(idx: usize) -> DatasetOutcome {
    DatasetOutcome {
        name: format!("dataset {idx}"),
        check: None,
        error: Some(minicuda::Diag::nowhere(
            minicuda::Phase::Runtime,
            format!("no dataset with index {idx}"),
        )),
        cost: Default::default(),
        elapsed_cycles: 0,
        log_text: String::new(),
        timing_text: String::new(),
    }
}

/// Which dataset indexes an action runs.
fn case_indexes(action: &JobAction, dataset_count: usize) -> Vec<usize> {
    match action {
        JobAction::CompileOnly => Vec::new(),
        JobAction::RunDataset(i) => vec![*i],
        JobAction::FullGrade => (0..dataset_count).collect(),
    }
}

/// Execute a job on a device. `worker_id` and `container_wait_ms` are
/// supplied by the node (the pipeline itself is stateless so it can be
/// unit-tested without a node).
pub fn execute_job(
    req: &JobRequest,
    device: &DeviceConfig,
    worker_id: u64,
    container_wait_ms: u64,
) -> JobOutcome {
    execute_job_traced(
        req,
        device,
        worker_id,
        container_wait_ms,
        &Recorder::noop(),
        0,
    )
}

/// [`execute_job`] with span/timer recording: compile time lands in
/// [`Timer::CompileMicros`], dataset time in [`Timer::GradeMicros`],
/// and the job's span advances to `Compiled` then `Graded` (or
/// straight to `Failed` when compilation is rejected).
pub fn execute_job_traced(
    req: &JobRequest,
    device: &DeviceConfig,
    worker_id: u64,
    container_wait_ms: u64,
    obs: &Recorder,
    now_ms: u64,
) -> JobOutcome {
    let mut outcome = JobOutcome {
        job_id: req.job_id,
        worker_id,
        compile_error: None,
        datasets: Vec::new(),
        analysis: Vec::new(),
        container_wait_ms,
    };
    let started = Instant::now();
    let compiled = compile_phase(req.job_id, &req.source, &req.spec);
    obs.observe(Timer::CompileMicros, started.elapsed().as_micros() as u64);
    let program = match compiled {
        Ok(p) => p,
        Err(m) => {
            outcome.compile_error = Some(m);
            obs.phase(req.job_id, JobPhase::Failed, now_ms);
            return outcome;
        }
    };
    obs.phase(req.job_id, JobPhase::Compiled, now_ms);
    if req.spec.analysis.enabled() {
        let findings = analyze_phase(&program, obs);
        if apply_analysis(&mut outcome, req.spec.analysis, findings, obs, now_ms) {
            obs.phase(req.job_id, JobPhase::Failed, now_ms);
            return outcome;
        }
    }
    let started = Instant::now();
    for idx in case_indexes(&req.action, req.datasets.len()) {
        outcome.datasets.push(match req.datasets.get(idx) {
            Some(case) => run_dataset_case(&program, case, &req.spec, device),
            None => missing_dataset_outcome(idx),
        });
    }
    obs.observe(Timer::GradeMicros, started.elapsed().as_micros() as u64);
    obs.phase(req.job_id, JobPhase::Graded, now_ms);
    outcome
}

/// Cache-aware variant of [`execute_job`]: compile results and
/// per-dataset grades are served from `cache` when a prior submission
/// with identical keyed inputs already produced them, and concurrent
/// identical submissions single-flight so each distinct computation
/// runs once cluster-wide.
///
/// `image` is the container image the job would run in — part of the
/// compile key, since different images may carry different toolchain
/// stacks. Identity fields (`job_id`, `worker_id`,
/// `container_wait_ms`) are never cached; only the deterministic
/// compile/grade payloads are.
pub fn execute_job_cached(
    req: &JobRequest,
    device: &DeviceConfig,
    worker_id: u64,
    container_wait_ms: u64,
    image: &str,
    cache: &SubmissionCache,
) -> JobOutcome {
    execute_job_cached_traced(
        req,
        device,
        worker_id,
        container_wait_ms,
        image,
        cache,
        &Recorder::noop(),
        0,
    )
}

/// Record one cache lookup against the job's span: saved work becomes
/// a `CacheHit`/`Coalesced` annotation, a miss only bumps the
/// [`Counter::CacheMisses`] counter (misses are the normal path, not a
/// span-worthy event).
fn record_lookup(obs: &Recorder, job_id: u64, lookup: LookupOutcome, now_ms: u64) {
    match lookup {
        LookupOutcome::Hit => obs.annotate(job_id, Annotation::CacheHit, now_ms),
        LookupOutcome::Coalesced => obs.annotate(job_id, Annotation::Coalesced, now_ms),
        LookupOutcome::Miss => obs.bump(Counter::CacheMisses),
    }
}

/// [`execute_job_cached`] with span/timer recording. Phase timers
/// capture what this call actually paid: a compile served from cache
/// records the (near-zero) lookup time, which is exactly what the
/// latency histograms should show for deduplicated work.
#[allow(clippy::too_many_arguments)]
pub fn execute_job_cached_traced(
    req: &JobRequest,
    device: &DeviceConfig,
    worker_id: u64,
    container_wait_ms: u64,
    image: &str,
    cache: &SubmissionCache,
    obs: &Recorder,
    now_ms: u64,
) -> JobOutcome {
    let mut outcome = JobOutcome {
        job_id: req.job_id,
        worker_id,
        compile_error: None,
        datasets: Vec::new(),
        analysis: Vec::new(),
        container_wait_ms,
    };
    let analyze = req.spec.analysis.enabled();
    let ckey = CompileKey::derive(
        &req.source,
        req.spec.dialect,
        req.spec.opt_level,
        analyze,
        &req.spec.toolchain,
        image,
        &req.spec.blacklist,
        &req.spec.limits,
    );
    let started = Instant::now();
    let (entry, lookup) = cache.compile_or_traced(ckey, || {
        let result = compile_phase(req.job_id, &req.source, &req.spec);
        let analysis = match (&result, analyze) {
            (Ok(p), true) => analyze_phase(p, obs),
            _ => Vec::new(),
        };
        CompiledEntry {
            result,
            source_bytes: req.source.len(),
            analysis,
        }
    });
    obs.observe(Timer::CompileMicros, started.elapsed().as_micros() as u64);
    record_lookup(obs, req.job_id, lookup, now_ms);
    let program = match entry.result {
        Ok(p) => p,
        Err(m) => {
            outcome.compile_error = Some(m);
            obs.phase(req.job_id, JobPhase::Failed, now_ms);
            return outcome;
        }
    };
    obs.phase(req.job_id, JobPhase::Compiled, now_ms);
    if analyze && apply_analysis(&mut outcome, req.spec.analysis, entry.analysis, obs, now_ms) {
        obs.phase(req.job_id, JobPhase::Failed, now_ms);
        return outcome;
    }
    let started = Instant::now();
    for idx in case_indexes(&req.action, req.datasets.len()) {
        outcome.datasets.push(match req.datasets.get(idx) {
            Some(case) => {
                let gkey = GradeKey::derive(
                    ckey,
                    &case.name,
                    &case.inputs,
                    &case.expected,
                    device,
                    &req.spec.whitelist,
                    &req.spec.check,
                    &req.spec.limits,
                );
                let (graded, lookup) = cache
                    .grade_or_traced(gkey, || run_dataset_case(&program, case, &req.spec, device));
                record_lookup(obs, req.job_id, lookup, now_ms);
                graded
            }
            // Never cached: trivially cheap, and there is no dataset
            // content to key on.
            None => missing_dataset_outcome(idx),
        });
    }
    obs.observe(Timer::GradeMicros, started.elapsed().as_micros() as u64);
    obs.phase(req.job_id, JobPhase::Graded, now_ms);
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::new_submission_cache;
    use crate::job::{DatasetCase, LabSpec};
    use libwb::Dataset;
    use wb_cache::CacheConfig;

    const VECADD: &str = r#"
        __global__ void vecAdd(float* a, float* b, float* out, int n) {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i < n) { out[i] = a[i] + b[i]; }
        }
        int main() {
            int n;
            float* a = wbImportVector(0, &n);
            float* b = wbImportVector(1, &n);
            float* out = (float*) malloc(n * sizeof(float));
            float* dA; float* dB; float* dC;
            cudaMalloc(&dA, n * sizeof(float));
            cudaMalloc(&dB, n * sizeof(float));
            cudaMalloc(&dC, n * sizeof(float));
            cudaMemcpy(dA, a, n * sizeof(float), cudaMemcpyHostToDevice);
            cudaMemcpy(dB, b, n * sizeof(float), cudaMemcpyHostToDevice);
            vecAdd<<<(n + 63) / 64, 64>>>(dA, dB, dC, n);
            cudaMemcpy(out, dC, n * sizeof(float), cudaMemcpyDeviceToHost);
            wbSolution(out, n);
            return 0;
        }
    "#;

    fn vecadd_request(action: JobAction) -> JobRequest {
        JobRequest {
            job_id: 1,
            user: "alice".into(),
            source: VECADD.to_string(),
            spec: LabSpec::cuda_test("vecadd"),
            datasets: vec![
                DatasetCase {
                    name: "d0".into(),
                    inputs: vec![
                        Dataset::Vector(vec![1.0, 2.0]),
                        Dataset::Vector(vec![3.0, 4.0]),
                    ],
                    expected: Dataset::Vector(vec![4.0, 6.0]),
                },
                DatasetCase {
                    name: "d1".into(),
                    inputs: vec![Dataset::Vector(vec![0.0]), Dataset::Vector(vec![5.0])],
                    expected: Dataset::Vector(vec![5.0]),
                },
            ],
            action,
        }
    }

    #[test]
    fn full_grade_passes_all_datasets() {
        let req = vecadd_request(JobAction::FullGrade);
        let out = execute_job(&req, &DeviceConfig::test_small(), 7, 0);
        assert!(out.compiled(), "{:?}", out.compile_error);
        assert_eq!(out.datasets.len(), 2);
        assert_eq!(out.passed_count(), 2);
        assert_eq!(out.worker_id, 7);
    }

    #[test]
    fn compile_only_runs_nothing() {
        let req = vecadd_request(JobAction::CompileOnly);
        let out = execute_job(&req, &DeviceConfig::test_small(), 1, 0);
        assert!(out.compiled());
        assert!(out.datasets.is_empty());
    }

    #[test]
    fn single_dataset_run() {
        let req = vecadd_request(JobAction::RunDataset(1));
        let out = execute_job(&req, &DeviceConfig::test_small(), 1, 0);
        assert_eq!(out.datasets.len(), 1);
        assert_eq!(out.datasets[0].name, "d1");
        assert!(out.datasets[0].passed());
    }

    #[test]
    fn out_of_range_dataset_reports_error() {
        let req = vecadd_request(JobAction::RunDataset(9));
        let out = execute_job(&req, &DeviceConfig::test_small(), 1, 0);
        assert!(out.datasets[0].error.is_some());
        assert!(!out.datasets[0].passed());
    }

    #[test]
    fn blacklisted_source_rejected_before_compile() {
        let mut req = vecadd_request(JobAction::FullGrade);
        req.source = format!("// sneaky asm comment\n{}", req.source);
        let out = execute_job(&req, &DeviceConfig::test_small(), 1, 0);
        assert!(!out.compiled());
        assert!(out.compile_error.unwrap().contains("asm"));
        assert!(out.datasets.is_empty());
    }

    #[test]
    fn syntax_error_reported_with_position() {
        let mut req = vecadd_request(JobAction::CompileOnly);
        req.source = "int main( { return 0; }".to_string();
        let out = execute_job(&req, &DeviceConfig::test_small(), 1, 0);
        assert!(out.compile_error.unwrap().contains("syntax error"));
    }

    #[test]
    fn wrong_answer_is_mismatch_not_error() {
        let mut req = vecadd_request(JobAction::FullGrade);
        // A classic student bug: using + instead of * in the index.
        req.source = VECADD.replace("a[i] + b[i]", "a[i] - b[i]");
        let out = execute_job(&req, &DeviceConfig::test_small(), 1, 0);
        assert!(out.compiled());
        assert_eq!(out.passed_count(), 0);
        let d = &out.datasets[0];
        assert!(d.error.is_none());
        assert!(d.check.as_ref().unwrap().mismatch_count > 0);
    }

    #[test]
    fn missing_wbsolution_is_reported() {
        let mut req = vecadd_request(JobAction::RunDataset(0));
        req.source = "int main() { return 0; }".to_string();
        let out = execute_job(&req, &DeviceConfig::test_small(), 1, 0);
        let d = &out.datasets[0];
        assert!(d.error.is_none());
        assert!(d
            .check
            .as_ref()
            .unwrap()
            .shape_error
            .as_ref()
            .unwrap()
            .contains("wbSolution"));
    }

    #[test]
    fn oversized_source_rejected() {
        let mut req = vecadd_request(JobAction::CompileOnly);
        req.spec.limits.max_source_bytes = 16;
        let out = execute_job(&req, &DeviceConfig::test_small(), 1, 0);
        assert!(out.compile_error.unwrap().contains("at most 16"));
    }

    #[test]
    fn cost_counters_populated() {
        let req = vecadd_request(JobAction::RunDataset(0));
        let out = execute_job(&req, &DeviceConfig::test_small(), 1, 0);
        let d = &out.datasets[0];
        assert_eq!(d.cost.kernel_launches, 1);
        assert!(d.elapsed_cycles > 0);
    }

    #[test]
    fn cached_outcome_equals_fresh_outcome() {
        let cache = new_submission_cache(CacheConfig::default());
        let req = vecadd_request(JobAction::FullGrade);
        let device = DeviceConfig::test_small();
        let fresh = execute_job(&req, &device, 7, 0);
        let first = execute_job_cached(&req, &device, 7, 0, "webgpu/cuda", &cache);
        let second = execute_job_cached(&req, &device, 7, 0, "webgpu/cuda", &cache);
        assert_eq!(fresh, first, "cold cached run matches fresh");
        assert_eq!(fresh, second, "warm cached run matches fresh");
        let m = cache.metrics();
        assert_eq!(m.compile.misses, 1);
        assert_eq!(m.compile.hits, 1);
        assert_eq!(m.grade.misses, 2, "two datasets computed once");
        assert_eq!(m.grade.hits, 2, "and served from cache once");
    }

    #[test]
    fn cached_compile_errors_are_reused() {
        let cache = new_submission_cache(CacheConfig::default());
        let mut req = vecadd_request(JobAction::CompileOnly);
        req.source = "int main( { return 0; }".to_string();
        let device = DeviceConfig::test_small();
        let first = execute_job_cached(&req, &device, 1, 0, "webgpu/cuda", &cache);
        // A different student resubmits the same broken code.
        req.job_id = 2;
        req.user = "bob".into();
        let second = execute_job_cached(&req, &device, 2, 0, "webgpu/cuda", &cache);
        assert_eq!(first.compile_error, second.compile_error);
        assert!(first.compile_error.unwrap().contains("syntax error"));
        assert_eq!(cache.metrics().compile.hits, 1);
    }

    #[test]
    fn different_dataset_same_source_reuses_compile_only() {
        let cache = new_submission_cache(CacheConfig::default());
        let device = DeviceConfig::test_small();
        let a = vecadd_request(JobAction::RunDataset(0));
        let b = vecadd_request(JobAction::RunDataset(1));
        let out_a = execute_job_cached(&a, &device, 1, 0, "webgpu/cuda", &cache);
        let out_b = execute_job_cached(&b, &device, 1, 0, "webgpu/cuda", &cache);
        assert!(out_a.datasets[0].passed());
        assert!(out_b.datasets[0].passed());
        let m = cache.metrics();
        assert_eq!((m.compile.misses, m.compile.hits), (1, 1));
        assert_eq!(
            (m.grade.misses, m.grade.hits),
            (2, 0),
            "distinct grade keys"
        );
    }

    #[test]
    fn pipeline_never_leaks_job_dirs() {
        let device = DeviceConfig::test_small();
        // Every early-return path through the compile phase.
        let mut oversized = vecadd_request(JobAction::CompileOnly);
        oversized.spec.limits.max_source_bytes = 16;
        let mut blacklisted = vecadd_request(JobAction::CompileOnly);
        blacklisted.source = "int main() { asm(); }".to_string();
        let mut broken = vecadd_request(JobAction::CompileOnly);
        broken.source = "int main( {".to_string();
        for req in [
            vecadd_request(JobAction::FullGrade),
            oversized,
            blacklisted,
            broken,
        ] {
            execute_job(&req, &device, 1, 0);
        }
        // Counter deltas are asserted in the dedicated leak regression
        // test (tests/jobdir_leak.rs) where no other test races the
        // global; here we only exercise the paths.
    }
}
