//! The compile → sandbox → execute → evaluate pipeline (§III-C/D).

use crate::job::{DatasetOutcome, JobAction, JobOutcome, JobRequest};
use libwb::check;
use minicuda::{compile, DeviceConfig};
use wb_sandbox::JobDir;

/// Execute a job on a device. `worker_id` and `container_wait_ms` are
/// supplied by the node (the pipeline itself is stateless so it can be
/// unit-tested without a node).
pub fn execute_job(
    req: &JobRequest,
    device: &DeviceConfig,
    worker_id: u64,
    container_wait_ms: u64,
) -> JobOutcome {
    let mut outcome = JobOutcome {
        job_id: req.job_id,
        worker_id,
        compile_error: None,
        datasets: Vec::new(),
        container_wait_ms,
    };

    // Submission size gate.
    if let Err(m) = req.spec.limits.check_source_size(&req.source) {
        outcome.compile_error = Some(m);
        return outcome;
    }

    // Layer 1: blacklist scan on the raw, unparsed text.
    let violations = req.spec.blacklist.scan(&req.source);
    if let Some(v) = violations.first() {
        outcome.compile_error = Some(v.message.clone());
        return outcome;
    }

    // The per-job scratch directory holds the source exactly as the
    // real worker writes `solution.cu` before invoking nvcc.
    let mut dir = JobDir::create(req.job_id, 4 * 1024 * 1024);
    if let Err(e) = dir.write("solution.cu", req.source.as_bytes()) {
        outcome.compile_error = Some(e.to_string());
        return outcome;
    }

    // Compile.
    let program = match compile(&req.source, req.spec.dialect) {
        Ok(p) => p,
        Err(d) => {
            outcome.compile_error = Some(d.to_string());
            dir.destroy();
            return outcome;
        }
    };

    let cases: Vec<usize> = match &req.action {
        JobAction::CompileOnly => Vec::new(),
        JobAction::RunDataset(i) => vec![*i],
        JobAction::FullGrade => (0..req.datasets.len()).collect(),
    };

    for idx in cases {
        let Some(case) = req.datasets.get(idx) else {
            outcome.datasets.push(DatasetOutcome {
                name: format!("dataset {idx}"),
                check: None,
                error: Some(minicuda::Diag::nowhere(
                    minicuda::Phase::Runtime,
                    format!("no dataset with index {idx}"),
                )),
                cost: Default::default(),
                elapsed_cycles: 0,
                log_text: String::new(),
                timing_text: String::new(),
            });
            continue;
        };
        let opts = req.spec.limits.to_run_options(device.clone());
        // Layer 2: the whitelist rides along as the hostcall policy.
        let run = minicuda::run_with_policy(&program, &case.inputs, &opts, &req.spec.whitelist);
        let check_report = match (&run.error, &run.solution) {
            (None, Some(sol)) => Some(check::compare(sol, &case.expected, &req.spec.check)),
            (None, None) => Some(check::CheckReport {
                total: 0,
                mismatch_count: 0,
                mismatches: Vec::new(),
                shape_error: Some("program completed without calling wbSolution".to_string()),
            }),
            _ => None,
        };
        outcome.datasets.push(DatasetOutcome {
            name: case.name.clone(),
            check: check_report,
            error: run.error,
            cost: run.cost,
            elapsed_cycles: run.elapsed_cycles,
            log_text: run.log.render(),
            timing_text: run.timer.report(),
        });
    }

    dir.destroy();
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{DatasetCase, LabSpec};
    use libwb::Dataset;

    const VECADD: &str = r#"
        __global__ void vecAdd(float* a, float* b, float* out, int n) {
            int i = blockIdx.x * blockDim.x + threadIdx.x;
            if (i < n) { out[i] = a[i] + b[i]; }
        }
        int main() {
            int n;
            float* a = wbImportVector(0, &n);
            float* b = wbImportVector(1, &n);
            float* out = (float*) malloc(n * sizeof(float));
            float* dA; float* dB; float* dC;
            cudaMalloc(&dA, n * sizeof(float));
            cudaMalloc(&dB, n * sizeof(float));
            cudaMalloc(&dC, n * sizeof(float));
            cudaMemcpy(dA, a, n * sizeof(float), cudaMemcpyHostToDevice);
            cudaMemcpy(dB, b, n * sizeof(float), cudaMemcpyHostToDevice);
            vecAdd<<<(n + 63) / 64, 64>>>(dA, dB, dC, n);
            cudaMemcpy(out, dC, n * sizeof(float), cudaMemcpyDeviceToHost);
            wbSolution(out, n);
            return 0;
        }
    "#;

    fn vecadd_request(action: JobAction) -> JobRequest {
        JobRequest {
            job_id: 1,
            user: "alice".into(),
            source: VECADD.to_string(),
            spec: LabSpec::cuda_test("vecadd"),
            datasets: vec![
                DatasetCase {
                    name: "d0".into(),
                    inputs: vec![
                        Dataset::Vector(vec![1.0, 2.0]),
                        Dataset::Vector(vec![3.0, 4.0]),
                    ],
                    expected: Dataset::Vector(vec![4.0, 6.0]),
                },
                DatasetCase {
                    name: "d1".into(),
                    inputs: vec![Dataset::Vector(vec![0.0]), Dataset::Vector(vec![5.0])],
                    expected: Dataset::Vector(vec![5.0]),
                },
            ],
            action,
        }
    }

    #[test]
    fn full_grade_passes_all_datasets() {
        let req = vecadd_request(JobAction::FullGrade);
        let out = execute_job(&req, &DeviceConfig::test_small(), 7, 0);
        assert!(out.compiled(), "{:?}", out.compile_error);
        assert_eq!(out.datasets.len(), 2);
        assert_eq!(out.passed_count(), 2);
        assert_eq!(out.worker_id, 7);
    }

    #[test]
    fn compile_only_runs_nothing() {
        let req = vecadd_request(JobAction::CompileOnly);
        let out = execute_job(&req, &DeviceConfig::test_small(), 1, 0);
        assert!(out.compiled());
        assert!(out.datasets.is_empty());
    }

    #[test]
    fn single_dataset_run() {
        let req = vecadd_request(JobAction::RunDataset(1));
        let out = execute_job(&req, &DeviceConfig::test_small(), 1, 0);
        assert_eq!(out.datasets.len(), 1);
        assert_eq!(out.datasets[0].name, "d1");
        assert!(out.datasets[0].passed());
    }

    #[test]
    fn out_of_range_dataset_reports_error() {
        let req = vecadd_request(JobAction::RunDataset(9));
        let out = execute_job(&req, &DeviceConfig::test_small(), 1, 0);
        assert!(out.datasets[0].error.is_some());
        assert!(!out.datasets[0].passed());
    }

    #[test]
    fn blacklisted_source_rejected_before_compile() {
        let mut req = vecadd_request(JobAction::FullGrade);
        req.source = format!("// sneaky asm comment\n{}", req.source);
        let out = execute_job(&req, &DeviceConfig::test_small(), 1, 0);
        assert!(!out.compiled());
        assert!(out.compile_error.unwrap().contains("asm"));
        assert!(out.datasets.is_empty());
    }

    #[test]
    fn syntax_error_reported_with_position() {
        let mut req = vecadd_request(JobAction::CompileOnly);
        req.source = "int main( { return 0; }".to_string();
        let out = execute_job(&req, &DeviceConfig::test_small(), 1, 0);
        assert!(out.compile_error.unwrap().contains("syntax error"));
    }

    #[test]
    fn wrong_answer_is_mismatch_not_error() {
        let mut req = vecadd_request(JobAction::FullGrade);
        // A classic student bug: using + instead of * in the index.
        req.source = VECADD.replace("a[i] + b[i]", "a[i] - b[i]");
        let out = execute_job(&req, &DeviceConfig::test_small(), 1, 0);
        assert!(out.compiled());
        assert_eq!(out.passed_count(), 0);
        let d = &out.datasets[0];
        assert!(d.error.is_none());
        assert!(d.check.as_ref().unwrap().mismatch_count > 0);
    }

    #[test]
    fn missing_wbsolution_is_reported() {
        let mut req = vecadd_request(JobAction::RunDataset(0));
        req.source = "int main() { return 0; }".to_string();
        let out = execute_job(&req, &DeviceConfig::test_small(), 1, 0);
        let d = &out.datasets[0];
        assert!(d.error.is_none());
        assert!(d
            .check
            .as_ref()
            .unwrap()
            .shape_error
            .as_ref()
            .unwrap()
            .contains("wbSolution"));
    }

    #[test]
    fn oversized_source_rejected() {
        let mut req = vecadd_request(JobAction::CompileOnly);
        req.spec.limits.max_source_bytes = 16;
        let out = execute_job(&req, &DeviceConfig::test_small(), 1, 0);
        assert!(out.compile_error.unwrap().contains("at most 16"));
    }

    #[test]
    fn cost_counters_populated() {
        let req = vecadd_request(JobAction::RunDataset(0));
        let out = execute_job(&req, &DeviceConfig::test_small(), 1, 0);
        let d = &out.datasets[0];
        assert_eq!(d.cost.kernel_launches, 1);
        assert!(d.elapsed_cycles > 0);
    }
}
