//! Regression test: the pipeline must not leak job directories.
//!
//! An earlier pipeline version destroyed the scratch directory
//! explicitly and skipped the cleanup on early returns (a failed
//! `solution.cu` write leaked, and so would a panicking stage). The
//! fix made `JobDir` RAII; this test drives every pipeline exit path
//! and asserts the process-wide live-directory counter returns to
//! zero.
//!
//! Lives in its own integration-test binary — one process, no
//! concurrent tests — because the counter is process-global: any other
//! test creating a `JobDir` concurrently would race the assertion.

use libwb::Dataset;
use minicuda::DeviceConfig;
use wb_sandbox::live_dir_count;
use wb_worker::{
    execute_job, execute_job_cached, new_submission_cache, DatasetCase, JobAction, JobRequest,
    LabSpec,
};

fn request(job_id: u64, source: &str, action: JobAction) -> JobRequest {
    JobRequest {
        job_id,
        user: "alice".into(),
        source: source.to_string(),
        spec: LabSpec::cuda_test("identity"),
        datasets: vec![DatasetCase {
            name: "d0".into(),
            inputs: vec![Dataset::Vector(vec![1.0, 2.0])],
            expected: Dataset::Vector(vec![1.0, 2.0]),
        }],
        action,
    }
}

const GOOD: &str = r#"
    int main() {
        int n;
        float* a = wbImportVector(0, &n);
        wbSolution(a, n);
        return 0;
    }
"#;

#[test]
fn every_pipeline_exit_path_reclaims_the_job_dir() {
    assert_eq!(live_dir_count(), 0, "test starts clean");
    let device = DeviceConfig::test_small();

    // Success path.
    let out = execute_job(&request(1, GOOD, JobAction::FullGrade), &device, 1, 0);
    assert!(out.compiled());

    // Early return: oversized source (fails before the dir exists).
    let mut oversized = request(2, GOOD, JobAction::CompileOnly);
    oversized.spec.limits.max_source_bytes = 8;
    assert!(!execute_job(&oversized, &device, 1, 0).compiled());

    // Early return: blacklist violation.
    let blacklisted = request(3, "int main() { asm(); }", JobAction::CompileOnly);
    assert!(!execute_job(&blacklisted, &device, 1, 0).compiled());

    // Early return: quota-exceeded write into the scratch dir. The
    // original leak was exactly this path: `dir.write` failed and the
    // early return skipped the explicit destroy.
    let mut fat = request(4, GOOD, JobAction::CompileOnly);
    fat.source = format!("// {}\n{}", "x".repeat(5 * 1024 * 1024), GOOD);
    fat.spec.limits.max_source_bytes = 8 * 1024 * 1024; // pass the gate
    let out = execute_job(&fat, &device, 1, 0);
    assert!(
        out.compile_error
            .as_deref()
            .is_some_and(|m| m.contains("quota")),
        "expected the quota error path, got {:?}",
        out.compile_error
    );

    // Early return: compile error.
    let broken = request(5, "int main( { return 0; }", JobAction::CompileOnly);
    assert!(!execute_job(&broken, &device, 1, 0).compiled());

    // The cached pipeline shares the same compile phase.
    let cache = new_submission_cache(wb_cache::CacheConfig::default());
    let out = execute_job_cached(
        &request(6, GOOD, JobAction::FullGrade),
        &device,
        1,
        0,
        "webgpu/cuda",
        &cache,
    );
    assert!(out.compiled());

    assert_eq!(live_dir_count(), 0, "no scratch directory leaked");
}
