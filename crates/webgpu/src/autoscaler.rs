//! Autoscaling policies.
//!
//! §II-C: *"a statically-provisioned computing resource large enough
//! for the beginning of the course will be mostly idle by the end"*;
//! §III: *"We increased the number of GPUs available to WebGPU the day
//! before the deadline."* Three policies capture the design space:
//!
//! * [`AutoscalePolicy::Static`] — the over-provisioned baseline;
//! * [`AutoscalePolicy::Reactive`] — scale to the queue;
//! * [`AutoscalePolicy::Scheduled`] — the paper's manual pre-deadline
//!   bump, automated: reactive plus a floor in a window before each
//!   deadline;
//! * [`AutoscalePolicy::SpotAware`] — reactive, but backlog above an
//!   on-demand floor is absorbed by cheap preemptible capacity
//!   ([`crate::fleet::ReliabilityClass::Spot`]): the floor is held
//!   on-demand so a mass preemption can never take the fleet to zero,
//!   and everything above it rides the spot market.

use serde::{Deserialize, Serialize};

/// Instantaneous fleet observations the policy decides from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetMetrics {
    /// Jobs visible in the broker queue.
    pub queue_depth: usize,
    /// Jobs the fair-share scheduler holds across all courses, not yet
    /// released to the broker. A rush accumulates here first: the pump
    /// only releases fleet-sized batches, so broker depth alone stays
    /// flat while a course's backlog explodes.
    pub sched_backlog: usize,
    /// The largest single-course backlog in the scheduler — the
    /// early-warning signal of a one-course deadline rush.
    pub max_course_backlog: usize,
    /// Current fleet size.
    pub fleet_size: usize,
    /// Virtual now.
    pub now_ms: u64,
}

impl FleetMetrics {
    /// Everything waiting anywhere: broker depth plus scheduler
    /// backlog. The reactive policies scale to this, so a single-course
    /// rush held at the scheduler triggers growth before the broker's
    /// global depth ever moves.
    pub fn total_pending(&self) -> usize {
        self.queue_depth + self.sched_backlog
    }
}

/// A scaling policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AutoscalePolicy {
    /// Fixed fleet.
    Static(usize),
    /// Keep roughly `jobs_per_worker` queued jobs per worker, within
    /// `[min, max]`.
    Reactive {
        /// Queue depth each worker is expected to absorb.
        jobs_per_worker: usize,
        /// Fleet floor.
        min: usize,
        /// Fleet ceiling.
        max: usize,
    },
    /// Reactive, plus a pre-deadline floor: within `window_ms` before
    /// any deadline in `deadlines_ms`, the fleet never drops below
    /// `floor`.
    Scheduled {
        /// Queue depth each worker is expected to absorb.
        jobs_per_worker: usize,
        /// Fleet floor outside deadline windows.
        min: usize,
        /// Fleet ceiling.
        max: usize,
        /// Deadline instants (virtual ms).
        deadlines_ms: Vec<u64>,
        /// How long before each deadline the floor applies.
        window_ms: u64,
        /// Fleet floor inside a deadline window.
        floor: usize,
    },
    /// Reactive with a class split: hold `on_demand_floor` workers
    /// on-demand, absorb everything above it with spot capacity.
    SpotAware {
        /// Queue depth each worker is expected to absorb.
        jobs_per_worker: usize,
        /// Workers always kept on full-price capacity (also the fleet
        /// floor).
        on_demand_floor: usize,
        /// Fleet ceiling across both classes.
        max: usize,
    },
}

/// A fleet-size decision split by reliability class — what
/// [`Autoscaler::desired_mix`] returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetTarget {
    /// Full-price workers.
    pub on_demand: usize,
    /// Preemptible workers.
    pub spot: usize,
}

impl FleetTarget {
    /// A target with no spot component (every legacy policy).
    pub fn all_on_demand(n: usize) -> FleetTarget {
        FleetTarget {
            on_demand: n,
            spot: 0,
        }
    }

    /// Total fleet size across both classes.
    pub fn total(&self) -> usize {
        self.on_demand + self.spot
    }
}

/// Applies a policy with hysteresis: scale-out is immediate (students
/// are waiting), scale-in happens only after `cooldown` consecutive
/// low-load decisions (so a momentary lull doesn't thrash the fleet).
#[derive(Debug)]
pub struct Autoscaler {
    policy: AutoscalePolicy,
    current: usize,
    low_streak: u32,
    cooldown: u32,
}

impl Autoscaler {
    /// Build with the default cooldown of 3 decisions.
    pub fn new(policy: AutoscalePolicy, initial: usize) -> Self {
        Autoscaler {
            policy,
            current: initial,
            low_streak: 0,
            cooldown: 3,
        }
    }

    /// Desired fleet size for the observed metrics.
    pub fn desired(&mut self, m: &FleetMetrics) -> usize {
        let target = match &self.policy {
            AutoscalePolicy::Static(n) => *n,
            AutoscalePolicy::Reactive {
                jobs_per_worker,
                min,
                max,
            } => reactive_target(m.total_pending(), *jobs_per_worker, *min, *max),
            AutoscalePolicy::Scheduled {
                jobs_per_worker,
                min,
                max,
                deadlines_ms,
                window_ms,
                floor,
            } => {
                let base = reactive_target(m.total_pending(), *jobs_per_worker, *min, *max);
                let in_window = deadlines_ms
                    .iter()
                    .any(|&d| m.now_ms < d && d - m.now_ms <= *window_ms);
                if in_window {
                    base.max(*floor).min(*max)
                } else {
                    base
                }
            }
            AutoscalePolicy::SpotAware {
                jobs_per_worker,
                on_demand_floor,
                max,
            } => reactive_target(m.total_pending(), *jobs_per_worker, *on_demand_floor, *max),
        };
        if target > self.current {
            self.current = target;
            self.low_streak = 0;
        } else if target < self.current {
            self.low_streak += 1;
            if self.low_streak >= self.cooldown {
                self.current = target;
                self.low_streak = 0;
            }
        } else {
            self.low_streak = 0;
        }
        self.current
    }

    /// [`desired`](Self::desired), split by reliability class. Legacy
    /// policies come back all on-demand (byte-identical fleet
    /// behaviour); [`AutoscalePolicy::SpotAware`] holds its floor
    /// on-demand and fills the rest with spot. Hysteresis applies to
    /// the total, so the split can shift class without thrash.
    pub fn desired_mix(&mut self, m: &FleetMetrics) -> FleetTarget {
        let total = self.desired(m);
        match &self.policy {
            AutoscalePolicy::SpotAware {
                on_demand_floor, ..
            } => {
                let on_demand = (*on_demand_floor).min(total);
                FleetTarget {
                    on_demand,
                    spot: total - on_demand,
                }
            }
            _ => FleetTarget::all_on_demand(total),
        }
    }
}

fn reactive_target(depth: usize, jobs_per_worker: usize, min: usize, max: usize) -> usize {
    let jpw = jobs_per_worker.max(1);
    depth.div_ceil(jpw).clamp(min, max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(depth: usize, now: u64) -> FleetMetrics {
        FleetMetrics {
            queue_depth: depth,
            sched_backlog: 0,
            max_course_backlog: 0,
            fleet_size: 0,
            now_ms: now,
        }
    }

    #[test]
    fn single_course_rush_in_the_scheduler_scales_out() {
        // The broker shows nothing — the rush is entirely held in one
        // course's scheduler backlog — and reactive growth still fires.
        let mut a = Autoscaler::new(
            AutoscalePolicy::Reactive {
                jobs_per_worker: 4,
                min: 1,
                max: 10,
            },
            1,
        );
        let m = FleetMetrics {
            queue_depth: 0,
            sched_backlog: 24,
            max_course_backlog: 24,
            fleet_size: 1,
            now_ms: 0,
        };
        assert_eq!(m.total_pending(), 24);
        assert_eq!(a.desired(&m), 6, "scheduler backlog drives scale-out");
    }

    #[test]
    fn static_policy_never_moves() {
        let mut a = Autoscaler::new(AutoscalePolicy::Static(5), 5);
        assert_eq!(a.desired(&metrics(1000, 0)), 5);
        assert_eq!(a.desired(&metrics(0, 1)), 5);
    }

    #[test]
    fn reactive_scales_out_immediately() {
        let mut a = Autoscaler::new(
            AutoscalePolicy::Reactive {
                jobs_per_worker: 4,
                min: 1,
                max: 10,
            },
            1,
        );
        assert_eq!(a.desired(&metrics(20, 0)), 5);
        assert_eq!(a.desired(&metrics(100, 1)), 10, "capped at max");
    }

    #[test]
    fn reactive_scales_in_after_cooldown() {
        let mut a = Autoscaler::new(
            AutoscalePolicy::Reactive {
                jobs_per_worker: 4,
                min: 1,
                max: 10,
            },
            8,
        );
        // Two quiet rounds: held by hysteresis.
        assert_eq!(a.desired(&metrics(0, 0)), 8);
        assert_eq!(a.desired(&metrics(0, 1)), 8);
        // Third quiet round: scale in.
        assert_eq!(a.desired(&metrics(0, 2)), 1);
    }

    #[test]
    fn burst_resets_the_cooldown() {
        let mut a = Autoscaler::new(
            AutoscalePolicy::Reactive {
                jobs_per_worker: 1,
                min: 1,
                max: 10,
            },
            5,
        );
        a.desired(&metrics(0, 0));
        a.desired(&metrics(0, 1));
        assert_eq!(a.desired(&metrics(7, 2)), 7, "burst scales out");
        // The low streak starts over.
        a.desired(&metrics(0, 3));
        a.desired(&metrics(0, 4));
        assert_eq!(a.desired(&metrics(0, 5)), 1);
    }

    #[test]
    fn scheduled_floor_applies_only_in_window() {
        let mut a = Autoscaler::new(
            AutoscalePolicy::Scheduled {
                jobs_per_worker: 4,
                min: 1,
                max: 20,
                deadlines_ms: vec![100_000],
                window_ms: 10_000,
                floor: 12,
            },
            1,
        );
        // Far from the deadline: reactive only.
        assert_eq!(a.desired(&metrics(0, 50_000)), 1);
        // Inside the window: the floor kicks in even with no queue.
        assert_eq!(a.desired(&metrics(0, 95_000)), 12);
        // After the deadline: back to reactive (with cooldown).
        a.desired(&metrics(0, 101_000));
        a.desired(&metrics(0, 102_000));
        assert_eq!(a.desired(&metrics(0, 103_000)), 1);
    }

    #[test]
    fn scheduled_floor_does_not_cap_reactive_growth() {
        let mut a = Autoscaler::new(
            AutoscalePolicy::Scheduled {
                jobs_per_worker: 1,
                min: 1,
                max: 20,
                deadlines_ms: vec![100_000],
                window_ms: 10_000,
                floor: 5,
            },
            1,
        );
        assert_eq!(a.desired(&metrics(15, 95_000)), 15, "queue beats floor");
    }

    #[test]
    fn spot_aware_fills_bursts_with_spot_above_the_floor() {
        let mut a = Autoscaler::new(
            AutoscalePolicy::SpotAware {
                jobs_per_worker: 2,
                on_demand_floor: 2,
                max: 10,
            },
            2,
        );
        let t = a.desired_mix(&metrics(12, 0));
        assert_eq!(
            t,
            FleetTarget {
                on_demand: 2,
                spot: 4
            }
        );
        assert_eq!(t.total(), 6);
        // A bigger burst caps at max, floor still on-demand.
        let t = a.desired_mix(&metrics(100, 1));
        assert_eq!(
            t,
            FleetTarget {
                on_demand: 2,
                spot: 8
            }
        );
    }

    #[test]
    fn spot_aware_holds_the_on_demand_floor_when_idle() {
        let mut a = Autoscaler::new(
            AutoscalePolicy::SpotAware {
                jobs_per_worker: 2,
                on_demand_floor: 3,
                max: 10,
            },
            8,
        );
        // Cooldown: two quiet decisions hold, the third scales in —
        // to the floor, all on-demand.
        a.desired_mix(&metrics(0, 0));
        a.desired_mix(&metrics(0, 1));
        let t = a.desired_mix(&metrics(0, 2));
        assert_eq!(
            t,
            FleetTarget {
                on_demand: 3,
                spot: 0
            }
        );
    }

    #[test]
    fn legacy_policies_mix_to_all_on_demand() {
        let mut a = Autoscaler::new(
            AutoscalePolicy::Reactive {
                jobs_per_worker: 4,
                min: 1,
                max: 10,
            },
            1,
        );
        assert_eq!(
            a.desired_mix(&metrics(20, 0)),
            FleetTarget::all_on_demand(5)
        );
        let mut s = Autoscaler::new(AutoscalePolicy::Static(4), 4);
        assert_eq!(
            s.desired_mix(&metrics(999, 0)),
            FleetTarget::all_on_demand(4)
        );
    }
}
