//! One construction surface for both cluster architectures.
//!
//! The constructor zoo (`new` / `new_uncached` / `new_traced` /
//! `with_config_traced`…) grew one axis at a time — cache, tracing,
//! worker image — and every new axis doubled it. [`ClusterBuilder`]
//! replaced the zoo: pick the axes you care about, then `build_v1()`
//! or `build_v2()`. The deprecated shims rode along for one release
//! and have since been deleted; only `ClusterV1::new` /
//! `ClusterV1::with_config` / `ClusterV2::new` survive as plain
//! defaults-only conveniences.
//!
//! ```
//! use webgpu::{AutoscalePolicy, ClusterBuilder, SchedConfig};
//!
//! let cluster = ClusterBuilder::new(minicuda::DeviceConfig::test_small())
//!     .fleet(4)
//!     .policy(AutoscalePolicy::Reactive { jobs_per_worker: 2, min: 1, max: 8 })
//!     .scheduler(SchedConfig::default().with_course_weight("ece408", 3))
//!     .build_v2();
//! assert_eq!(cluster.fleet_size(), 4);
//! ```

use crate::autoscaler::AutoscalePolicy;
use crate::{ClusterV1, ClusterV2};
use minicuda::DeviceConfig;
use std::sync::Arc;
use wb_cache::CacheConfig;
use wb_obs::Recorder;
use wb_sched::SchedConfig;
use wb_worker::{new_submission_cache, WorkerConfig};

/// Redelivery knobs for the v2 broker: how long a delivery stays
/// invisible before the queue reclaims it, and how many attempts a
/// job gets before the dead-letter queue. Chaos campaigns shorten the
/// timeout (killed workers strand deliveries until it lapses) and
/// raise the attempt budget (a job may be stranded many times without
/// being poisoned).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BrokerTuning {
    /// Visibility timeout in virtual ms.
    pub visibility_timeout_ms: u64,
    /// Delivery attempts before dead-lettering.
    pub max_attempts: u32,
}

impl Default for BrokerTuning {
    fn default() -> Self {
        BrokerTuning {
            visibility_timeout_ms: 60_000,
            max_attempts: 3,
        }
    }
}

/// Builds either cluster architecture from one set of knobs.
///
/// Defaults: fleet of 1, static policy sized to the fleet, default
/// submission cache, noop recorder, default scheduler (admission
/// effectively unbounded), and the architecture's default worker
/// image (v1: the full image §VI-A mandates; v2: the base config,
/// capability tags route jobs to capable nodes).
pub struct ClusterBuilder {
    device: DeviceConfig,
    fleet: usize,
    policy: Option<AutoscalePolicy>,
    cache: Option<CacheConfig>,
    obs: Arc<Recorder>,
    sched: SchedConfig,
    worker_config: Option<WorkerConfig>,
    shards: Option<usize>,
    tuning: BrokerTuning,
}

impl ClusterBuilder {
    /// Start from a device; everything else has defaults.
    pub fn new(device: DeviceConfig) -> Self {
        ClusterBuilder {
            device,
            fleet: 1,
            policy: None,
            cache: Some(CacheConfig::default()),
            obs: Arc::new(Recorder::noop()),
            sched: SchedConfig::default(),
            worker_config: None,
            shards: None,
            tuning: BrokerTuning::default(),
        }
    }

    /// Initial fleet size (default 1). Without an explicit
    /// [`policy`](Self::policy) the fleet stays static at this size.
    pub fn fleet(mut self, n: usize) -> Self {
        self.fleet = n;
        self
    }

    /// Autoscaling policy (v2 obeys it every pump; v1 scales manually,
    /// so it only sizes the initial pool).
    pub fn policy(mut self, policy: AutoscalePolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Drop the cluster-wide submission cache: every job compiles and
    /// grades fresh (the pre-cache baseline benches compare against).
    pub fn uncached(mut self) -> Self {
        self.cache = None;
        self
    }

    /// Use an explicitly-sized submission cache.
    pub fn cache(mut self, cfg: CacheConfig) -> Self {
        self.cache = Some(cfg);
        self
    }

    /// Record every layer — scheduler, broker, workers — onto a shared
    /// recorder, so each job's span covers its full lifecycle.
    pub fn traced(mut self, obs: Arc<Recorder>) -> Self {
        self.obs = obs;
        self
    }

    /// Fair-share scheduling and admission-control configuration.
    pub fn scheduler(mut self, sched: SchedConfig) -> Self {
        self.sched = sched;
        self
    }

    /// Worker image/capability configuration (overrides the
    /// architecture default).
    pub fn worker_config(mut self, config: WorkerConfig) -> Self {
        self.worker_config = Some(config);
        self
    }

    /// Control-plane lane count: the broker, the fair-share scheduler,
    /// and the `wb-obs`/`wb-cache` hot paths all split `n` ways, and
    /// workers pin to lanes round-robin. Defaults to the host's core
    /// count ([`wb_worker::default_shards`]); `1` reproduces the
    /// single-lane control plane exactly. Clamped to at least 1.
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = Some(n);
        self
    }

    /// Broker redelivery knobs (v2 only; v1 has no broker). Defaults
    /// to a 60 s visibility timeout and 3 attempts.
    pub fn broker_tuning(mut self, visibility_timeout_ms: u64, max_attempts: u32) -> Self {
        self.tuning = BrokerTuning {
            visibility_timeout_ms,
            max_attempts,
        };
        self
    }

    /// Assemble the v1 push cluster.
    pub fn build_v1(self) -> ClusterV1 {
        let shards = self.resolved_shards();
        let config = self
            .worker_config
            .unwrap_or_else(ClusterV1::full_image_config);
        ClusterV1::new_inner(
            self.fleet,
            self.device,
            config,
            self.cache,
            self.obs,
            self.sched,
            shards,
        )
    }

    /// Assemble the v2 pull cluster.
    pub fn build_v2(self) -> ClusterV2 {
        let shards = self.resolved_shards();
        let policy = self.policy.unwrap_or(AutoscalePolicy::Static(self.fleet));
        ClusterV2::new_inner(
            self.fleet,
            self.device,
            policy,
            self.cache.map(new_submission_cache),
            self.obs,
            self.sched,
            self.worker_config.unwrap_or_default(),
            shards,
            self.tuning,
        )
    }

    fn resolved_shards(&self) -> usize {
        self.shards.unwrap_or_else(wb_worker::default_shards).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use libwb::Dataset;
    use wb_server::WbError;
    use wb_worker::{DatasetCase, JobAction, JobRequest, LabSpec};

    fn echo(job_id: u64, course: &str) -> JobRequest {
        let mut spec = LabSpec::cuda_test("echo");
        spec.course = course.to_string();
        JobRequest {
            job_id,
            user: "alice".into(),
            source: r#"
                int main() {
                    int n;
                    float* a = wbImportVector(0, &n);
                    wbSolution(a, n);
                    return 0;
                }
            "#
            .to_string(),
            spec,
            datasets: vec![DatasetCase {
                name: "d0".into(),
                inputs: vec![Dataset::Vector(vec![1.0])],
                expected: Dataset::Vector(vec![1.0]),
            }],
            action: JobAction::FullGrade,
        }
    }

    #[test]
    fn defaults_build_working_clusters() {
        let v1 = ClusterBuilder::new(DeviceConfig::test_small())
            .fleet(2)
            .build_v1();
        assert_eq!(v1.pool_size(), 2);
        assert!(v1.submit(&echo(1, "hpp"), 0).unwrap().compiled());

        let v2 = ClusterBuilder::new(DeviceConfig::test_small())
            .fleet(3)
            .build_v2();
        assert_eq!(v2.fleet_size(), 3);
        v2.submit(echo(2, "hpp"), 0).unwrap();
        for r in 0..5 {
            v2.pump(r);
        }
        assert_eq!(v2.completed(), 1);
    }

    #[test]
    fn uncached_v1_runs_every_job_fresh() {
        let v1 = ClusterBuilder::new(DeviceConfig::test_small())
            .fleet(2)
            .uncached()
            .build_v1();
        for j in 0..4 {
            assert!(v1.submit(&echo(j, "hpp"), 0).unwrap().compiled());
        }
        let m = v1.cache_metrics();
        assert_eq!(m.compile.hits, 0, "workers never consult the cache");
        assert_eq!(m.compile.misses, 0);
    }

    #[test]
    fn scheduler_config_reaches_admission_control() {
        let v2 = ClusterBuilder::new(DeviceConfig::test_small())
            .fleet(1)
            .scheduler(SchedConfig {
                backlog_budget: 2,
                ..SchedConfig::default()
            })
            .build_v2();
        v2.submit(echo(1, "hpp"), 0).unwrap();
        v2.submit(echo(2, "hpp"), 0).unwrap();
        let err = v2.submit(echo(3, "hpp"), 0).unwrap_err();
        let WbError::Overloaded { retry_after_s } = err else {
            panic!("expected a shed, got {err:?}");
        };
        assert!(retry_after_s.is_finite() && retry_after_s > 0.0);
    }

    #[test]
    fn shards_knob_reaches_both_architectures() {
        let v2 = ClusterBuilder::new(DeviceConfig::test_small())
            .fleet(2)
            .shards(4)
            .build_v2();
        assert_eq!(v2.shards(), 4);
        let courses = ["hpp", "ece408", "cs100", "pmpp"];
        for j in 0..8u64 {
            v2.submit(echo(j, courses[j as usize % 4]), 0).unwrap();
        }
        for r in 0..10 {
            v2.pump(r);
        }
        assert_eq!(v2.completed(), 8, "multi-lane cluster drains every course");

        let v1 = ClusterBuilder::new(DeviceConfig::test_small())
            .fleet(2)
            .shards(0)
            .build_v1();
        assert_eq!(v1.shards(), 1, "zero clamps to a single lane");
        assert!(v1.submit(&echo(9, "hpp"), 0).unwrap().compiled());
    }

    #[test]
    fn traced_builds_share_the_recorder() {
        let obs = Arc::new(Recorder::traced());
        let v1 = ClusterBuilder::new(DeviceConfig::test_small())
            .traced(Arc::clone(&obs))
            .build_v1();
        v1.submit(&echo(9, "hpp"), 0).unwrap();
        assert!(obs.span(9).is_some(), "the job's span landed on the sink");
    }
}
