//! Seeded chaos campaigns: worker churn, zone partitions, and the
//! exactly-once audit.
//!
//! §VI-B's fault story ("workers are cattle, the queue is the source
//! of truth") is easy to claim and easy to quietly regress. This
//! module makes it testable: a campaign drives any
//! [`Platform`] + [`FleetControl`] cluster through a *seeded*,
//! reproducible schedule of worker kills, revives, and zone
//! partition/heal events while load keeps arriving — then audits that
//! every admitted job completed **exactly once**, that no capability-
//! tagged job was stranded by the death of the only node that could
//! run it, that the broker books reconcile
//! (`queue_enqueued == queue_acked + dead_letters`, and no dead
//! letters at all), and that every surviving span is complete,
//! ordered, and terminates in `Graded` with `Retry`/`Failover`
//! annotations where the schedule implies them.
//!
//! Determinism: the kill schedule derives from a private SplitMix64
//! stream seeded by [`ChaosConfig::seed`] — no external RNG crate —
//! so a campaign replays byte-identically everywhere, and `forced_kills`
//! pins the structurally-required events (e.g. "a Standby worker dies
//! at round 5") independent of the probabilistic MTTF stream.

use crate::fleet::{FleetControl, ReliabilityClass, Zone};
use crate::platform::Platform;
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet};
use wb_obs::{Annotation, JobPhase, Recorder};
use wb_worker::JobRequest;

/// SplitMix64: tiny, seedable, and identical on every platform. The
/// campaign's only randomness source — deliberately *not* `rand`, so
/// shadow builds, CI, and laptops replay the same schedule.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// One-in-`denom` chance; `denom == 0` means never.
    fn one_in(&mut self, denom: u64) -> bool {
        denom != 0 && self.next().is_multiple_of(denom)
    }
}

/// A campaign schedule. Rounds are 0-based; event rounds compare
/// against the loop counter before that round's pump.
#[derive(Debug, Clone, Serialize)]
pub struct ChaosConfig {
    /// Seed for the probabilistic kill stream.
    pub seed: u64,
    /// Load rounds to run (the recovery drain comes after).
    pub rounds: u64,
    /// Virtual milliseconds per round; pump `r` runs at
    /// `(r + 1) * ms_per_round`.
    pub ms_per_round: u64,
    /// Jobs offered to admission control each round.
    pub arrivals_per_round: usize,
    /// Every `n`th job id is capability-tagged (asks for `mpi`);
    /// `0` disables tagging.
    pub tagged_every: u64,
    /// Mean rounds to failure for on-demand workers: each alive
    /// on-demand worker dies with probability `1/n` per round.
    /// `0` means on-demand workers never die probabilistically.
    pub mttf_rounds_on_demand: u64,
    /// Mean rounds to failure for spot workers (preemption pressure);
    /// `0` disables.
    pub mttf_rounds_spot: u64,
    /// Rounds after its kill at which a worker is revived
    /// (the "replacement node boots" delay); `0` means killed workers
    /// stay down until the recovery phase.
    pub revive_after_rounds: u64,
    /// Cut this zone at this round (single-AZ clusters report the
    /// event as unsupported and the campaign carries on).
    pub partition_at: Option<(u64, Zone)>,
    /// Heal whatever is partitioned at this round.
    pub heal_at: Option<u64>,
    /// Deterministic kills — `(round, zone)` pairs; each takes the
    /// lowest-id alive worker in the zone, *bypassing* `min_alive`.
    /// These pin the structural gates ("≥20% killed, both zones hit")
    /// regardless of the seed.
    pub forced_kills: Vec<(u64, Zone)>,
    /// The probabilistic stream never drops the fleet below this many
    /// alive workers (forced kills may).
    pub min_alive: usize,
    /// Recovery-phase pump budget after load stops.
    pub drain_rounds: u64,
    /// First job id the campaign submits (ids ascend from here);
    /// raise it when the cluster has already seen jobs.
    pub first_job_id: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0xC0FFEE,
            rounds: 20,
            ms_per_round: 100,
            arrivals_per_round: 2,
            tagged_every: 0,
            mttf_rounds_on_demand: 0,
            mttf_rounds_spot: 0,
            revive_after_rounds: 0,
            partition_at: None,
            heal_at: None,
            forced_kills: Vec::new(),
            min_alive: 1,
            drain_rounds: 200,
            first_job_id: 1,
        }
    }
}

impl ChaosConfig {
    /// The CI smoke campaign: short, single forced kill plus spot
    /// preemption pressure, quick revives.
    pub fn smoke() -> Self {
        ChaosConfig {
            rounds: 30,
            arrivals_per_round: 2,
            tagged_every: 5,
            mttf_rounds_spot: 8,
            revive_after_rounds: 5,
            forced_kills: vec![(8, Zone::Primary), (16, Zone::Standby)],
            ..ChaosConfig::default()
        }
    }

    /// The full campaign skeleton: sustained load, kills in both
    /// zones, and a partition/heal cycle mid-load. Callers extend
    /// `forced_kills` to cover ≥20% of their fleet.
    pub fn full() -> Self {
        ChaosConfig {
            rounds: 60,
            arrivals_per_round: 3,
            tagged_every: 4,
            mttf_rounds_on_demand: 40,
            mttf_rounds_spot: 10,
            revive_after_rounds: 6,
            partition_at: Some((20, Zone::Standby)),
            heal_at: Some(35),
            forced_kills: vec![(10, Zone::Primary), (14, Zone::Standby)],
            ..ChaosConfig::default()
        }
    }
}

/// What a campaign did and what the audit found. Serializable so the
/// churn bench can embed it in `BENCH_churn.json`.
#[derive(Debug, Clone, Serialize)]
pub struct CampaignReport {
    /// Jobs admission control accepted.
    pub admitted: u64,
    /// Jobs shed by admission control (not a fault — sheds are the
    /// overload contract working).
    pub shed: u64,
    /// Admitted jobs whose outcome was retrieved exactly once.
    pub completed: u64,
    /// Admitted jobs that carried the capability tag.
    pub tagged_jobs: u64,
    /// Tagged jobs that never completed — the heterogeneous-churn
    /// failure mode this harness exists to catch.
    pub stranded_tagged: u64,
    /// Workers killed (forced + probabilistic).
    pub kills: u64,
    /// Kills landing in the primary zone.
    pub kills_primary: u64,
    /// Kills landing in the standby zone.
    pub kills_standby: u64,
    /// Forced kills that found no alive worker in their zone.
    pub forced_kill_misses: u64,
    /// Workers revived (scheduled + recovery phase).
    pub revives: u64,
    /// Partition events the cluster actually performed.
    pub partitions: u64,
    /// Heal events the cluster actually performed.
    pub heals: u64,
    /// Redeliveries observed (recorder counter delta).
    pub retries: u64,
    /// Broker failovers observed (recorder counter delta).
    pub failovers: u64,
    /// Admitted spans carrying a `Failover` annotation.
    pub failover_marked_spans: u64,
    /// Dead letters accrued during the campaign (must be 0 —
    /// dead-lettering an admitted job violates exactly-once).
    pub dead_lettered: u64,
    /// `Δenqueued − Δacked − Δdead_letters` over the campaign; 0 when
    /// the books reconcile.
    pub books_delta: i64,
    /// Per-retried-job recovery latency: terminal-phase time minus
    /// first-queued time, for every admitted span with a `Retry`.
    pub recovery_ms: Vec<u64>,
    /// Recovery-phase pumps actually spent.
    pub drain_rounds_used: u64,
    /// Every audit failure, human-readable. Empty ⇔ clean.
    pub violations: Vec<String>,
}

impl CampaignReport {
    /// Admitted jobs with no retrievable outcome.
    pub fn jobs_lost(&self) -> u64 {
        self.admitted.saturating_sub(self.completed)
    }

    /// True when the audit found nothing.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Panic with every violation — the test-side gate.
    pub fn assert_clean(&self) {
        assert!(
            self.is_clean(),
            "chaos campaign found {} violation(s):\n  {}",
            self.violations.len(),
            self.violations.join("\n  ")
        );
    }

    /// p99 of [`recovery_ms`](Self::recovery_ms) (0 when no job
    /// retried).
    pub fn recovery_p99_ms(&self) -> u64 {
        percentile(&self.recovery_ms, 99)
    }

    /// p50 of [`recovery_ms`](Self::recovery_ms).
    pub fn recovery_p50_ms(&self) -> u64 {
        percentile(&self.recovery_ms, 50)
    }
}

fn percentile(samples: &[u64], p: u64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = (sorted.len() as u64 * p).div_ceil(100);
    sorted[(rank.max(1) as usize - 1).min(sorted.len() - 1)]
}

/// Run one campaign. `make_job(id, tagged)` builds each arrival — it
/// must set `job_id = id`, must produce a job that grades cleanly on
/// a healthy cluster, and when `tagged` must request the `mpi`
/// capability. The audit needs spans, so `obs` must be the *traced*
/// recorder the cluster was built with (a noop recorder is itself
/// reported as a violation rather than silently passing).
pub fn run_campaign<P, F>(
    cluster: &P,
    obs: &Recorder,
    cfg: &ChaosConfig,
    mut make_job: F,
) -> CampaignReport
where
    P: Platform + FleetControl,
    F: FnMut(u64, bool) -> JobRequest,
{
    let baseline_done = cluster.completed();
    let snap0 = obs.snapshot();
    let mut rng = Rng::new(cfg.seed);

    let mut admitted: Vec<u64> = Vec::new();
    let mut tagged_ids: BTreeSet<u64> = BTreeSet::new();
    let mut killed_at: BTreeMap<u64, u64> = BTreeMap::new();
    let mut cut_zone: Option<Zone> = None;
    let mut next_id = cfg.first_job_id;

    let mut r = CampaignReport {
        admitted: 0,
        shed: 0,
        completed: 0,
        tagged_jobs: 0,
        stranded_tagged: 0,
        kills: 0,
        kills_primary: 0,
        kills_standby: 0,
        forced_kill_misses: 0,
        revives: 0,
        partitions: 0,
        heals: 0,
        retries: 0,
        failovers: 0,
        failover_marked_spans: 0,
        dead_lettered: 0,
        books_delta: 0,
        recovery_ms: Vec::new(),
        drain_rounds_used: 0,
        violations: Vec::new(),
    };

    let count_kill = |report: &mut CampaignReport, zone: Zone| {
        report.kills += 1;
        match zone {
            Zone::Primary => report.kills_primary += 1,
            Zone::Standby => report.kills_standby += 1,
        }
    };

    for round in 0..cfg.rounds {
        let now = (round + 1) * cfg.ms_per_round;

        // Replacement nodes boot: revive workers whose downtime lapsed.
        if cfg.revive_after_rounds > 0 {
            let due: Vec<u64> = killed_at
                .iter()
                .filter(|(_, &at)| at + cfg.revive_after_rounds <= round)
                .map(|(&id, _)| id)
                .collect();
            for id in due {
                killed_at.remove(&id);
                if cluster.revive_worker(id) {
                    r.revives += 1;
                }
            }
        }

        // Network events.
        if let Some((at, zone)) = cfg.partition_at {
            if at == round && cluster.partition_zone(zone) {
                r.partitions += 1;
                cut_zone = Some(zone);
            }
        }
        if cfg.heal_at == Some(round) {
            if let Some(zone) = cut_zone.take() {
                if cluster.heal_zone(zone) {
                    r.heals += 1;
                }
            }
        }

        // Load keeps arriving through the chaos.
        for _ in 0..cfg.arrivals_per_round {
            let id = next_id;
            next_id += 1;
            let tagged = cfg.tagged_every > 0 && id.is_multiple_of(cfg.tagged_every);
            match cluster.submit_job(make_job(id, tagged), now) {
                Ok(jid) => {
                    admitted.push(jid);
                    if tagged {
                        tagged_ids.insert(jid);
                    }
                }
                Err(_) => r.shed += 1,
            }
        }

        // Deterministic kills first — they pin the structural gates.
        for &(at, zone) in &cfg.forced_kills {
            if at != round {
                continue;
            }
            let view = cluster.describe_fleet();
            let victim = view
                .workers
                .iter()
                .filter(|w| w.alive && w.zone == zone)
                .map(|w| w.id)
                .min();
            match victim {
                Some(id) if cluster.kill_worker(id) => {
                    killed_at.insert(id, round);
                    count_kill(&mut r, zone);
                }
                _ => r.forced_kill_misses += 1,
            }
        }

        // Probabilistic churn, MTTF per reliability class.
        let view = cluster.describe_fleet();
        let mut alive = view.alive();
        for w in &view.workers {
            if !w.alive || alive <= cfg.min_alive {
                continue;
            }
            let mttf = match w.reliability_class {
                ReliabilityClass::OnDemand => cfg.mttf_rounds_on_demand,
                ReliabilityClass::Spot => cfg.mttf_rounds_spot,
            };
            if rng.one_in(mttf) && cluster.kill_worker(w.id) {
                killed_at.insert(w.id, round);
                count_kill(&mut r, w.zone);
                alive -= 1;
            }
        }

        cluster.pump(now);
    }

    r.admitted = admitted.len() as u64;
    r.tagged_jobs = tagged_ids.len() as u64;

    // Recovery: heal anything still cut, boot every downed worker,
    // then drain. The exactly-once claim is about *eventual* delivery
    // once the fleet is whole again.
    if let Some(zone) = cut_zone.take().or(cluster.describe_fleet().partitioned) {
        if cluster.heal_zone(zone) {
            r.heals += 1;
        }
    }
    for (&id, _) in killed_at.iter() {
        if cluster.revive_worker(id) {
            r.revives += 1;
        }
    }
    killed_at.clear();

    let mut now = cfg.rounds * cfg.ms_per_round;
    while cluster.completed() - baseline_done < r.admitted && r.drain_rounds_used < cfg.drain_rounds
    {
        now += cfg.ms_per_round;
        cluster.pump(now);
        r.drain_rounds_used += 1;
    }

    audit(
        cluster,
        obs,
        &snap0,
        &admitted,
        &tagged_ids,
        baseline_done,
        &mut r,
    );
    r
}

/// The post-campaign audit: exactly-once, books, spans, tags.
fn audit<P: Platform + FleetControl>(
    cluster: &P,
    obs: &Recorder,
    snap0: &wb_obs::MetricsSnapshot,
    admitted: &[u64],
    tagged_ids: &BTreeSet<u64>,
    baseline_done: u64,
    r: &mut CampaignReport,
) {
    // Exactly-once, half one: the cluster's lifetime counter moved by
    // exactly the number of admitted jobs. More means double-grading.
    let done_delta = cluster.completed() - baseline_done;
    if done_delta > r.admitted {
        r.violations.push(format!(
            "completed {done_delta} jobs but only admitted {} — double-grading",
            r.admitted
        ));
    }

    // Exactly-once, half two: every admitted job has exactly one
    // retrievable outcome (`take_result` consumes it, so a duplicate
    // would have been counted above; a miss here is a lost job).
    for &id in admitted {
        match cluster.take_result(id) {
            Some(_) => r.completed += 1,
            None => {
                if tagged_ids.contains(&id) {
                    r.stranded_tagged += 1;
                    r.violations.push(format!(
                        "tagged job {id} stranded: no capable worker outcome"
                    ));
                } else {
                    r.violations.push(format!("job {id} lost: no outcome"));
                }
            }
        }
    }

    // Scheduler-book reconciliation on the recorder's broker counters.
    let snap = obs.snapshot();
    let d = |name: &str| snap.counter(name).saturating_sub(snap0.counter(name));
    r.retries = d("retries");
    r.failovers = d("failovers");
    r.dead_lettered = d("dead_letters");
    r.books_delta = d("queue_enqueued") as i64 - d("queue_acked") as i64 - r.dead_lettered as i64;
    if r.books_delta != 0 {
        r.violations.push(format!(
            "broker books off by {}: enqueued ≠ acked + dead-lettered",
            r.books_delta
        ));
    }
    if r.dead_lettered != 0 {
        r.violations.push(format!(
            "{} admitted job(s) dead-lettered — exactly-once violated",
            r.dead_lettered
        ));
    }

    // Span integrity on everything that survived.
    if let Some(&probe) = admitted.first() {
        if obs.span(probe).is_none() {
            r.violations
                .push("campaign requires a traced recorder: no spans recorded".into());
            return;
        }
    }
    for &id in admitted {
        let Some(span) = obs.span(id) else {
            r.violations.push(format!("job {id} has no span"));
            continue;
        };
        if !span.is_ordered() {
            r.violations.push(format!("job {id} span out of order"));
        }
        if !span.is_complete() {
            r.violations.push(format!("job {id} span incomplete"));
        } else if span.terminal() != Some(JobPhase::Graded) {
            r.violations.push(format!(
                "job {id} terminated {:?}, expected Graded",
                span.terminal()
            ));
        }
        if span.has(Annotation::Failover) {
            r.failover_marked_spans += 1;
        }
        if span.has(Annotation::Retry) {
            if let (Some(first), Some(last)) = (span.phases.first(), span.phases.last()) {
                r.recovery_ms.push(last.1.saturating_sub(first.1));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ClusterBuilder;
    use crate::AutoscalePolicy;
    use libwb::Dataset;
    use minicuda::DeviceConfig;
    use std::sync::Arc;
    use wb_worker::{DatasetCase, JobAction, LabSpec, WorkerConfig};

    /// A fleet image that can take the campaign's `mpi`-tagged jobs.
    fn mpi_image() -> WorkerConfig {
        WorkerConfig {
            capabilities: ["cuda", "mpi"].into(),
            ..WorkerConfig::default()
        }
    }

    fn job(job_id: u64, tagged: bool) -> JobRequest {
        let mut spec = LabSpec::cuda_test("chaos");
        spec.course = "hpp".to_string();
        if tagged {
            spec.tags.insert("mpi".into());
        }
        JobRequest {
            job_id,
            user: format!("u{job_id}"),
            source: r#"
                int main() {
                    int n;
                    float* a = wbImportVector(0, &n);
                    wbSolution(a, n);
                    return 0;
                }
            "#
            .to_string(),
            spec,
            datasets: vec![DatasetCase {
                name: "d0".into(),
                inputs: vec![Dataset::Vector(vec![1.0, 2.0])],
                expected: Dataset::Vector(vec![1.0, 2.0]),
            }],
            action: JobAction::FullGrade,
        }
    }

    #[test]
    fn seeded_campaign_replays_identically_and_stays_clean_on_v2() {
        let run = || {
            let obs = Arc::new(wb_obs::Recorder::traced());
            let cluster = ClusterBuilder::new(DeviceConfig::test_small())
                .fleet(4)
                .shards(1)
                .traced(Arc::clone(&obs))
                .broker_tuning(5, 50)
                .worker_config(mpi_image())
                .build_v2();
            let cfg = ChaosConfig {
                rounds: 12,
                ms_per_round: 50,
                arrivals_per_round: 2,
                tagged_every: 3,
                revive_after_rounds: 4,
                forced_kills: vec![(3, Zone::Primary), (5, Zone::Standby)],
                drain_rounds: 80,
                ..ChaosConfig::default()
            };
            run_campaign(&cluster, &obs, &cfg, job)
        };
        let a = run();
        a.assert_clean();
        assert_eq!(a.kills, 2, "both forced kills landed");
        assert_eq!(a.kills_primary, 1);
        assert_eq!(a.kills_standby, 1);
        assert!(a.admitted > 0 && a.tagged_jobs > 0);
        assert_eq!(a.completed, a.admitted);
        assert_eq!(a.jobs_lost(), 0);

        let b = run();
        assert_eq!(a.admitted, b.admitted, "same seed, same campaign");
        assert_eq!(a.kills, b.kills);
        assert_eq!(a.shed, b.shed);
    }

    #[test]
    fn partition_heal_cycle_mid_campaign_loses_nothing() {
        let obs = Arc::new(wb_obs::Recorder::traced());
        let cluster = ClusterBuilder::new(DeviceConfig::test_small())
            .fleet(4)
            .shards(1)
            .traced(Arc::clone(&obs))
            .broker_tuning(5, 50)
            .build_v2();
        let cfg = ChaosConfig {
            rounds: 16,
            ms_per_round: 50,
            arrivals_per_round: 2,
            partition_at: Some((4, Zone::Standby)),
            heal_at: Some(10),
            drain_rounds: 80,
            ..ChaosConfig::default()
        };
        let report = run_campaign(&cluster, &obs, &cfg, job);
        report.assert_clean();
        assert_eq!(report.partitions, 1);
        assert_eq!(report.heals, 1);
        assert_eq!(report.completed, report.admitted);
    }

    #[test]
    fn v1_campaign_runs_without_zones() {
        let obs = Arc::new(wb_obs::Recorder::traced());
        let cluster = ClusterBuilder::new(DeviceConfig::test_small())
            .fleet(2)
            .traced(Arc::clone(&obs))
            .build_v1();
        let cfg = ChaosConfig {
            rounds: 10,
            arrivals_per_round: 1,
            revive_after_rounds: 2,
            // v1 is single-AZ: the partition is reported unsupported
            // and the campaign carries on.
            partition_at: Some((2, Zone::Standby)),
            forced_kills: vec![(3, Zone::Primary)],
            drain_rounds: 60,
            ..ChaosConfig::default()
        };
        let report = run_campaign(&cluster, &obs, &cfg, job);
        report.assert_clean();
        assert_eq!(
            report.partitions, 0,
            "single-AZ cluster has no zones to cut"
        );
        assert_eq!(report.kills, 1);
        assert_eq!(report.completed, report.admitted);
    }

    #[test]
    fn untraced_recorder_is_reported_not_ignored() {
        let obs = Arc::new(wb_obs::Recorder::noop());
        let cluster = ClusterBuilder::new(DeviceConfig::test_small())
            .fleet(2)
            .policy(AutoscalePolicy::Static(2))
            .build_v2();
        let cfg = ChaosConfig {
            rounds: 4,
            arrivals_per_round: 1,
            ..ChaosConfig::default()
        };
        let report = run_campaign(&cluster, &obs, &cfg, job);
        assert!(!report.is_clean());
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("traced recorder")),
            "got: {:?}",
            report.violations
        );
    }

    #[test]
    fn percentile_math_is_stable() {
        assert_eq!(percentile(&[], 99), 0);
        assert_eq!(percentile(&[7], 99), 7);
        assert_eq!(percentile(&[1, 2, 3, 4], 50), 2);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 99), 99);
        assert_eq!(percentile(&v, 50), 50);
    }
}
