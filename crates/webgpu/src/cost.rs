//! AWS-style cost model for provisioning experiments.
//!
//! §II-C motivates elasticity with cost: over-provisioning for the
//! course's first week wastes money for the remaining eight. Rates are
//! deliberately round numbers — only the *ratios* between policies
//! matter for the provisioning experiment.

use serde::{Deserialize, Serialize};

/// Hourly prices (USD) per node class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// GPU worker node per hour (g2.2xlarge-era pricing).
    pub gpu_worker_hour: f64,
    /// Preemptible (spot) GPU worker node per hour — the historical
    /// ~70% discount off on-demand, bought with eviction risk.
    #[serde(default = "default_spot_rate")]
    pub spot_worker_hour: f64,
    /// Web server node per hour.
    pub web_server_hour: f64,
    /// Database node per hour.
    pub database_hour: f64,
}

fn default_spot_rate() -> f64 {
    0.195
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            gpu_worker_hour: 0.65,
            spot_worker_hour: default_spot_rate(),
            web_server_hour: 0.10,
            database_hour: 0.20,
        }
    }
}

/// Accumulated cost over a simulated course.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CostReport {
    /// GPU-hours consumed.
    pub gpu_hours: f64,
    /// The subset of [`gpu_hours`](Self::gpu_hours) billed at the
    /// spot rate.
    #[serde(default)]
    pub spot_gpu_hours: f64,
    /// GPU-hours during which the worker actually ran jobs.
    pub busy_gpu_hours: f64,
    /// Web/database hours (fixed tier).
    pub fixed_hours: f64,
    /// Total dollars.
    pub dollars: f64,
    /// Peak fleet size observed.
    pub peak_fleet: usize,
}

impl CostReport {
    /// Fraction of paid GPU time that did useful work.
    pub fn utilization(&self) -> f64 {
        if self.gpu_hours == 0.0 {
            return 0.0;
        }
        (self.busy_gpu_hours / self.gpu_hours).min(1.0)
    }
}

/// Accumulates cost from hourly fleet samples.
#[derive(Debug)]
pub struct CostMeter {
    model: CostModel,
    report: CostReport,
}

impl CostMeter {
    /// Start metering with a price sheet.
    pub fn new(model: CostModel) -> Self {
        CostMeter {
            model,
            report: CostReport::default(),
        }
    }

    /// Record one hour with `fleet` GPU workers of which `busy_fraction`
    /// (0..=1) were busy on average, plus the fixed web/db tier.
    pub fn record_hour(&mut self, fleet: usize, busy_fraction: f64) {
        self.record_hour_mixed(fleet, 0, busy_fraction);
    }

    /// Record one hour of a class-split fleet: `on_demand` workers at
    /// full price, `spot` workers at the discounted rate, sharing one
    /// average `busy_fraction`.
    pub fn record_hour_mixed(&mut self, on_demand: usize, spot: usize, busy_fraction: f64) {
        let busy = busy_fraction.clamp(0.0, 1.0);
        let fleet = on_demand + spot;
        self.report.gpu_hours += fleet as f64;
        self.report.spot_gpu_hours += spot as f64;
        self.report.busy_gpu_hours += fleet as f64 * busy;
        self.report.fixed_hours += 1.0;
        self.report.dollars += on_demand as f64 * self.model.gpu_worker_hour
            + spot as f64 * self.model.spot_worker_hour
            + self.model.web_server_hour
            + self.model.database_hour;
        self.report.peak_fleet = self.report.peak_fleet.max(fleet);
    }

    /// Finish and take the report.
    pub fn finish(self) -> CostReport {
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hourly_accumulation() {
        let mut m = CostMeter::new(CostModel::default());
        m.record_hour(10, 0.5);
        m.record_hour(2, 1.0);
        let r = m.finish();
        assert_eq!(r.gpu_hours, 12.0);
        assert_eq!(r.busy_gpu_hours, 7.0);
        assert_eq!(r.peak_fleet, 10);
        let expected = 12.0 * 0.65 + 2.0 * (0.10 + 0.20);
        assert!((r.dollars - expected).abs() < 1e-9);
    }

    #[test]
    fn mixed_hours_bill_spot_at_the_discount() {
        let mut m = CostMeter::new(CostModel::default());
        m.record_hour_mixed(2, 6, 1.0);
        let r = m.finish();
        assert_eq!(r.gpu_hours, 8.0);
        assert_eq!(r.spot_gpu_hours, 6.0);
        assert_eq!(r.peak_fleet, 8);
        let expected = 2.0 * 0.65 + 6.0 * 0.195 + 0.30;
        assert!((r.dollars - expected).abs() < 1e-9);
        // The same capacity all on-demand costs strictly more.
        let mut od = CostMeter::new(CostModel::default());
        od.record_hour(8, 1.0);
        assert!(od.finish().dollars > r.dollars);
    }

    #[test]
    fn utilization_bounds() {
        let mut m = CostMeter::new(CostModel::default());
        m.record_hour(4, 2.0); // clamped to 1.0
        let r = m.finish();
        assert_eq!(r.utilization(), 1.0);
        assert_eq!(CostReport::default().utilization(), 0.0);
    }

    #[test]
    fn static_fleet_costs_more_than_scaled_for_spiky_load() {
        // The §II-C argument in numbers: a 20-worker static fleet vs a
        // fleet that follows a load of 20 for 10 hours and 2 for 90.
        let mut staticc = CostMeter::new(CostModel::default());
        let mut scaled = CostMeter::new(CostModel::default());
        for h in 0..100 {
            let load_workers = if h < 10 { 20 } else { 2 };
            staticc.record_hour(20, load_workers as f64 / 20.0);
            scaled.record_hour(load_workers, 0.9);
        }
        let s = staticc.finish();
        let d = scaled.finish();
        assert!(
            d.dollars < s.dollars / 2.0,
            "{} vs {}",
            d.dollars,
            s.dollars
        );
        assert!(d.utilization() > s.utilization());
    }
}
