//! End-to-end course runs: real labs + the web server + a cluster +
//! simulated students.
//!
//! `CourseRun` deploys a Table II course's labs, registers a cohort,
//! and walks it week by week: students save code (some submit the
//! reference solution, some a buggy variant, some give up mid-course),
//! run datasets, answer questions, and submit. The report aggregates
//! what the instructor roster would show.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use wb_labs::{catalog, LabScale};
use wb_server::{DeviceKind, JobDispatcher, SubmitRequest, WbError, WebGpuServer};

use crate::sim::population::sample_device;

/// Configuration for a simulated course offering.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CourseRun {
    /// Catalog course id (`hpp`, `ece408`, `ece598`, `pumps`).
    pub course_id: String,
    /// Cohort size (scaled down from real enrollments for test speed).
    pub students: usize,
    /// Weekly probability an active student continues.
    pub weekly_continue: f64,
    /// Probability a student's submission is buggy in a given week.
    pub buggy_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl CourseRun {
    /// A small, fast configuration for tests.
    pub fn small(course_id: &str) -> Self {
        CourseRun {
            course_id: course_id.to_string(),
            students: 8,
            weekly_continue: 0.8,
            buggy_fraction: 0.25,
            seed: 42,
        }
    }
}

/// Per-lab aggregate of a course run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabReport {
    /// Lab id.
    pub lab_id: String,
    /// Students who submitted.
    pub submitters: usize,
    /// Submissions that scored full dataset points.
    pub perfect: usize,
    /// Mean auto-score across submitters.
    pub mean_score: f64,
}

/// The whole course's outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CourseReport {
    /// Course id.
    pub course_id: String,
    /// Students registered.
    pub registered: usize,
    /// Students still active in each lab-week.
    pub weekly_active: Vec<usize>,
    /// Students who finished every lab.
    pub completions: usize,
    /// Per-lab aggregates, in catalog order.
    pub labs: Vec<LabReport>,
    /// Total jobs dispatched to the cluster.
    pub jobs: u64,
}

/// Run a course against any dispatcher-backed cluster.
pub fn run_course(cfg: &CourseRun, dispatcher: Box<dyn JobDispatcher>) -> CourseReport {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let srv = WebGpuServer::new(dispatcher);
    srv.register_instructor("staff", "pw")
        .expect("fresh server");
    let staff = srv
        .login("staff", "pw", DeviceKind::Desktop, 0)
        .expect("instructor login");

    let lab_ids = catalog::labs_for_course(&cfg.course_id);
    assert!(!lab_ids.is_empty(), "unknown course {}", cfg.course_id);
    for id in &lab_ids {
        let mut lab = wb_labs::definition(id, LabScale::Small).expect("catalog lab");
        // Stamp the offering onto the spec: the fair-share scheduler
        // arbitrates between courses by this key.
        lab.spec.course = cfg.course_id.clone();
        srv.deploy_lab(staff, lab).expect("deploy");
    }

    // Register and log in the cohort.
    let mut tokens = Vec::new();
    for i in 0..cfg.students {
        let name = format!("student{i}");
        srv.register_student(&name, "pw").expect("register");
        let device = sample_device(&mut rng);
        let token = srv.login(&name, "pw", device, 0).expect("login");
        tokens.push((name, token));
    }

    let mut active: Vec<bool> = vec![true; cfg.students];
    let mut weekly_active = Vec::new();
    let mut jobs = 0u64;
    let mut lab_reports: Vec<LabReport> = lab_ids
        .iter()
        .map(|id| LabReport {
            lab_id: id.to_string(),
            submitters: 0,
            perfect: 0,
            mean_score: 0.0,
        })
        .collect();

    let week_ms: u64 = 7 * 24 * 3600 * 1000;
    for (week, lab_id) in lab_ids.iter().enumerate() {
        // Dropout between weeks.
        if week > 0 {
            for a in active.iter_mut() {
                if *a && !rng.gen_bool(cfg.weekly_continue) {
                    *a = false;
                }
            }
        }
        weekly_active.push(active.iter().filter(|&&a| a).count());

        let solution = wb_labs::solution(lab_id).expect("catalog solution");
        let report = &mut lab_reports[week];
        let mut score_sum = 0.0;
        for (i, (_, token)) in tokens.iter().enumerate() {
            if !active[i] {
                continue;
            }
            let now = week as u64 * week_ms + (i as u64 + 1) * 60_000;
            let buggy = rng.gen_bool(cfg.buggy_fraction);
            let source = if buggy {
                // A plausible bug: drop the final character block of
                // the kernel's body guard by mangling a comparison.
                solution
                    .replacen("i < n", "i <= n", 1)
                    .replacen("row < m", "row <= m", 1)
            } else {
                solution.to_string()
            };
            srv.save_code(*token, lab_id, &source, now).expect("save");
            let sub = match srv.submit(&SubmitRequest::full_grade(*token, lab_id).at(now + 1_000)) {
                Ok(s) => s,
                Err(e) => panic!("submission failed: {e}"),
            };
            jobs += 1;
            report.submitters += 1;
            score_sum += sub.score.unwrap_or(0.0);
            if sub.all_passed() {
                report.perfect += 1;
            }
        }
        if report.submitters > 0 {
            report.mean_score = score_sum / report.submitters as f64;
        }
    }

    CourseReport {
        course_id: cfg.course_id.clone(),
        registered: cfg.students,
        weekly_active,
        completions: active.iter().filter(|&&a| a).count(),
        labs: lab_reports,
        jobs,
    }
}

/// Convenience: run a course on a fresh v1 cluster of `workers` nodes.
pub fn run_course_v1(cfg: &CourseRun, workers: usize) -> CourseReport {
    let cluster = crate::ClusterBuilder::new(minicuda::DeviceConfig::test_small())
        .fleet(workers)
        .build_v1();
    run_course(cfg, Box::new(cluster))
}

/// Convenience: run a course on a v2 cluster with a policy.
pub fn run_course_v2(
    cfg: &CourseRun,
    initial_workers: usize,
    policy: crate::autoscaler::AutoscalePolicy,
) -> CourseReport {
    let cluster = Arc::new(
        crate::ClusterBuilder::new(minicuda::DeviceConfig::test_small())
            .fleet(initial_workers)
            .policy(policy)
            .build_v2(),
    );
    struct Shim(Arc<crate::v2::ClusterV2>);
    impl JobDispatcher for Shim {
        fn dispatch(
            &self,
            req: wb_worker::JobRequest,
            now_ms: u64,
        ) -> Result<wb_worker::JobOutcome, WbError> {
            self.0.dispatch(req, now_ms)
        }
    }
    run_course(cfg, Box::new(Shim(cluster)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autoscaler::AutoscalePolicy;

    #[test]
    fn small_hpp_course_runs_end_to_end_on_v1() {
        let cfg = CourseRun {
            course_id: "hpp".to_string(),
            students: 4,
            weekly_continue: 0.9,
            buggy_fraction: 0.25,
            seed: 7,
        };
        let report = run_course_v1(&cfg, 2);
        assert_eq!(report.labs.len(), 8, "HPP hosts 8 labs");
        assert_eq!(report.registered, 4);
        assert!(report.jobs > 0);
        // Activity never grows.
        assert!(report.weekly_active.windows(2).all(|w| w[0] >= w[1]));
        // Clean submissions score 80+ (compile + datasets); buggy ones
        // drag the mean below the max but the first lab has submitters.
        assert!(report.labs[0].submitters > 0);
    }

    #[test]
    fn pumps_course_includes_mpi_on_v2() {
        let cfg = CourseRun {
            course_id: "pumps".to_string(),
            students: 2,
            weekly_continue: 1.0, // the one-week school has no dropout
            buggy_fraction: 0.0,
            seed: 9,
        };
        // The MPI lab is tagged; the default fleet lacks the tags, so
        // grow capabilities first via the config service inside the
        // dispatcher shim — run_course_v2 uses default config, so give
        // the fleet mpi/multi-gpu through a custom cluster.
        let cluster = Arc::new(crate::v2::ClusterV2::new(
            2,
            minicuda::DeviceConfig::test_small(),
            AutoscalePolicy::Static(2),
        ));
        cluster.config.update(|c| {
            c.capabilities.insert("mpi".into());
            c.capabilities.insert("multi-gpu".into());
            c.image = "webgpu/full".to_string();
        });
        struct Shim(Arc<crate::v2::ClusterV2>);
        impl JobDispatcher for Shim {
            fn dispatch(
                &self,
                req: wb_worker::JobRequest,
                now_ms: u64,
            ) -> Result<wb_worker::JobOutcome, wb_server::WbError> {
                self.0.dispatch(req, now_ms)
            }
        }
        let report = run_course(&cfg, Box::new(Shim(cluster)));
        assert!(report.labs.iter().any(|l| l.lab_id == "mpi-stencil"));
        let mpi = report
            .labs
            .iter()
            .find(|l| l.lab_id == "mpi-stencil")
            .unwrap();
        assert_eq!(mpi.perfect, 2, "clean solutions pass the MPI lab");
        assert_eq!(report.completions, 2);
    }

    #[test]
    fn buggy_students_score_less_than_clean_ones() {
        let clean = run_course_v1(
            &CourseRun {
                course_id: "ece408".to_string(),
                students: 3,
                weekly_continue: 1.0,
                buggy_fraction: 0.0,
                seed: 1,
            },
            1,
        );
        let buggy = run_course_v1(
            &CourseRun {
                course_id: "ece408".to_string(),
                students: 3,
                weekly_continue: 1.0,
                buggy_fraction: 1.0,
                seed: 1,
            },
            1,
        );
        let clean_mean: f64 =
            clean.labs.iter().map(|l| l.mean_score).sum::<f64>() / clean.labs.len() as f64;
        let buggy_mean: f64 =
            buggy.labs.iter().map(|l| l.mean_score).sum::<f64>() / buggy.labs.len() as f64;
        assert!(
            clean_mean > buggy_mean,
            "clean {clean_mean} vs buggy {buggy_mean}"
        );
    }
}
