//! The administrators' dashboard (§VI-A).
//!
//! *"Each worker node constantly monitors the system, performing
//! necessary health checks, as well as validation of state. This
//! information is stored in a replicated database. An information
//! dashboard is available to the system administrators to track the
//! system status."* The dashboard snapshots a v2 cluster into a
//! serializable status record and renders the text view an operator
//! would read.

use crate::v2::ClusterV2;
use serde::{Deserialize, Serialize};
use wb_cache::CacheMetrics;
use wb_obs::{EventKind, HistogramSnapshot, MetricsSnapshot};
use wb_queue::BrokerMetrics;
use wb_sched::SchedSnapshot;

/// One worker's row on the dashboard.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerRow {
    /// Worker id.
    pub id: u64,
    /// Up or crashed.
    pub alive: bool,
    /// Jobs completed.
    pub jobs_done: u64,
    /// Driver restarts.
    pub restarts: u64,
    /// Busy virtual milliseconds.
    pub busy_ms: u64,
}

/// A full system snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Virtual time of the snapshot.
    pub at_ms: u64,
    /// Jobs visible in the queue.
    pub queue_depth: usize,
    /// Jobs delivered to workers and not yet acknowledged — with the
    /// concurrent pump, many can be in flight at once.
    pub in_flight: usize,
    /// Broker counters.
    pub broker: BrokerMetrics,
    /// Fleet rows.
    pub workers: Vec<WorkerRow>,
    /// Jobs completed platform-wide.
    pub completed: u64,
    /// Mean job wait in pump rounds.
    pub mean_wait_rounds: f64,
    /// Active config version.
    pub config_version: u64,
    /// Submission-cache counters (`None` on an uncached cluster).
    pub cache: Option<CacheMetrics>,
    /// Per-course fair-share scheduler backlogs.
    pub sched: SchedSnapshot,
    /// Tracing aggregates — counters, latency percentiles, recent
    /// events. `MetricsSnapshot::disabled()` on an untraced cluster.
    pub obs: MetricsSnapshot,
}

impl Snapshot {
    /// Capture the current state of a v2 cluster.
    pub fn capture(cluster: &ClusterV2, now_ms: u64) -> Snapshot {
        let mut workers = Vec::new();
        let mut i = 0;
        while let Some(w) = cluster.worker(i) {
            workers.push(WorkerRow {
                id: w.id(),
                alive: !w.is_crashed(),
                jobs_done: w.jobs_done(),
                restarts: w.restarts(),
                busy_ms: w.busy_ms(),
            });
            i += 1;
        }
        Snapshot {
            at_ms: now_ms,
            queue_depth: cluster.queue_depth(now_ms),
            in_flight: cluster.in_flight(now_ms),
            broker: cluster.broker_metrics(),
            workers,
            completed: cluster.completed(),
            mean_wait_rounds: cluster.mean_wait_rounds(),
            config_version: cluster.config.get().version,
            cache: cluster.cache_metrics(),
            sched: cluster.sched_snapshot(),
            obs: cluster.metrics_snapshot(),
        }
    }

    /// Fleet-wide utilization proxy: alive workers with ≥1 job done.
    pub fn active_fraction(&self) -> f64 {
        if self.workers.is_empty() {
            return 0.0;
        }
        let active = self
            .workers
            .iter()
            .filter(|w| w.alive && w.jobs_done > 0)
            .count();
        active as f64 / self.workers.len() as f64
    }

    /// Render the operator text view.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "WebGPU 2.0 status @ t={}ms   config v{}\n",
            self.at_ms, self.config_version
        ));
        out.push_str(&format!(
            "queue: {} visible, {} in flight | enqueued {} delivered {} acked {} timeouts {} dead {}\n",
            self.queue_depth,
            self.in_flight,
            self.broker.enqueued,
            self.broker.delivered,
            self.broker.acked,
            self.broker.timeouts,
            self.broker.dead_lettered
        ));
        out.push_str(&format!(
            "jobs completed: {} | mean wait: {:.1} rounds\n",
            self.completed, self.mean_wait_rounds
        ));
        if self.sched.courses.is_empty() {
            out.push_str("scheduler: no backlog\n");
        } else {
            out.push_str(&format!(
                "scheduler: {} held across {} course(s)\n",
                self.sched.total_backlog,
                self.sched.courses.len()
            ));
            for row in &self.sched.courses {
                out.push_str(&format!(
                    "  {:<12} backlog={:<5} deficit={}\n",
                    row.course, row.backlog, row.deficit
                ));
            }
        }
        if self.obs.enabled {
            out.push_str(&format!(
                "scheduler decisions: admitted {} | dequeued {} | browned-out {} | shed {} | aged promotions {}\n",
                self.obs.counter("sched_admitted"),
                self.obs.counter("sched_dequeues"),
                self.obs.counter("sched_brown_outs"),
                self.obs.counter("sched_shed"),
                self.obs.counter("sched_aged_promotions"),
            ));
        }
        match &self.cache {
            Some(cache) => {
                let t = cache.total();
                // `hit_rate()` is 0.0 (not NaN) when no lookup has
                // happened yet, so a t=0 snapshot renders "0.0%".
                out.push_str(&format!(
                    "cache: {:.1}% hit rate | {} hits {} misses {} coalesced | {} KiB resident, {} evictions\n",
                    t.hit_rate() * 100.0,
                    t.hits,
                    t.misses,
                    t.coalesced,
                    t.resident_bytes / 1024,
                    t.evictions
                ));
            }
            None => out.push_str("cache: disabled\n"),
        }
        out.push_str(&format!(
            "utilization: {:.0}% of {} workers active\n",
            self.active_fraction() * 100.0,
            self.workers.len()
        ));
        if self.obs.enabled {
            out.push_str(&format!(
                "latency p50/p95/p99: wait {}/{}/{} rounds | compile {}/{}/{} us | grade {}/{}/{} us\n",
                self.obs.queue_wait_rounds.p50,
                self.obs.queue_wait_rounds.p95,
                self.obs.queue_wait_rounds.p99,
                self.obs.compile_micros.p50,
                self.obs.compile_micros.p95,
                self.obs.compile_micros.p99,
                self.obs.grade_micros.p50,
                self.obs.grade_micros.p95,
                self.obs.grade_micros.p99,
            ));
        } else {
            out.push_str("latency p50/p95/p99: tracing disabled\n");
        }
        out.push_str("workers:\n");
        for w in &self.workers {
            out.push_str(&format!(
                "  #{:<3} {} jobs={:<5} restarts={:<2} busy={}ms\n",
                w.id,
                if w.alive { "up  " } else { "DOWN" },
                w.jobs_done,
                w.restarts,
                w.busy_ms
            ));
        }
        if self.obs.enabled {
            out.push_str(&format!(
                "recent events ({} dropped since boot):\n",
                self.obs.dropped_events
            ));
            for e in self.obs.recent_events.iter().rev().take(8) {
                out.push_str(&format!(
                    "  [{:>4}] t={}ms job={} {}\n",
                    e.seq,
                    e.at_ms,
                    e.job_id,
                    describe_event(&e.kind)
                ));
            }
        }
        out
    }
}

/// Operator-readable label for an event record.
fn describe_event(kind: &EventKind) -> String {
    match kind {
        EventKind::Phase(p) => format!("phase={p:?}"),
        EventKind::Annotated(a) => format!("note={a:?}"),
        EventKind::DeadLettered => "dead-lettered".to_string(),
        EventKind::Autoscale { from, to } => format!("autoscale {from}->{to}"),
    }
}

/// Shared percentile formatter for experiment harnesses: `"p50 {} /
/// p95 {} / p99 {}"` with the unit appended.
pub fn format_percentiles(h: &HistogramSnapshot, unit: &str) -> String {
    format!(
        "p50 {} / p95 {} / p99 {} {unit} (n={})",
        h.p50, h.p95, h.p99, h.count
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autoscaler::AutoscalePolicy;
    use wb_labs::LabScale;
    use wb_worker::{JobAction, JobRequest};

    fn cluster_with_work() -> ClusterV2 {
        let c = ClusterV2::new(
            2,
            minicuda::DeviceConfig::test_small(),
            AutoscalePolicy::Static(2),
        );
        let lab = wb_labs::definition("vecadd", LabScale::Small).unwrap();
        for j in 0..3 {
            c.enqueue(
                JobRequest {
                    job_id: j,
                    user: "a".into(),
                    source: wb_labs::solution("vecadd").unwrap().to_string(),
                    spec: lab.spec.clone(),
                    datasets: lab.datasets.clone(),
                    action: JobAction::RunDataset(0),
                },
                0,
            );
        }
        c
    }

    #[test]
    fn snapshot_reflects_progress() {
        let c = cluster_with_work();
        let before = Snapshot::capture(&c, 0);
        assert_eq!(before.queue_depth, 3);
        assert_eq!(before.completed, 0);
        for r in 0..5 {
            c.pump(r);
        }
        let after = Snapshot::capture(&c, 5);
        assert_eq!(after.completed, 3);
        assert_eq!(after.queue_depth, 0);
        assert_eq!(after.broker.acked, 3);
        assert!(after.active_fraction() > 0.0);
    }

    #[test]
    fn render_shows_down_workers() {
        let c = cluster_with_work();
        c.worker(1).unwrap().crash();
        let text = Snapshot::capture(&c, 1).render();
        assert!(text.contains("DOWN"));
        assert!(text.contains("queue: 3 visible"));
        assert!(text.contains("config v1"));
    }

    #[test]
    fn active_fraction_empty_fleet() {
        let s = Snapshot {
            at_ms: 0,
            queue_depth: 0,
            in_flight: 0,
            broker: BrokerMetrics::default(),
            workers: vec![],
            completed: 0,
            mean_wait_rounds: 0.0,
            config_version: 1,
            cache: None,
            sched: SchedSnapshot::default(),
            obs: MetricsSnapshot::disabled(),
        };
        assert_eq!(s.active_fraction(), 0.0);
        // An empty snapshot must render finite numbers everywhere —
        // no NaN hit-rate, no NaN utilization.
        let text = s.render();
        assert!(!text.contains("NaN"), "got: {text}");
        assert!(text.contains("utilization: 0% of 0 workers"));
    }

    #[test]
    fn pristine_cluster_renders_without_nan() {
        // Snapshot taken before any submission completes: the cache
        // has zero lookups and no worker has done a job, the two
        // historical zero-denominator cells.
        let c = ClusterV2::new(
            2,
            minicuda::DeviceConfig::test_small(),
            AutoscalePolicy::Static(2),
        );
        let text = Snapshot::capture(&c, 0).render();
        assert!(!text.contains("NaN"), "got: {text}");
        assert!(text.contains("cache: 0.0% hit rate"), "got: {text}");
        assert!(text.contains("utilization: 0% of 2 workers"));
    }

    #[test]
    fn traced_cluster_renders_percentiles_and_events() {
        let obs = std::sync::Arc::new(wb_obs::Recorder::traced());
        let c = crate::ClusterBuilder::new(minicuda::DeviceConfig::test_small())
            .fleet(2)
            .traced(obs)
            .build_v2();
        let lab = wb_labs::definition("vecadd", LabScale::Small).unwrap();
        for j in 0..3 {
            c.enqueue(
                JobRequest {
                    job_id: j,
                    user: "a".into(),
                    source: wb_labs::solution("vecadd").unwrap().to_string(),
                    spec: lab.spec.clone(),
                    datasets: lab.datasets.clone(),
                    action: JobAction::RunDataset(0),
                },
                0,
            );
        }
        for r in 0..5 {
            c.pump(r);
        }
        let snap = Snapshot::capture(&c, 5);
        assert!(snap.obs.enabled);
        assert_eq!(snap.obs.counter("jobs_completed"), 3);
        assert_eq!(snap.obs.queue_wait_rounds.count, 3);
        let text = snap.render();
        assert!(text.contains("latency p50/p95/p99"), "got: {text}");
        assert!(text.contains("recent events"), "got: {text}");
        assert!(text.contains("phase=Graded"), "got: {text}");
    }

    #[test]
    fn render_reports_cache_hit_rate() {
        let c = cluster_with_work();
        // Three identical submissions: after draining, two of three
        // compile lookups were served by the cache.
        for r in 0..5 {
            c.pump(r);
        }
        let snap = Snapshot::capture(&c, 5);
        let cache = snap.cache.expect("v2 clusters cache by default");
        assert_eq!(cache.compile.misses, 1);
        assert_eq!(cache.compile.hits + cache.compile.coalesced, 2);
        let text = snap.render();
        assert!(text.contains("hit rate"), "operator view shows the gauge");
        assert!(!text.contains("cache: disabled"));
        // An uncached cluster renders the disabled marker instead.
        let bare = crate::ClusterBuilder::new(minicuda::DeviceConfig::test_small())
            .uncached()
            .build_v2();
        assert!(Snapshot::capture(&bare, 0)
            .render()
            .contains("cache: disabled"));
    }

    #[test]
    fn render_shows_scheduler_backlogs_and_decisions() {
        let obs = std::sync::Arc::new(wb_obs::Recorder::traced());
        let c = crate::ClusterBuilder::new(minicuda::DeviceConfig::test_small())
            .fleet(2)
            .traced(obs)
            .build_v2();
        let lab = wb_labs::definition("vecadd", LabScale::Small).unwrap();
        for j in 0..3 {
            let mut spec = lab.spec.clone();
            spec.course = "ece408".to_string();
            c.enqueue(
                JobRequest {
                    job_id: j,
                    user: "a".into(),
                    source: wb_labs::solution("vecadd").unwrap().to_string(),
                    spec,
                    datasets: lab.datasets.clone(),
                    action: JobAction::RunDataset(0),
                },
                0,
            );
        }
        let before = Snapshot::capture(&c, 0);
        assert_eq!(before.sched.total_backlog, 3);
        let text = before.render();
        assert!(
            text.contains("scheduler: 3 held across 1 course(s)"),
            "got: {text}"
        );
        assert!(text.contains("ece408"), "got: {text}");
        assert!(
            text.contains("scheduler decisions: admitted 3"),
            "got: {text}"
        );
        for r in 0..5 {
            c.pump(r);
        }
        let after = Snapshot::capture(&c, 5);
        assert!(after.sched.courses.is_empty());
        let text = after.render();
        assert!(text.contains("scheduler: no backlog"), "got: {text}");
        assert!(text.contains("dequeued 3"), "got: {text}");
    }
}
