//! `FleetControl` — one typed surface for every fleet mutation.
//!
//! Fleet changes used to be smeared across cluster internals: benches
//! reached through [`crate::ClusterV2::worker`] to `crash()` nodes,
//! the autoscaler pushed and popped the worker vec directly, and zone
//! faults went straight at the broker. [`FleetControl`] collects the
//! whole mutation surface — spawn, kill, revive, partition, heal,
//! describe — behind one trait both architectures implement, so the
//! chaos harness, the autoscaler, and fault benches all drive the
//! fleet through the same door.
//!
//! Workers are described by [`WorkerDesc`]: an availability [`Zone`],
//! an optional capability override, and a [`ReliabilityClass`]
//! (on-demand vs spot). The class does not change how a worker runs
//! jobs — it changes what the worker *costs* (see [`crate::cost`]) and
//! how often chaos campaigns preempt it (spot instances die young).

use serde::{Deserialize, Serialize};
use std::fmt;
use wb_queue::{ActiveZone, CapabilitySet};

/// An availability zone a worker (and one side of the mirrored
/// broker) lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Zone {
    /// The zone the broker starts out serving from.
    Primary,
    /// The hot-standby zone.
    Standby,
}

impl Zone {
    /// Both zones, for iteration.
    pub const ALL: [Zone; 2] = [Zone::Primary, Zone::Standby];

    /// The other zone.
    pub fn other(self) -> Zone {
        match self {
            Zone::Primary => Zone::Standby,
            Zone::Standby => Zone::Primary,
        }
    }

    /// The broker-level zone this fleet zone maps onto.
    pub fn broker_zone(self) -> ActiveZone {
        match self {
            Zone::Primary => ActiveZone::Primary,
            Zone::Standby => ActiveZone::Standby,
        }
    }

    /// The fleet zone for a broker-level zone.
    pub fn from_broker(z: ActiveZone) -> Zone {
        match z {
            ActiveZone::Primary => Zone::Primary,
            ActiveZone::Standby => Zone::Standby,
        }
    }

    /// Default placement for worker `id`: odd ids land in the primary
    /// zone, even ids in the standby, so any fleet of two or more
    /// straddles both zones out of the box.
    pub fn for_index(id: u64) -> Zone {
        if id % 2 == 1 {
            Zone::Primary
        } else {
            Zone::Standby
        }
    }
}

impl fmt::Display for Zone {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Zone::Primary => "primary",
            Zone::Standby => "standby",
        })
    }
}

/// How durable (and how priced) a worker's underlying instance is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReliabilityClass {
    /// Full-price capacity that stays up until the platform takes it
    /// down.
    OnDemand,
    /// Discounted preemptible capacity the provider may reclaim at any
    /// moment (priced by [`crate::cost::CostModel::spot_worker_hour`]).
    Spot,
}

impl fmt::Display for ReliabilityClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ReliabilityClass::OnDemand => "on-demand",
            ReliabilityClass::Spot => "spot",
        })
    }
}

/// Everything [`FleetControl::spawn_worker`] needs to place a worker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerDesc {
    /// Availability zone the worker lands in.
    pub zone: Zone,
    /// Capability tags the worker advertises; `None` inherits the
    /// fleet's remote [`wb_worker::WorkerConfig`]. An override holds
    /// until the next fleet-wide config publish (the remote config
    /// service configures workers *uniformly*, §VI-B).
    pub capabilities: Option<CapabilitySet>,
    /// On-demand or spot.
    pub reliability_class: ReliabilityClass,
}

impl Default for WorkerDesc {
    fn default() -> Self {
        WorkerDesc::on_demand(Zone::Primary)
    }
}

impl WorkerDesc {
    /// An on-demand worker inheriting the fleet config.
    pub fn on_demand(zone: Zone) -> WorkerDesc {
        WorkerDesc {
            zone,
            capabilities: None,
            reliability_class: ReliabilityClass::OnDemand,
        }
    }

    /// A spot worker inheriting the fleet config.
    pub fn spot(zone: Zone) -> WorkerDesc {
        WorkerDesc {
            reliability_class: ReliabilityClass::Spot,
            ..WorkerDesc::on_demand(zone)
        }
    }

    /// Override the advertised capability tags.
    pub fn with_capabilities(mut self, caps: CapabilitySet) -> WorkerDesc {
        self.capabilities = Some(caps);
        self
    }
}

/// One worker's row in [`FleetView`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerInfo {
    /// Platform-wide worker id.
    pub id: u64,
    /// Zone the worker was placed in.
    pub zone: Zone,
    /// On-demand or spot.
    pub reliability_class: ReliabilityClass,
    /// Capability tags the worker advertises.
    pub capabilities: CapabilitySet,
    /// False once killed (or crashed) and not yet revived.
    pub alive: bool,
    /// Jobs this worker completed.
    pub jobs_done: u64,
}

/// A point-in-time description of the fleet.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FleetView {
    /// Every worker the platform knows about, dead or alive.
    pub workers: Vec<WorkerInfo>,
    /// The zone currently cut off by a network partition, if any.
    pub partitioned: Option<Zone>,
}

impl FleetView {
    /// Workers currently able to take jobs.
    pub fn alive(&self) -> usize {
        self.workers.iter().filter(|w| w.alive).count()
    }

    /// Alive workers in `zone`.
    pub fn alive_in_zone(&self, zone: Zone) -> usize {
        self.workers
            .iter()
            .filter(|w| w.alive && w.zone == zone)
            .count()
    }

    /// Alive workers of `class`.
    pub fn alive_of_class(&self, class: ReliabilityClass) -> usize {
        self.workers
            .iter()
            .filter(|w| w.alive && w.reliability_class == class)
            .count()
    }

    /// Total fleet size, dead workers included.
    pub fn total(&self) -> usize {
        self.workers.len()
    }
}

/// The fleet mutation surface both cluster architectures implement.
///
/// Liveness changes take effect at the platform's own cadence: v1
/// pushes, so a killed worker refuses the very next dispatch; v2
/// pulls, so a killed worker vanishes at its next poll — taking any
/// matching delivery dark with it, exactly like a real spot
/// preemption — and the visibility timeout later reclaims the job.
pub trait FleetControl {
    /// Boot a worker into the fleet; returns its id.
    fn spawn_worker(&self, desc: WorkerDesc) -> u64;

    /// Kill worker `id` (spot preemption / hardware loss). The worker
    /// stays in the fleet roster, dark, until revived or scaled in.
    /// False when the id is unknown or the worker is already dead.
    fn kill_worker(&self, id: u64) -> bool;

    /// Bring a killed worker back. False when the id is unknown or
    /// the worker is already alive.
    fn revive_worker(&self, id: u64) -> bool;

    /// Cut `zone` off by a network partition. When the cut zone was
    /// serving broker traffic, the broker fails over first — pending
    /// jobs get `Failover` span annotations, nothing is lost. False
    /// when a zone is already partitioned (or the architecture has no
    /// zones).
    fn partition_zone(&self, zone: Zone) -> bool;

    /// Heal a partition: the cut zone's broker side is rebuilt from
    /// the surviving zone (dead letters held only by the cut zone are
    /// carried back, not duplicated). False unless `zone` is the one
    /// partitioned.
    fn heal_zone(&self, zone: Zone) -> bool;

    /// Snapshot the fleet roster and partition state.
    fn describe_fleet(&self) -> FleetView;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zone_maps_onto_the_broker_and_back() {
        for z in Zone::ALL {
            assert_eq!(Zone::from_broker(z.broker_zone()), z);
            assert_eq!(z.other().other(), z);
            assert_ne!(z.other(), z);
        }
        assert_eq!(Zone::Primary.to_string(), "primary");
        assert_eq!(Zone::Standby.to_string(), "standby");
    }

    #[test]
    fn default_placement_straddles_both_zones() {
        assert_eq!(Zone::for_index(1), Zone::Primary);
        assert_eq!(Zone::for_index(2), Zone::Standby);
        let zones: std::collections::BTreeSet<Zone> = (1..=4).map(Zone::for_index).collect();
        assert_eq!(zones.len(), 2, "any fleet of 2+ covers both zones");
    }

    #[test]
    fn desc_builders_set_class_and_caps() {
        let d = WorkerDesc::spot(Zone::Standby).with_capabilities(["cuda", "mpi"].into());
        assert_eq!(d.reliability_class, ReliabilityClass::Spot);
        assert_eq!(d.zone, Zone::Standby);
        assert!(d.capabilities.unwrap().contains("mpi"));
        let d = WorkerDesc::default();
        assert_eq!(d.reliability_class, ReliabilityClass::OnDemand);
        assert!(d.capabilities.is_none());
    }

    #[test]
    fn view_helpers_count_the_right_workers() {
        let view = FleetView {
            workers: vec![
                WorkerInfo {
                    id: 1,
                    zone: Zone::Primary,
                    reliability_class: ReliabilityClass::OnDemand,
                    capabilities: ["cuda"].into(),
                    alive: true,
                    jobs_done: 3,
                },
                WorkerInfo {
                    id: 2,
                    zone: Zone::Standby,
                    reliability_class: ReliabilityClass::Spot,
                    capabilities: ["cuda"].into(),
                    alive: false,
                    jobs_done: 0,
                },
                WorkerInfo {
                    id: 3,
                    zone: Zone::Primary,
                    reliability_class: ReliabilityClass::Spot,
                    capabilities: ["cuda"].into(),
                    alive: true,
                    jobs_done: 1,
                },
            ],
            partitioned: Some(Zone::Standby),
        };
        assert_eq!(view.total(), 3);
        assert_eq!(view.alive(), 2);
        assert_eq!(view.alive_in_zone(Zone::Primary), 2);
        assert_eq!(view.alive_in_zone(Zone::Standby), 0);
        assert_eq!(view.alive_of_class(ReliabilityClass::Spot), 1);
        assert_eq!(view.partitioned, Some(Zone::Standby));
    }
}
