//! `webgpu` — the paper's system: a scalable online development
//! platform for GPU programming courses.
//!
//! This crate assembles the substrates into the two architectures the
//! paper describes and adds the course-scale simulation used to
//! regenerate its tables and figures:
//!
//! * [`v1`] — the original architecture (Fig. 2): the web server
//!   **pushes** jobs to a pool of workers, evicting nodes whose health
//!   checks stop arriving;
//! * [`v2`] — WebGPU 2.0 (Figs. 6–7): workers **poll** a replicated
//!   message broker, accepting only jobs whose capability tags they
//!   satisfy; a remote config service restarts drivers; datasets live
//!   in a blob store; the fleet autoscales;
//! * [`builder`] — [`ClusterBuilder`], the one construction surface
//!   for both architectures (cache, tracing, scheduler, worker image);
//! * [`platform`] — [`Platform`], the architecture-independent cluster
//!   trait benches and fault harnesses run against;
//! * [`fleet`] — [`FleetControl`], the elastic-fleet control surface
//!   (spawn/kill/revive workers, partition/heal zones) both
//!   architectures implement, with typed zones, reliability classes,
//!   and worker descriptors;
//! * [`chaos`] — seeded churn/partition campaigns against any
//!   [`Platform`] + [`FleetControl`] cluster, auditing exactly-once
//!   completion, span integrity, and broker-book reconciliation;
//! * [`autoscaler`] — static, reactive, deadline-aware, and
//!   spot-aware scaling policies (the paper manually added GPUs the
//!   day before each deadline — the scheduled policy automates
//!   exactly that);
//! * [`cost`] — an AWS-style cost model (on-demand and spot rates)
//!   for provisioning experiments;
//! * [`sim`] — student-population models: enrollment cohorts, weekly
//!   dropout, deadline-rush and diurnal load (regenerates Table I and
//!   Figure 1);
//! * [`course`] — end-to-end course runs wiring real labs, the web
//!   server, and a cluster together.

pub mod autoscaler;
pub mod builder;
pub mod chaos;
pub mod cost;
pub mod course;
pub mod dashboard;
pub mod fleet;
pub mod platform;
pub mod sim;
pub mod v1;
pub mod v2;

pub use autoscaler::{AutoscalePolicy, Autoscaler, FleetMetrics, FleetTarget};
pub use builder::{BrokerTuning, ClusterBuilder};
pub use chaos::{run_campaign, CampaignReport, ChaosConfig};
pub use cost::{CostModel as AwsCostModel, CostReport};
pub use course::{CourseReport, CourseRun};
pub use dashboard::{format_percentiles, Snapshot as DashboardSnapshot};
pub use fleet::{FleetControl, FleetView, ReliabilityClass, WorkerDesc, WorkerInfo, Zone};
pub use platform::Platform;
pub use sim::population::{CohortParams, CohortSummary, LoadModel};
pub use sim::rush::{CourseLoad, RushScenario};
pub use v1::ClusterV1;
pub use v2::ClusterV2;
pub use wb_sched::{shard_for_course, CourseConfig, SchedConfig, SchedSnapshot};
pub use wb_worker::default_shards;
