//! A common façade over the two cluster architectures.
//!
//! Benches and fault/stress harnesses used to be written twice — once
//! against the v1 push API, once against the v2 pull API. [`Platform`]
//! is the shared surface both implement: admission-controlled
//! submission, a pump that advances one scheduling round, result
//! retrieval, and the metrics/scheduler snapshots the dashboards and
//! gates read. Harness code takes `&impl Platform` (or
//! `&dyn Platform`) and runs unchanged on either architecture.

use crate::{ClusterV1, ClusterV2};
use wb_cache::CacheMetrics;
use wb_obs::MetricsSnapshot;
use wb_sched::SchedSnapshot;
use wb_server::WbError;
use wb_worker::{JobOutcome, JobRequest};

/// The architecture-independent cluster surface.
pub trait Platform {
    /// Offer a job through admission control; `Ok(job_id)` when the
    /// fair-share scheduler accepted it, [`WbError::Overloaded`] with a
    /// finite retry hint when it shed.
    fn submit_job(&self, req: JobRequest, now_ms: u64) -> Result<u64, WbError>;

    /// Advance one scheduling round; returns jobs completed this round.
    fn pump(&self, now_ms: u64) -> usize;

    /// Take a completed job's outcome off the cluster.
    fn take_result(&self, job_id: u64) -> Option<JobOutcome>;

    /// Live workers.
    fn fleet_size(&self) -> usize;

    /// Jobs admitted and not yet executed.
    fn queue_depth(&self, now_ms: u64) -> usize;

    /// Jobs completed over the cluster's lifetime.
    fn completed(&self) -> u64;

    /// Aggregate counters/timers from the cluster's recorder.
    fn metrics_snapshot(&self) -> MetricsSnapshot;

    /// Per-course scheduler backlogs.
    fn sched_snapshot(&self) -> SchedSnapshot;

    /// Per-tier submission-cache gauges; `None` when the cluster was
    /// built `uncached()`.
    fn cache_metrics(&self) -> Option<CacheMetrics>;

    /// Pump rounds `start_round..` until the queue drains or
    /// `max_rounds` is spent; returns rounds actually pumped. Replay
    /// and rush harnesses used to hand-roll this loop per cluster —
    /// the budget guards against a wedged fleet turning a bench into
    /// a hang.
    fn drain_until_idle(&self, start_round: u64, max_rounds: u64) -> u64 {
        let mut round = start_round;
        while round - start_round < max_rounds && self.queue_depth(round) > 0 {
            self.pump(round);
            round += 1;
        }
        round - start_round
    }
}

impl Platform for ClusterV1 {
    fn submit_job(&self, req: JobRequest, now_ms: u64) -> Result<u64, WbError> {
        self.enqueue(req, now_ms)
    }

    fn pump(&self, now_ms: u64) -> usize {
        ClusterV1::pump(self, now_ms)
    }

    fn take_result(&self, job_id: u64) -> Option<JobOutcome> {
        ClusterV1::take_result(self, job_id)
    }

    fn fleet_size(&self) -> usize {
        self.pool_size()
    }

    fn queue_depth(&self, _now_ms: u64) -> usize {
        ClusterV1::queue_depth(self)
    }

    fn completed(&self) -> u64 {
        ClusterV1::completed(self)
    }

    fn metrics_snapshot(&self) -> MetricsSnapshot {
        ClusterV1::metrics_snapshot(self)
    }

    fn sched_snapshot(&self) -> SchedSnapshot {
        ClusterV1::sched_snapshot(self)
    }

    fn cache_metrics(&self) -> Option<CacheMetrics> {
        ClusterV1::cache_metrics_opt(self)
    }
}

impl Platform for ClusterV2 {
    fn submit_job(&self, req: JobRequest, now_ms: u64) -> Result<u64, WbError> {
        self.submit(req, now_ms)
    }

    fn pump(&self, now_ms: u64) -> usize {
        ClusterV2::pump(self, now_ms)
    }

    fn take_result(&self, job_id: u64) -> Option<JobOutcome> {
        ClusterV2::take_result(self, job_id)
    }

    fn fleet_size(&self) -> usize {
        ClusterV2::fleet_size(self)
    }

    fn queue_depth(&self, now_ms: u64) -> usize {
        ClusterV2::queue_depth(self, now_ms)
    }

    fn completed(&self) -> u64 {
        ClusterV2::completed(self)
    }

    fn metrics_snapshot(&self) -> MetricsSnapshot {
        ClusterV2::metrics_snapshot(self)
    }

    fn sched_snapshot(&self) -> SchedSnapshot {
        ClusterV2::sched_snapshot(self)
    }

    fn cache_metrics(&self) -> Option<CacheMetrics> {
        ClusterV2::cache_metrics(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClusterBuilder;
    use libwb::Dataset;
    use minicuda::DeviceConfig;
    use wb_worker::{DatasetCase, JobAction, LabSpec};

    fn echo(job_id: u64, course: &str) -> JobRequest {
        let mut spec = LabSpec::cuda_test("echo");
        spec.course = course.to_string();
        JobRequest {
            job_id,
            user: "alice".into(),
            source: r#"
                int main() {
                    int n;
                    float* a = wbImportVector(0, &n);
                    wbSolution(a, n);
                    return 0;
                }
            "#
            .to_string(),
            spec,
            datasets: vec![DatasetCase {
                name: "d0".into(),
                inputs: vec![Dataset::Vector(vec![1.0])],
                expected: Dataset::Vector(vec![1.0]),
            }],
            action: JobAction::FullGrade,
        }
    }

    /// The generic harness shape: submit, pump to drain, take results.
    fn run_jobs(p: &dyn Platform, jobs: u64) {
        for j in 0..jobs {
            p.submit_job(echo(j, if j % 2 == 0 { "hpp" } else { "ece408" }), 0)
                .expect("default budget admits everything");
        }
        assert_eq!(p.queue_depth(0), jobs as usize);
        let mut round = 1;
        while p.completed() < jobs {
            p.pump(round);
            round += 1;
            assert!(round < 200, "platform failed to drain {jobs} jobs");
        }
        for j in 0..jobs {
            let out = p.take_result(j).expect("every job has an outcome");
            assert!(out.compiled());
        }
        assert_eq!(p.queue_depth(round), 0);
    }

    #[test]
    fn both_architectures_run_the_same_harness() {
        let v1 = ClusterBuilder::new(DeviceConfig::test_small())
            .fleet(2)
            .build_v1();
        run_jobs(&v1, 8);
        assert!(v1.fleet_size() == 2);

        let v2 = ClusterBuilder::new(DeviceConfig::test_small())
            .fleet(2)
            .build_v2();
        run_jobs(&v2, 8);
    }

    /// The replay hooks: a bounded drain empties the queue on both
    /// architectures, and cache gauges surface through the façade.
    #[test]
    fn drain_until_idle_and_cache_metrics_on_both_architectures() {
        let v1 = ClusterBuilder::new(DeviceConfig::test_small())
            .fleet(2)
            .build_v1();
        let v2 = ClusterBuilder::new(DeviceConfig::test_small())
            .fleet(2)
            .build_v2();
        for p in [&v1 as &dyn Platform, &v2] {
            for j in 0..6 {
                p.submit_job(echo(j, "hpp"), 0).expect("admitted");
            }
            let rounds = p.drain_until_idle(1, 100);
            assert!(rounds > 0 && rounds < 100);
            assert_eq!(p.queue_depth(1 + rounds), 0);
            assert_eq!(p.completed(), 6);
            let cache = p.cache_metrics().expect("default builds are cached");
            assert!(cache.total().lookups() > 0);
        }
        // An uncached build reports None rather than zeroed gauges.
        let bare = ClusterBuilder::new(DeviceConfig::test_small())
            .fleet(1)
            .uncached()
            .build_v2();
        assert!(Platform::cache_metrics(&bare).is_none());
    }
}
