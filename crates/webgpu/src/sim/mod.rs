//! Course-scale simulation: student populations and load shapes.

pub mod population;
pub mod rush;
