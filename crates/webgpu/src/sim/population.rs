//! Student population models.
//!
//! Two linked models:
//!
//! * [`CohortParams`] / [`simulate_cohort`] — the **completion
//!   funnel**: registrants → starters → weekly survival → completions
//!   → proctored certificates. Calibrations for the three Coursera
//!   offerings regenerate Table I's completion rates (7.40%, 3.14%,
//!   3.15%) and certificate counts.
//! * [`LoadModel`] — **active students per hour** over the course: an
//!   enrollment ramp and exponential decay, a weekly rush peaking the
//!   day before the Thursday deadline (the paper's Wednesday spikes),
//!   a diurnal cycle, and Poisson noise. Regenerates Figure 1's shape:
//!   peak ≈112 in week 2, troughs ≈8 late in the course.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use wb_server::DeviceKind;

/// Hours per week.
pub const WEEK_HOURS: usize = 7 * 24;

/// Parameters of one year's cohort.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CohortParams {
    /// Offering year (labeling only).
    pub year: u32,
    /// Registered users.
    pub registered: u32,
    /// Fraction of registrants who attempt the first lab.
    pub start_fraction: f64,
    /// Weekly probability an active student continues.
    pub weekly_continue: f64,
    /// Graded weeks (labs) a student must survive to complete.
    pub weeks: u32,
    /// Fraction of completers who sit the proctored quiz
    /// (certificates were only offered from 2014 on).
    pub certificate_fraction: f64,
}

impl CohortParams {
    /// Calibrated to Table I, 2013: 36,896 registered, 2,729
    /// completions (7.40%), no certificate track.
    pub fn year_2013() -> Self {
        CohortParams {
            year: 2013,
            registered: 36_896,
            start_fraction: 0.46,
            weekly_continue: 0.795,
            weeks: 9,
            certificate_fraction: 0.0,
        }
    }

    /// Calibrated to Table I, 2014: 33,818 registered, 1,061
    /// completions (3.14%), 286 certificates.
    pub fn year_2014() -> Self {
        CohortParams {
            year: 2014,
            registered: 33_818,
            start_fraction: 0.40,
            weekly_continue: 0.726,
            weeks: 9,
            certificate_fraction: 0.27,
        }
    }

    /// Calibrated to Table I, 2015: 35,940 registered, 1,141
    /// completions (3.15%), 442 certificates.
    pub fn year_2015() -> Self {
        CohortParams {
            year: 2015,
            registered: 35_940,
            start_fraction: 0.40,
            weekly_continue: 0.727,
            weeks: 9,
            certificate_fraction: 0.39,
        }
    }

    /// Expected completion rate under the survival model.
    pub fn expected_completion_rate(&self) -> f64 {
        self.start_fraction * self.weekly_continue.powi(self.weeks as i32 - 1)
    }
}

/// Outcome of simulating one cohort.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CohortSummary {
    /// Offering year.
    pub year: u32,
    /// Registered users (echoed).
    pub registered: u32,
    /// Students who attempted the first lab.
    pub started: u32,
    /// Students active in each week (length `weeks`).
    pub weekly_active: Vec<u32>,
    /// Students who survived every week.
    pub completions: u32,
    /// Proctored certificates issued.
    pub certificates: u32,
}

impl CohortSummary {
    /// Completions / registered.
    pub fn completion_rate(&self) -> f64 {
        self.completions as f64 / self.registered as f64
    }
}

/// Run the per-student survival simulation.
pub fn simulate_cohort(params: &CohortParams, seed: u64) -> CohortSummary {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut weekly_active = vec![0u32; params.weeks as usize];
    let mut started = 0u32;
    let mut completions = 0u32;
    let mut certificates = 0u32;
    for _ in 0..params.registered {
        if !rng.gen_bool(params.start_fraction) {
            continue;
        }
        started += 1;
        let mut alive = true;
        for (w, slot) in weekly_active.iter_mut().enumerate() {
            if w > 0 && !rng.gen_bool(params.weekly_continue) {
                alive = false;
                break;
            }
            *slot += 1;
        }
        if alive {
            completions += 1;
            if params.certificate_fraction > 0.0 && rng.gen_bool(params.certificate_fraction) {
                certificates += 1;
            }
        }
    }
    CohortSummary {
        year: params.year,
        registered: params.registered,
        started,
        weekly_active,
        completions,
        certificates,
    }
}

/// Hourly active-student load over a course (Figure 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadModel {
    /// Course length in days (Feb 8 – Apr 15 2015 is 67).
    pub days: usize,
    /// Day-of-week of day 0 (0 = Sunday; Feb 8 2015 was a Sunday).
    pub start_dow: usize,
    /// Peak scale: expected active students at the week-2 Wednesday
    /// evening spike.
    pub peak_active: f64,
    /// Weekly exponential decay of participation after week 2.
    pub weekly_decay: f64,
    /// Late-course floor of the weekly base (the course never quite
    /// empties — the paper reports ~200 users/day at the end).
    pub base_floor: f64,
}

impl Default for LoadModel {
    /// Calibrated to Figure 1's annotations: 112 active students at
    /// the Feb 18 (Wednesday, week 2) peak, 8 on April 9.
    fn default() -> Self {
        LoadModel {
            days: 67,
            start_dow: 0,
            peak_active: 112.0,
            weekly_decay: 0.40,
            base_floor: 6.0,
        }
    }
}

impl LoadModel {
    /// Expected (noise-free) active students at an hour offset.
    pub fn expected_active(&self, hour: usize) -> f64 {
        let day = hour / 24;
        let week = day / 7;
        let dow = (self.start_dow + day) % 7;
        let hod = hour % 24;
        // Enrollment ramp: week 0 builds up, week 1 peaks; exponential
        // decay afterwards toward the floor.
        let base = match week {
            0 => 0.55 + 0.35 * (day as f64 / 7.0),
            1 => 1.0,
            w => (1.0f64 * (-self.weekly_decay * (w as f64 - 1.0)).exp()).max(0.0),
        };
        // Weekly rush toward the Thursday deadline: Friday after a
        // deadline is the trough; Wednesday is the spike; Thursday
        // (deadline day until the evening cutoff) stays high.
        let weekly = match dow {
            3 => 1.0,  // Wednesday: the spike the paper highlights
            4 => 0.8,  // Thursday (deadline day)
            2 => 0.55, // Tuesday ramp
            1 => 0.35,
            0 => 0.3,
            5 => 0.18, // Friday post-deadline trough
            _ => 0.22, // Saturday
        };
        // Diurnal: quiet 2am–8am, busiest evenings (course audience is
        // global but US-evening dominated).
        let diurnal =
            0.35 + 0.65 * (0.5 - 0.5 * (std::f64::consts::TAU * (hod as f64 - 3.0) / 24.0).cos());
        (self.peak_active * base * weekly * diurnal).max(0.0) + self.base_floor * diurnal * 0.3
    }

    /// The full hourly series with Poisson noise.
    pub fn hourly_series(&self, seed: u64) -> Vec<u32> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..self.days * 24)
            .map(|h| poisson(&mut rng, self.expected_active(h)))
            .collect()
    }

    /// Day-of-week (0 = Sunday) of an hour offset.
    pub fn dow(&self, hour: usize) -> usize {
        (self.start_dow + hour / 24) % 7
    }
}

/// Summary statistics of an hourly series, matching the figure's
/// annotations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadStats {
    /// Maximum hourly count and its hour offset.
    pub peak: (u32, usize),
    /// Minimum *daily peak* and its day (quiet-day measure — an empty
    /// 4am hour is not what the figure annotates).
    pub min_daily_peak: (u32, usize),
    /// For each day, the maximum hourly count.
    pub daily_peaks: Vec<u32>,
    /// Count of weekly spikes landing on each day-of-week.
    pub spike_dow_histogram: [u32; 7],
}

/// Compute summary statistics for a series from a model.
pub fn load_stats(model: &LoadModel, series: &[u32]) -> LoadStats {
    let days = series.len() / 24;
    let mut daily_peaks = Vec::with_capacity(days);
    for d in 0..days {
        daily_peaks.push(*series[d * 24..(d + 1) * 24].iter().max().unwrap_or(&0));
    }
    let (peak_hour, peak) = series
        .iter()
        .enumerate()
        .max_by_key(|(_, &v)| v)
        .map(|(h, &v)| (h, v))
        .unwrap_or((0, 0));
    let (min_day, min_peak) = daily_peaks
        .iter()
        .enumerate()
        .min_by_key(|(_, &v)| v)
        .map(|(d, &v)| (d, v))
        .unwrap_or((0, 0));
    // Weekly spikes: the day with the highest daily peak within each
    // full week.
    let mut hist = [0u32; 7];
    for w in 0..days / 7 {
        let window = &daily_peaks[w * 7..(w + 1) * 7];
        let (best_day, _) = window
            .iter()
            .enumerate()
            .max_by_key(|(_, &v)| v)
            .expect("non-empty week");
        let dow = (model.start_dow + w * 7 + best_day) % 7;
        hist[dow] += 1;
    }
    LoadStats {
        peak: (peak, peak_hour),
        min_daily_peak: (min_peak, min_day),
        daily_peaks,
        spike_dow_histogram: hist,
    }
}

/// Sample how a login reaches the site — §II-B: "around 2% of student
/// logins to WebGPU are from tablets and smartphones".
pub fn sample_device(rng: &mut StdRng) -> DeviceKind {
    let x: f64 = rng.gen();
    if x < 0.013 {
        DeviceKind::Tablet
    } else if x < 0.02 {
        DeviceKind::Phone
    } else {
        DeviceKind::Desktop
    }
}

/// Poisson sampler (Knuth for small λ, normal approximation above).
fn poisson(rng: &mut StdRng, lambda: f64) -> u32 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda > 30.0 {
        let sample = lambda + lambda.sqrt() * normal(rng);
        return sample.round().max(0.0) as u32;
    }
    let l = (-lambda).exp();
    let mut k = 0u32;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// Standard normal via Box–Muller.
fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cohort_2013_matches_table1() {
        let s = simulate_cohort(&CohortParams::year_2013(), 1);
        let rate = s.completion_rate();
        assert!(
            (rate - 0.074).abs() < 0.012,
            "2013 completion rate {rate} should be near 7.4%"
        );
        assert_eq!(s.certificates, 0, "no certificate track in 2013");
    }

    #[test]
    fn cohort_2014_matches_table1() {
        let s = simulate_cohort(&CohortParams::year_2014(), 2);
        assert!(
            (s.completion_rate() - 0.0314).abs() < 0.008,
            "2014 rate {}",
            s.completion_rate()
        );
        // 286 certificates ± sampling noise.
        assert!(
            (s.certificates as f64 - 286.0).abs() < 90.0,
            "certificates {}",
            s.certificates
        );
    }

    #[test]
    fn cohort_2015_matches_table1() {
        let s = simulate_cohort(&CohortParams::year_2015(), 3);
        assert!(
            (s.completion_rate() - 0.0315).abs() < 0.008,
            "2015 rate {}",
            s.completion_rate()
        );
        assert!(
            (s.certificates as f64 - 442.0).abs() < 120.0,
            "certificates {}",
            s.certificates
        );
    }

    #[test]
    fn weekly_active_is_monotone_decreasing() {
        let s = simulate_cohort(&CohortParams::year_2015(), 4);
        assert!(s.weekly_active.windows(2).all(|w| w[0] >= w[1]));
        assert_eq!(s.weekly_active[0], s.started);
        assert_eq!(*s.weekly_active.last().unwrap(), s.completions);
    }

    #[test]
    fn expected_rate_formula_matches_calibration() {
        for p in [
            CohortParams::year_2013(),
            CohortParams::year_2014(),
            CohortParams::year_2015(),
        ] {
            let target = match p.year {
                2013 => 0.074,
                2014 => 0.0314,
                _ => 0.0315,
            };
            assert!(
                (p.expected_completion_rate() - target).abs() < 0.005,
                "{}: {}",
                p.year,
                p.expected_completion_rate()
            );
        }
    }

    #[test]
    fn load_peak_is_week2_wednesday() {
        let m = LoadModel::default();
        let series = m.hourly_series(42);
        let stats = load_stats(&m, &series);
        let (peak, hour) = stats.peak;
        assert!((90..=135).contains(&peak), "peak {peak} should be near 112");
        assert_eq!(m.dow(hour), 3, "peak lands on a Wednesday");
        let day = hour / 24;
        assert!((7..14).contains(&day), "peak in week 2 (day {day})");
    }

    #[test]
    fn load_trough_is_late_and_small() {
        let m = LoadModel::default();
        let series = m.hourly_series(42);
        let stats = load_stats(&m, &series);
        let (min_peak, day) = stats.min_daily_peak;
        assert!(min_peak <= 20, "late-course days quiet, got {min_peak}");
        assert!(day > 40, "quietest day comes late (day {day})");
    }

    #[test]
    fn weekly_spikes_land_on_wednesdays() {
        let m = LoadModel::default();
        let series = m.hourly_series(7);
        let stats = load_stats(&m, &series);
        let wednesdays = stats.spike_dow_histogram[3];
        let total: u32 = stats.spike_dow_histogram.iter().sum();
        assert!(
            wednesdays * 2 > total,
            "most weekly spikes on Wednesday: {:?}",
            stats.spike_dow_histogram
        );
    }

    #[test]
    fn device_mix_is_about_two_percent_mobile() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 100_000;
        let mobile = (0..n)
            .filter(|_| !matches!(sample_device(&mut rng), DeviceKind::Desktop))
            .count();
        let frac = mobile as f64 / n as f64;
        assert!((frac - 0.02).abs() < 0.004, "mobile fraction {frac}");
    }

    #[test]
    fn poisson_mean_is_lambda() {
        let mut rng = StdRng::seed_from_u64(6);
        for lambda in [0.5, 4.0, 80.0] {
            let n = 20_000;
            let sum: u64 = (0..n).map(|_| poisson(&mut rng, lambda) as u64).sum();
            let mean = sum as f64 / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.sqrt() * 0.15 + 0.05,
                "λ={lambda}: mean {mean}"
            );
        }
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn series_is_deterministic_per_seed() {
        let m = LoadModel::default();
        assert_eq!(m.hourly_series(9), m.hourly_series(9));
        assert_ne!(m.hourly_series(9), m.hourly_series(10));
    }
}
