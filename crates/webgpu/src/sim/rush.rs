//! Deadline-rush workload generator: several courses share one fleet
//! while a single course's submission rate surges an order of
//! magnitude — the Wednesday-evening shape of Figure 1, reduced to a
//! deterministic per-round arrival stream that benches and tests can
//! replay exactly.

use wb_labs::LabScale;
use wb_worker::{DatasetCase, JobAction, JobRequest, LabSpec};

/// One course's steady contribution to the rush.
pub struct CourseLoad {
    /// Course id (the scheduler's arbitration key).
    pub course: String,
    /// Catalog lab its students are submitting.
    pub lab_id: String,
    /// Submissions arriving every round.
    pub jobs_per_round: usize,
    spec: LabSpec,
    datasets: Vec<DatasetCase>,
    solution: String,
}

impl CourseLoad {
    /// Build a course load from the lab catalog, stamping `course`
    /// onto the spec.
    pub fn new(course: &str, lab_id: &str, jobs_per_round: usize) -> Self {
        let lab = wb_labs::definition(lab_id, LabScale::Small).expect("catalog lab");
        let mut spec = lab.spec.clone();
        spec.course = course.to_string();
        CourseLoad {
            course: course.to_string(),
            lab_id: lab_id.to_string(),
            jobs_per_round,
            spec,
            datasets: lab.datasets,
            solution: wb_labs::solution(lab_id)
                .expect("catalog solution")
                .to_string(),
        }
    }
}

/// A deterministic multi-course rush: each round, every course emits
/// its `jobs_per_round` submissions. Job ids are a function of (round,
/// offset) alone, so two replays of the same scenario are identical.
pub struct RushScenario {
    /// Arrival rounds.
    pub rounds: usize,
    /// The participating courses.
    pub courses: Vec<CourseLoad>,
}

impl RushScenario {
    /// The Wednesday shape: three catalog courses on one fleet, with
    /// `ece408` (the surging course) submitting `surge`× the others'
    /// rate — the paper's 10× pre-deadline spike at `surge = 10`.
    pub fn wednesday(rounds: usize, surge: usize) -> Self {
        RushScenario {
            rounds,
            courses: vec![
                CourseLoad::new("hpp", "vecadd", 1),
                CourseLoad::new("ece408", "matmul", surge),
                CourseLoad::new("ece598", "stencil", 1),
            ],
        }
    }

    /// Submissions arriving per round across all courses.
    pub fn per_round(&self) -> usize {
        self.courses.iter().map(|c| c.jobs_per_round).sum()
    }

    /// Total submissions the scenario emits.
    pub fn total_jobs(&self) -> usize {
        self.rounds * self.per_round()
    }

    /// The arrivals for one round. Every request carries a unique,
    /// replay-stable job id and a per-job source perturbation (a
    /// trailing attempt comment), so the submission cache cannot
    /// collapse the rush into one compile.
    pub fn arrivals(&self, round: usize) -> Vec<JobRequest> {
        let mut out = Vec::with_capacity(self.per_round());
        let base = (round * self.per_round()) as u64 + 1;
        for cl in &self.courses {
            for _ in 0..cl.jobs_per_round {
                let job_id = base + out.len() as u64;
                out.push(JobRequest {
                    job_id,
                    user: format!("{}-student{}", cl.course, job_id % 97),
                    source: format!("{}\n// attempt {job_id}\n", cl.solution),
                    spec: cl.spec.clone(),
                    datasets: cl.datasets.clone(),
                    action: JobAction::FullGrade,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wednesday_surges_one_course_tenfold() {
        let s = RushScenario::wednesday(4, 10);
        assert_eq!(s.per_round(), 12);
        assert_eq!(s.total_jobs(), 48);
        let surging = s.courses.iter().find(|c| c.course == "ece408").unwrap();
        let quiet = s.courses.iter().find(|c| c.course == "hpp").unwrap();
        assert_eq!(surging.jobs_per_round, 10 * quiet.jobs_per_round);
    }

    #[test]
    fn arrivals_are_replay_stable_and_cache_distinct() {
        let s = RushScenario::wednesday(3, 4);
        let a = s.arrivals(1);
        let b = s.arrivals(1);
        assert_eq!(a.len(), 6);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.job_id, y.job_id, "replays are identical");
            assert_eq!(x.source, y.source);
        }
        // Unique ids across rounds, unique sources within a course.
        let next = s.arrivals(2);
        assert!(a.iter().all(|x| next.iter().all(|y| y.job_id != x.job_id)));
        let sources: std::collections::BTreeSet<&str> =
            a.iter().map(|r| r.source.as_str()).collect();
        assert_eq!(sources.len(), a.len(), "every submission compiles fresh");
        // The course key rides on every spec.
        assert!(a.iter().any(|r| r.spec.course == "ece408"));
        assert!(a.iter().any(|r| r.spec.course == "hpp"));
        assert!(a.iter().any(|r| r.spec.course == "ece598"));
    }
}
