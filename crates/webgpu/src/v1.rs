//! The original WebGPU architecture (Fig. 2): web server ¬, database
//! servers ­, and workers ® — the web server pushes each job to a
//! chosen worker and evicts workers whose health checks go quiet.

use crate::fleet::{FleetControl, FleetView, ReliabilityClass, WorkerDesc, WorkerInfo, Zone};
use minicuda::DeviceConfig;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use wb_cache::{CacheConfig, CacheMetrics};
use wb_obs::{Annotation, Counter, JobPhase, Recorder};
use wb_sched::{Admission, GradeClass, SchedConfig, SchedSnapshot, ShardedScheduler};
use wb_server::{JobDispatcher, WbError};
use wb_worker::{
    new_submission_cache, JobAction, JobOutcome, JobRequest, NodeConfig, SubmissionCache,
    WorkerConfig, WorkerNode,
};

/// Marker for scheduler entries submitted through the generic
/// [`crate::Platform`] path (their results land in the results map,
/// not a batch slot).
const PLATFORM_SLOT: usize = usize::MAX;

/// One executed wave entry: the batch slot it fills and its result.
type WaveResult = (usize, Result<JobOutcome, WbError>);

fn grade_class(req: &JobRequest) -> GradeClass {
    if req.action == JobAction::FullGrade {
        GradeClass::Full
    } else {
        GradeClass::Light
    }
}

/// Eviction threshold: a worker missing health checks for this many
/// virtual ms is dropped from the pool (§III-C).
pub const HEALTH_TIMEOUT_MS: u64 = 30_000;

struct PoolState {
    workers: Vec<Arc<WorkerNode>>,
    /// Reliability class per worker id (v1 predates multi-AZ: every
    /// node lives in the primary zone, but spot vs on-demand still
    /// matters to the cost meter and the chaos harness).
    class: HashMap<u64, ReliabilityClass>,
    last_beat: HashMap<u64, u64>,
    evicted: Vec<u64>,
    next_worker_id: u64,
    rr_cursor: usize,
    dispatch_failures: u64,
    /// Completed outcomes for jobs that entered through the pumped
    /// [`crate::Platform`] path.
    results: HashMap<u64, JobOutcome>,
    completed: u64,
}

/// The v1 push cluster.
pub struct ClusterV1 {
    device: DeviceConfig,
    config: WorkerConfig,
    /// One submission cache shared by every worker — including those
    /// added later — so duplicate submissions dedupe cluster-wide.
    cache: Arc<SubmissionCache>,
    /// Whether workers actually consult the shared cache (an uncached
    /// build keeps the cache object for metrics, but boots workers
    /// without it).
    cached: bool,
    /// Fair-share scheduler, one lane per control-plane shard:
    /// admission control for every submission path, and dequeue order
    /// for batched/pumped work. Waves rotate their anchor shard and
    /// steal from loaded siblings, so a single hot course never
    /// serializes the whole pool behind one lane's lock.
    sched: ShardedScheduler<(usize, JobRequest)>,
    /// Control-plane lane count.
    shards: usize,
    /// Cluster-wide recorder shared with every worker (noop unless the
    /// cluster was built traced).
    obs: Arc<Recorder>,
    state: Mutex<PoolState>,
}

impl ClusterV1 {
    /// Boot a cluster with `n` workers.
    ///
    /// v1 had no job routing, so — per §VI-A — every node must be
    /// "provisioned for the highest common multiple of the system
    /// requirements of the labs": the full image with every toolchain.
    /// For anything beyond the defaults, use
    /// [`ClusterBuilder`](crate::ClusterBuilder).
    pub fn new(n: usize, device: DeviceConfig) -> Self {
        Self::new_inner(
            n,
            device,
            Self::full_image_config(),
            Some(CacheConfig::default()),
            Arc::new(Recorder::noop()),
            SchedConfig::default(),
            wb_worker::default_shards(),
        )
    }

    /// Boot with an explicit worker configuration (e.g. a CUDA-only
    /// image, to demonstrate why v1 could not afford thin nodes).
    pub fn with_config(n: usize, device: DeviceConfig, config: WorkerConfig) -> Self {
        Self::new_inner(
            n,
            device,
            config,
            Some(CacheConfig::default()),
            Arc::new(Recorder::noop()),
            SchedConfig::default(),
            wb_worker::default_shards(),
        )
    }

    /// The image v1 nodes must carry: every toolchain (§VI-A).
    pub(crate) fn full_image_config() -> WorkerConfig {
        WorkerConfig {
            image: "webgpu/full".to_string(),
            capabilities: ["cuda", "opencl", "openacc", "mpi", "multi-gpu"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            ..WorkerConfig::default()
        }
    }

    /// The one real constructor — everything else (including
    /// [`ClusterBuilder`](crate::ClusterBuilder)) funnels here.
    /// `cache_cfg: None` boots workers without the shared cache (the
    /// uncached baseline); the cluster still keeps a cache object so
    /// [`cache_metrics`](Self::cache_metrics) stays callable (all
    /// zeros).
    pub(crate) fn new_inner(
        n: usize,
        device: DeviceConfig,
        config: WorkerConfig,
        cache_cfg: Option<CacheConfig>,
        obs: Arc<Recorder>,
        sched: SchedConfig,
        shards: usize,
    ) -> Self {
        let shards = shards.max(1);
        let cached = cache_cfg.is_some();
        let cache = new_submission_cache(cache_cfg.unwrap_or_default());
        let worker_cache = cached.then(|| Arc::clone(&cache));
        let workers = (1..=n as u64)
            .map(|id| {
                Arc::new(WorkerNode::launch(
                    id,
                    &NodeConfig {
                        device: device.clone(),
                        worker: config.clone(),
                        cache: worker_cache.clone(),
                        shards,
                        obs: Arc::clone(&obs),
                    },
                ))
            })
            .collect::<Vec<_>>();
        let last_beat = workers.iter().map(|w| (w.id(), 0)).collect();
        let class = workers
            .iter()
            .map(|w| (w.id(), ReliabilityClass::OnDemand))
            .collect();
        ClusterV1 {
            device,
            config,
            cache,
            cached,
            sched: ShardedScheduler::new(shards, sched, Arc::clone(&obs)),
            shards,
            obs,
            state: Mutex::new(PoolState {
                workers,
                class,
                last_beat,
                evicted: Vec::new(),
                next_worker_id: n as u64 + 1,
                rr_cursor: 0,
                dispatch_failures: 0,
                results: HashMap::new(),
                completed: 0,
            }),
        }
    }

    /// Number of workers currently in the pool.
    pub fn pool_size(&self) -> usize {
        self.state.lock().workers.len()
    }

    /// Control-plane lane count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Worker ids evicted so far.
    pub fn evicted(&self) -> Vec<u64> {
        self.state.lock().evicted.clone()
    }

    /// Failed dispatch attempts (crashed worker chosen before eviction).
    pub fn dispatch_failures(&self) -> u64 {
        self.state.lock().dispatch_failures
    }

    /// Handle on a worker (fault injection in tests).
    pub fn worker(&self, idx: usize) -> Option<Arc<WorkerNode>> {
        self.state.lock().workers.get(idx).cloned()
    }

    /// Add a worker to the pool (manual pre-deadline scaling, §III).
    /// New workers join the cluster-wide submission cache.
    pub fn add_worker(&self, now_ms: u64) -> u64 {
        let mut g = self.state.lock();
        let id = g.next_worker_id;
        g.next_worker_id += 1;
        let w = Arc::new(WorkerNode::launch(
            id,
            &NodeConfig {
                device: self.device.clone(),
                worker: self.config.clone(),
                cache: self.cached.then(|| Arc::clone(&self.cache)),
                shards: self.shards,
                obs: Arc::clone(&self.obs),
            },
        ));
        g.last_beat.insert(id, now_ms);
        g.class.insert(id, ReliabilityClass::OnDemand);
        g.workers.push(w);
        id
    }

    /// Snapshot the cluster-wide submission-cache counters.
    pub fn cache_metrics(&self) -> CacheMetrics {
        self.cache.metrics()
    }

    /// [`cache_metrics`](Self::cache_metrics) with v2's `Option`
    /// semantics: `None` for an uncached build instead of zeroed
    /// gauges, so [`Platform`](crate::Platform) reads identically on
    /// both architectures.
    pub fn cache_metrics_opt(&self) -> Option<CacheMetrics> {
        self.cached.then(|| self.cache.metrics())
    }

    /// Remove the most recently added worker (scale-in).
    pub fn remove_worker(&self) -> Option<u64> {
        let mut g = self.state.lock();
        let w = g.workers.pop()?;
        g.last_beat.remove(&w.id());
        g.class.remove(&w.id());
        Some(w.id())
    }

    /// Collect health checks and evict silent workers. Returns the ids
    /// evicted this round.
    pub fn health_sweep(&self, now_ms: u64) -> Vec<u64> {
        let mut g = self.state.lock();
        // Record fresh beats.
        let beats: Vec<(u64, u64)> = g
            .workers
            .iter()
            .filter_map(|w| w.health(now_ms).map(|b| (b.worker_id, b.at_ms)))
            .collect();
        for (id, at) in beats {
            g.last_beat.insert(id, at);
        }
        // Evict the silent.
        let mut evicted_now = Vec::new();
        let last_beat = g.last_beat.clone();
        g.workers.retain(|w| {
            let last = last_beat.get(&w.id()).copied().unwrap_or(0);
            let alive = now_ms.saturating_sub(last) < HEALTH_TIMEOUT_MS;
            if !alive {
                evicted_now.push(w.id());
            }
            alive
        });
        for id in &evicted_now {
            self.obs.bump(Counter::WorkerEvictions);
            g.evicted.push(*id);
            g.last_beat.remove(id);
            g.class.remove(id);
        }
        evicted_now
    }

    /// Push a job to a worker: admission control first (a shed rush
    /// returns [`WbError::Overloaded`] instead of melting the pool),
    /// then round-robin placement skipping dead nodes; a failed
    /// submission marks a dispatch failure and tries the next worker
    /// (the retry behaviour students experienced as a slow attempt
    /// rather than an error page).
    pub fn submit(&self, req: &JobRequest, now_ms: u64) -> Result<JobOutcome, WbError> {
        match self
            .sched
            .admit(&req.spec.course, req.job_id, grade_class(req), now_ms)
        {
            Admission::Shed { retry_after_s } => {
                self.obs.phase(req.job_id, JobPhase::Failed, now_ms);
                Err(WbError::Overloaded { retry_after_s })
            }
            Admission::Admitted { browned_out } => {
                // The span opens the moment the web tier hands the job
                // over — queue wait is zero in a push cluster, but the
                // opener keeps v1 and v2 spans shape-compatible.
                self.obs.phase(req.job_id, JobPhase::Queued, now_ms);
                if browned_out {
                    let mut lighter = req.clone();
                    lighter.action = JobAction::CompileOnly;
                    self.execute(&lighter, now_ms)
                } else {
                    self.execute(req, now_ms)
                }
            }
        }
    }

    /// Run one admitted job on the pool: round-robin over live workers
    /// with dead-node retry.
    fn execute(&self, req: &JobRequest, now_ms: u64) -> Result<JobOutcome, WbError> {
        // Snapshot candidates to avoid holding the lock during a job.
        let candidates: Vec<Arc<WorkerNode>> = {
            let mut g = self.state.lock();
            if g.workers.is_empty() {
                self.obs.phase(req.job_id, JobPhase::Failed, now_ms);
                return Err(WbError::infra("no workers in the pool"));
            }
            let n = g.workers.len();
            let start = g.rr_cursor % n;
            g.rr_cursor = (g.rr_cursor + 1) % n.max(1);
            (0..n)
                .map(|k| Arc::clone(&g.workers[(start + k) % n]))
                .collect()
        };
        for w in candidates {
            match w.submit(req, now_ms) {
                Some(outcome) => return Ok(outcome),
                None => {
                    // The chosen node was down: account the failure and
                    // mark the span before trying the next candidate.
                    self.obs.annotate(req.job_id, Annotation::Retry, now_ms);
                    self.state.lock().dispatch_failures += 1;
                }
            }
        }
        self.obs.phase(req.job_id, JobPhase::Failed, now_ms);
        Err(WbError::infra("every worker in the pool is unreachable"))
    }

    /// Push a batch of independent submissions concurrently. Every
    /// request passes admission control (shed slots come back as
    /// [`WbError::Overloaded`] without ever touching a worker, and
    /// brown-out downgrades full grades to compile-only); admitted jobs
    /// drain from the fair-share scheduler in deficit-round-robin
    /// course order, one pool-sized wave at a time, each wave executed
    /// over parallel lanes (crossbeam scoped threads) so wall-clock
    /// time for a rush scales with the pool. Results come back in
    /// request order.
    pub fn submit_batch(
        &self,
        reqs: &[JobRequest],
        now_ms: u64,
    ) -> Vec<Result<JobOutcome, WbError>> {
        if reqs.is_empty() {
            return Vec::new();
        }
        let mut slots: Vec<Option<Result<JobOutcome, WbError>>> = Vec::new();
        slots.resize_with(reqs.len(), || None);
        for (i, req) in reqs.iter().enumerate() {
            let class = grade_class(req);
            let admission = self.sched.offer(
                &req.spec.course,
                req.job_id,
                (i, req.clone()),
                class,
                now_ms,
                |(_, r)| r.action = JobAction::CompileOnly,
            );
            match admission {
                Admission::Admitted { .. } => {
                    self.obs.phase(req.job_id, JobPhase::Queued, now_ms);
                }
                Admission::Shed { retry_after_s } => {
                    self.obs.phase(req.job_id, JobPhase::Failed, now_ms);
                    slots[i] = Some(Err(WbError::Overloaded { retry_after_s }));
                }
            }
        }
        loop {
            let (executed, batch) = self.drain_wave(now_ms);
            if executed == 0 {
                break;
            }
            for (slot, res) in batch {
                slots[slot] = Some(res);
            }
        }
        slots
            .into_iter()
            .map(|r| r.expect("every admitted slot is filled by its wave"))
            .collect()
    }

    /// Queue a job for asynchronous execution through admission
    /// control: the fair-share scheduler holds it until the next
    /// [`pump`](Self::pump), and its outcome lands in the results map
    /// ([`take_result`](Self::take_result)).
    pub fn enqueue(&self, req: JobRequest, now_ms: u64) -> Result<u64, WbError> {
        let job_id = req.job_id;
        let course = req.spec.course.clone();
        let class = grade_class(&req);
        let admission = self.sched.offer(
            &course,
            job_id,
            (PLATFORM_SLOT, req),
            class,
            now_ms,
            |(_, r)| {
                r.action = JobAction::CompileOnly;
            },
        );
        match admission {
            Admission::Admitted { .. } => {
                self.obs.phase(job_id, JobPhase::Queued, now_ms);
                Ok(job_id)
            }
            Admission::Shed { retry_after_s } => {
                self.obs.phase(job_id, JobPhase::Failed, now_ms);
                Err(WbError::Overloaded { retry_after_s })
            }
        }
    }

    /// Execute one fair-share wave of queued jobs. Returns how many
    /// jobs ran this round (successes land in the results map).
    pub fn pump(&self, now_ms: u64) -> usize {
        self.drain_wave(now_ms).0
    }

    /// Take a completed job's outcome off the cluster (pumped path).
    pub fn take_result(&self, job_id: u64) -> Option<JobOutcome> {
        self.state.lock().results.remove(&job_id)
    }

    /// Jobs completed through the pumped path.
    pub fn completed(&self) -> u64 {
        self.state.lock().completed
    }

    /// Jobs the fair-share scheduler is still holding.
    pub fn queue_depth(&self) -> usize {
        self.sched.total_backlog()
    }

    /// Per-course scheduler backlog view.
    pub fn sched_snapshot(&self) -> SchedSnapshot {
        self.sched.snapshot()
    }

    /// Release one fair-share wave (at most one job per pool worker)
    /// from the scheduler and execute it over parallel lanes. Outcomes
    /// for platform-queued jobs are routed to the results map; batch
    /// entries are returned with their request slot. The count of jobs
    /// executed comes back either way.
    fn drain_wave(&self, now_ms: u64) -> (usize, Vec<WaveResult>) {
        let width = self.pool_size().max(1);
        let wave = self.sched.drain_rotating(width, now_ms);
        if wave.is_empty() {
            return (0, Vec::new());
        }
        let mut cells: Vec<Option<(u64, WaveResult)>> = Vec::new();
        cells.resize_with(wave.len(), || None);
        crossbeam::thread::scope(|s| {
            for ((_, (slot, req)), cell) in wave.iter().zip(cells.iter_mut()) {
                s.spawn(move |_| {
                    *cell = Some((req.job_id, (*slot, self.execute(req, now_ms))));
                });
            }
        })
        .expect("submission lane panicked");
        let executed = cells.len();
        let mut batch = Vec::new();
        for (job_id, (slot, res)) in cells.into_iter().map(|c| c.expect("lane fills its cell")) {
            if slot == PLATFORM_SLOT {
                let mut g = self.state.lock();
                if let Ok(out) = res {
                    g.results.insert(job_id, out);
                    g.completed += 1;
                }
            } else {
                batch.push((slot, res));
            }
        }
        (executed, batch)
    }

    /// Current metrics snapshot from the cluster's recorder.
    pub fn metrics_snapshot(&self) -> wb_obs::MetricsSnapshot {
        self.obs.snapshot()
    }
}

impl FleetControl for ClusterV1 {
    fn spawn_worker(&self, desc: WorkerDesc) -> u64 {
        let mut g = self.state.lock();
        let id = g.next_worker_id;
        g.next_worker_id += 1;
        let mut config = self.config.clone();
        if let Some(caps) = desc.capabilities {
            config.capabilities = caps;
        }
        let w = Arc::new(WorkerNode::launch(
            id,
            &NodeConfig {
                device: self.device.clone(),
                worker: config,
                cache: self.cached.then(|| Arc::clone(&self.cache)),
                shards: self.shards,
                obs: Arc::clone(&self.obs),
            },
        ));
        // v1 is single-AZ: the zone in the descriptor is accepted but
        // every node lands in the primary zone's pool. The first
        // health sweep records the real beat.
        g.last_beat.insert(id, 0);
        g.class.insert(id, desc.reliability_class);
        g.workers.push(w);
        id
    }

    fn kill_worker(&self, id: u64) -> bool {
        let g = self.state.lock();
        let Some(w) = g.workers.iter().find(|w| w.id() == id) else {
            return false;
        };
        if w.is_crashed() {
            return false;
        }
        // The push architecture's kill is immediate: the node refuses
        // the next dispatch, and the health sweep eventually evicts it.
        w.crash();
        true
    }

    fn revive_worker(&self, id: u64) -> bool {
        let g = self.state.lock();
        let Some(w) = g.workers.iter().find(|w| w.id() == id) else {
            return false;
        };
        if !w.is_crashed() {
            return false;
        }
        w.recover();
        true
    }

    fn partition_zone(&self, _zone: Zone) -> bool {
        false // v1 predates multi-AZ: there is no zone to cut
    }

    fn heal_zone(&self, _zone: Zone) -> bool {
        false
    }

    fn describe_fleet(&self) -> FleetView {
        let g = self.state.lock();
        let workers = g
            .workers
            .iter()
            .map(|w| WorkerInfo {
                id: w.id(),
                zone: Zone::Primary,
                reliability_class: g
                    .class
                    .get(&w.id())
                    .copied()
                    .unwrap_or(ReliabilityClass::OnDemand),
                capabilities: w.capabilities(),
                alive: !w.is_crashed(),
                jobs_done: w.jobs_done(),
            })
            .collect();
        FleetView {
            workers,
            partitioned: None,
        }
    }
}

impl JobDispatcher for ClusterV1 {
    fn dispatch(&self, req: JobRequest, now_ms: u64) -> Result<JobOutcome, WbError> {
        self.submit(&req, now_ms)
    }

    fn submit_queued(&self, req: JobRequest, now_ms: u64) -> Result<u64, WbError> {
        self.enqueue(req, now_ms)
    }

    fn poll_queued(&self, job_id: u64) -> Option<JobOutcome> {
        self.take_result(job_id)
    }

    fn advance(&self, now_ms: u64) -> usize {
        self.pump(now_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use libwb::Dataset;
    use wb_worker::{DatasetCase, JobAction, LabSpec};

    fn echo(job_id: u64) -> JobRequest {
        JobRequest {
            job_id,
            user: "alice".into(),
            source: r#"
                int main() {
                    int n;
                    float* a = wbImportVector(0, &n);
                    wbSolution(a, n);
                    return 0;
                }
            "#
            .to_string(),
            spec: LabSpec::cuda_test("echo"),
            datasets: vec![DatasetCase {
                name: "d0".into(),
                inputs: vec![Dataset::Vector(vec![1.0])],
                expected: Dataset::Vector(vec![1.0]),
            }],
            action: JobAction::FullGrade,
        }
    }

    fn cluster(n: usize) -> ClusterV1 {
        ClusterV1::new(n, DeviceConfig::test_small())
    }

    #[test]
    fn jobs_round_robin_across_workers() {
        let c = cluster(3);
        for j in 0..6 {
            let out = c.submit(&echo(j), 0).unwrap();
            assert!(out.compiled());
        }
        for i in 0..3 {
            assert_eq!(c.worker(i).unwrap().jobs_done(), 2, "even spread");
        }
    }

    #[test]
    fn duplicate_submissions_hit_the_cluster_cache() {
        let c = cluster(3);
        for j in 0..6 {
            assert!(c.submit(&echo(j), 0).unwrap().compiled());
        }
        // Six identical sources spread round-robin over three workers:
        // one compile + one grade ran, the rest were cache hits — the
        // cache is cluster-wide, not per-node.
        let m = c.cache_metrics();
        assert_eq!(m.compile.misses, 1);
        assert_eq!(m.compile.hits, 5);
        assert_eq!(m.grade.misses, 1);
        assert_eq!(m.grade.hits, 5);
        assert!(m.total().hit_rate() > 0.8);
    }

    #[test]
    fn crashed_worker_is_skipped_with_retry() {
        let c = cluster(2);
        c.worker(0).unwrap().crash();
        for j in 0..4 {
            assert!(c.submit(&echo(j), 0).is_ok());
        }
        assert!(c.dispatch_failures() > 0, "the dead node was tried");
        assert_eq!(c.worker(1).unwrap().jobs_done(), 4);
    }

    #[test]
    fn batch_submission_completes_everything_in_order() {
        let c = cluster(4);
        let reqs: Vec<JobRequest> = (0..12).map(echo).collect();
        let results = c.submit_batch(&reqs, 0);
        assert_eq!(results.len(), 12);
        for (j, r) in results.iter().enumerate() {
            let out = r.as_ref().expect("pool alive");
            assert_eq!(out.job_id, j as u64, "results in request order");
            assert!(out.compiled());
        }
        let total: u64 = (0..4).map(|i| c.worker(i).unwrap().jobs_done()).sum();
        assert_eq!(total, 12, "every job ran exactly once");
    }

    #[test]
    fn batch_submission_survives_a_dead_worker() {
        let c = cluster(3);
        c.worker(1).unwrap().crash();
        let reqs: Vec<JobRequest> = (0..9).map(echo).collect();
        let results = c.submit_batch(&reqs, 0);
        assert!(results.iter().all(|r| r.is_ok()));
        assert_eq!(c.worker(1).unwrap().jobs_done(), 0);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let c = cluster(1);
        assert!(c.submit_batch(&[], 0).is_empty());
    }

    #[test]
    fn all_dead_reports_error() {
        let c = cluster(2);
        c.worker(0).unwrap().crash();
        c.worker(1).unwrap().crash();
        assert!(c.submit(&echo(1), 0).is_err());
    }

    #[test]
    fn health_sweep_evicts_silent_workers() {
        let c = cluster(3);
        // t=0 everyone beats.
        assert!(c.health_sweep(0).is_empty());
        c.worker(1).unwrap().crash();
        // Within the timeout nothing is evicted.
        assert!(c.health_sweep(HEALTH_TIMEOUT_MS - 1).is_empty());
        // Past the timeout the crashed node goes.
        let evicted = c.health_sweep(HEALTH_TIMEOUT_MS + 1);
        assert_eq!(evicted.len(), 1);
        assert_eq!(c.pool_size(), 2);
        assert_eq!(c.evicted(), evicted);
    }

    #[test]
    fn recovered_worker_keeps_beating_until_evicted() {
        let c = cluster(2);
        c.worker(0).unwrap().crash();
        c.worker(0).unwrap().recover();
        // Recovery before the timeout: no eviction.
        assert!(c.health_sweep(HEALTH_TIMEOUT_MS + 1).is_empty());
        assert_eq!(c.pool_size(), 2);
    }

    #[test]
    fn scaling_in_and_out() {
        let c = cluster(1);
        let id = c.add_worker(0);
        assert_eq!(c.pool_size(), 2);
        assert_eq!(c.remove_worker(), Some(id));
        assert_eq!(c.pool_size(), 1);
    }

    #[test]
    fn empty_pool_rejects() {
        let c = cluster(1);
        c.remove_worker();
        assert!(c.submit(&echo(1), 0).is_err());
    }

    #[test]
    fn fleet_control_kill_and_revive_drive_the_push_pool() {
        let c = cluster(2);
        assert!(c.kill_worker(1));
        assert!(!c.kill_worker(1), "already dead");
        assert_eq!(c.describe_fleet().alive(), 1);
        for j in 0..4 {
            assert!(c.submit(&echo(j), 0).is_ok());
        }
        assert_eq!(c.worker(1).unwrap().jobs_done(), 4, "survivor took all");
        assert!(c.revive_worker(1));
        assert!(!c.revive_worker(1), "already alive");
        assert_eq!(c.describe_fleet().alive(), 2);
        // Single-AZ architecture: zone faults are a polite no.
        assert!(!c.partition_zone(Zone::Primary));
        assert!(!c.heal_zone(Zone::Primary));
        assert!(c.describe_fleet().partitioned.is_none());
    }

    #[test]
    fn spawned_worker_joins_the_pool_with_its_class() {
        let c = cluster(1);
        let id = c.spawn_worker(WorkerDesc::spot(Zone::Standby));
        assert_eq!(id, 2);
        let view = c.describe_fleet();
        assert_eq!(view.total(), 2);
        assert_eq!(view.alive_of_class(ReliabilityClass::Spot), 1);
        assert_eq!(
            view.workers[1].zone,
            Zone::Primary,
            "v1 is single-AZ regardless of the descriptor"
        );
        for j in 0..2 {
            assert!(c.submit(&echo(j), 0).is_ok());
        }
        assert_eq!(
            c.worker(1).unwrap().jobs_done(),
            1,
            "round-robin reached it"
        );
    }
}
