//! WebGPU 2.0 (Figs. 6–7): a pull architecture — workers poll a
//! mirrored broker for jobs whose tags they can satisfy, drivers
//! restart on remote-config changes, datasets live in a blob store,
//! and the fleet resizes under an autoscaling policy.

use crate::autoscaler::{AutoscalePolicy, Autoscaler, FleetMetrics, FleetTarget};
use crate::builder::BrokerTuning;
use crate::fleet::{FleetControl, FleetView, ReliabilityClass, WorkerDesc, WorkerInfo, Zone};
use minicuda::DeviceConfig;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use wb_cache::{CacheConfig, CacheMetrics};
use wb_db::BlobStore;
use wb_obs::{Annotation, Counter, JobPhase, Recorder, Timer};
use wb_queue::ShardedBroker;
use wb_sched::{Admission, GradeClass, SchedConfig, SchedSnapshot, ShardedScheduler};
use wb_server::{JobDispatcher, WbError};
use wb_worker::{
    new_submission_cache, ConfigServer, JobAction, JobOutcome, JobRequest, NodeConfig,
    SubmissionCache, WorkerConfig, WorkerNode,
};

/// A worker health record persisted to the metrics database (§VI-B:
/// *"Each worker node constantly monitors the system, performing
/// necessary health checks … This information is stored in a
/// replicated database."*).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HealthRecord {
    /// Reporting worker.
    pub worker_id: u64,
    /// Virtual ms of the beat.
    pub at_ms: u64,
    /// Jobs completed at that time.
    pub jobs_done: u64,
    /// Driver restarts at that time.
    pub restarts: u64,
}

/// The v2 pull cluster.
pub struct ClusterV2 {
    broker: ShardedBroker<JobRequest>,
    /// Remote configuration service all workers watch (§VI-B).
    pub config: ConfigServer,
    /// Dataset bucket (§VI-A ° in Fig. 6).
    pub store: BlobStore,
    /// Replicated metrics database receiving worker health beats.
    pub metrics_db: wb_db::ReplicatedTable<HealthRecord>,
    device: DeviceConfig,
    /// Cluster-wide submission cache (`None` for the uncached
    /// baseline); autoscaled workers join it on boot.
    cache: Option<Arc<SubmissionCache>>,
    obs: Arc<Recorder>,
    /// Per-course fair-share scheduler, one lane per control-plane
    /// shard: every submission enters its course's shard and the pump
    /// releases fleet-sized batches into the broker in
    /// deficit-round-robin order, idle shards stealing from loaded
    /// ones so no lane strands work.
    sched: ShardedScheduler<JobRequest>,
    /// Control-plane lane count, shared by the broker, the scheduler,
    /// and the worker→lane pinning in the pump.
    shards: usize,
    state: Mutex<FleetState>,
    scaler: Mutex<Autoscaler>,
    /// High-water mark of the virtual clock (`now_ms` seen by submit
    /// and pump). Fleet mutations arriving through [`FleetControl`]
    /// carry no timestamp of their own; their span annotations are
    /// stamped with this.
    clock: AtomicU64,
}

/// Placement bookkeeping for one worker: where it lives, what it
/// costs, and whether the chaos/ops plane has killed it. Killed
/// workers stay in the roster (dark) until revived or scaled in.
struct WorkerMeta {
    zone: Zone,
    class: ReliabilityClass,
    killed: bool,
}

struct FleetState {
    workers: Vec<Arc<WorkerNode>>,
    meta: HashMap<u64, WorkerMeta>,
    next_worker_id: u64,
    results: HashMap<u64, JobOutcome>,
    completed: u64,
    /// Per-job queueing delay in pump rounds (latency proxy).
    wait_rounds: Vec<u64>,
    enqueue_round: HashMap<u64, u64>,
    round: u64,
}

impl ClusterV2 {
    /// Boot with an initial fleet and a scaling policy. The fleet
    /// shares one submission cache (default budgets). Equivalent to
    /// [`crate::ClusterBuilder`] with defaults — use the builder for
    /// anything beyond fleet/device/policy.
    pub fn new(initial_workers: usize, device: DeviceConfig, policy: AutoscalePolicy) -> Self {
        Self::new_inner(
            initial_workers,
            device,
            policy,
            Some(new_submission_cache(CacheConfig::default())),
            Arc::new(Recorder::noop()),
            SchedConfig::default(),
            WorkerConfig::default(),
            wb_worker::default_shards(),
            BrokerTuning::default(),
        )
    }

    #[allow(clippy::too_many_arguments)] // builder-only constructor
    pub(crate) fn new_inner(
        initial_workers: usize,
        device: DeviceConfig,
        policy: AutoscalePolicy,
        cache: Option<Arc<SubmissionCache>>,
        obs: Arc<Recorder>,
        sched: SchedConfig,
        worker_config: WorkerConfig,
        shards: usize,
        tuning: BrokerTuning,
    ) -> Self {
        let shards = shards.max(1);
        let config = ConfigServer::new(worker_config);
        let workers = (1..=initial_workers as u64)
            .map(|id| {
                Arc::new(Self::boot_worker(
                    id,
                    &device,
                    &config.get(),
                    cache.as_ref(),
                    shards,
                    &obs,
                ))
            })
            .collect::<Vec<_>>();
        // Initial placement alternates zones by id, so any fleet of
        // two or more straddles both availability zones on boot.
        let meta = workers
            .iter()
            .map(|w| {
                (
                    w.id(),
                    WorkerMeta {
                        zone: Zone::for_index(w.id()),
                        class: ReliabilityClass::OnDemand,
                        killed: false,
                    },
                )
            })
            .collect();
        ClusterV2 {
            broker: ShardedBroker::with_recorder(
                shards,
                tuning.visibility_timeout_ms,
                tuning.max_attempts,
                Arc::clone(&obs),
            ),
            config,
            store: BlobStore::new(),
            metrics_db: wb_db::ReplicatedTable::new(),
            device,
            cache,
            sched: ShardedScheduler::new(shards, sched, Arc::clone(&obs)),
            shards,
            obs,
            state: Mutex::new(FleetState {
                workers,
                meta,
                next_worker_id: initial_workers as u64 + 1,
                results: HashMap::new(),
                completed: 0,
                wait_rounds: Vec::new(),
                enqueue_round: HashMap::new(),
                round: 0,
            }),
            scaler: Mutex::new(Autoscaler::new(policy, initial_workers)),
            clock: AtomicU64::new(0),
        }
    }

    fn boot_worker(
        id: u64,
        device: &DeviceConfig,
        config: &WorkerConfig,
        cache: Option<&Arc<SubmissionCache>>,
        shards: usize,
        obs: &Arc<Recorder>,
    ) -> WorkerNode {
        WorkerNode::launch(
            id,
            &NodeConfig {
                device: device.clone(),
                worker: config.clone(),
                cache: cache.map(Arc::clone),
                shards,
                obs: Arc::clone(obs),
            },
        )
    }

    /// Fleet size.
    pub fn fleet_size(&self) -> usize {
        self.state.lock().workers.len()
    }

    /// Control-plane lane count (broker lanes == scheduler shards).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Snapshot the cluster-wide submission-cache counters (`None`
    /// when the cluster was booted uncached).
    pub fn cache_metrics(&self) -> Option<CacheMetrics> {
        self.cache.as_ref().map(|c| c.metrics())
    }

    /// Jobs completed.
    pub fn completed(&self) -> u64 {
        self.state.lock().completed
    }

    /// Jobs waiting platform-wide: the scheduler's per-course backlogs
    /// plus everything visible in the broker to an all-capable worker.
    pub fn queue_depth(&self, now_ms: u64) -> usize {
        self.sched.total_backlog() + self.broker.depth(now_ms)
    }

    /// Per-course scheduler backlogs, for the dashboard.
    pub fn sched_snapshot(&self) -> SchedSnapshot {
        self.sched.snapshot()
    }

    /// Jobs delivered to workers and not yet acknowledged.
    pub fn in_flight(&self, now_ms: u64) -> usize {
        self.broker.in_flight(now_ms)
    }

    /// Number of recorded queueing-delay samples. Every completed job
    /// contributes exactly one sample: the baseline is written before
    /// the job becomes visible to any worker.
    pub fn wait_samples(&self) -> usize {
        self.state.lock().wait_rounds.len()
    }

    /// Broker counters for the operations dashboard (§VI-A).
    pub fn broker_metrics(&self) -> wb_queue::BrokerMetrics {
        self.broker.metrics()
    }

    /// Mean queueing delay in pump rounds.
    pub fn mean_wait_rounds(&self) -> f64 {
        let g = self.state.lock();
        if g.wait_rounds.is_empty() {
            return 0.0;
        }
        g.wait_rounds.iter().sum::<u64>() as f64 / g.wait_rounds.len() as f64
    }

    /// Handle on a worker (fault injection).
    pub fn worker(&self, idx: usize) -> Option<Arc<WorkerNode>> {
        self.state.lock().workers.get(idx).cloned()
    }

    /// Fail over the broker to its standby zone. Every job still
    /// waiting (enqueued but not yet completed) gets a `Failover`
    /// annotation on its span — the operator-visible trace of which
    /// submissions lived through the zone switch.
    pub fn broker_failover(&self, now_ms: u64) {
        {
            let g = self.state.lock();
            for &job_id in g.enqueue_round.keys() {
                self.obs.annotate(job_id, Annotation::Failover, now_ms);
            }
        }
        self.broker.failover();
    }

    /// Offer a job for admission. Admitted jobs enter the fair-share
    /// scheduler (possibly downgraded to compile-only in the brown-out
    /// band) and are released to the broker by subsequent pumps; shed
    /// jobs return [`WbError::Overloaded`] with a finite retry hint.
    ///
    /// The latency baseline and the admission decision are one atomic
    /// step: the state lock is held across the scheduler offer, so an
    /// admitted job's `wait_rounds` baseline exists before any
    /// concurrent pump can merge its completion (`merge_outcomes`
    /// serializes on the same lock), and a shed job never touches
    /// `enqueue_round` at all. The earlier insert-then-rollback shape
    /// dropped the lock between the two, leaving a window where a
    /// concurrent `broker_failover` annotated spans of jobs that had
    /// already been refused.
    pub fn submit(&self, req: JobRequest, now_ms: u64) -> Result<u64, WbError> {
        self.clock.fetch_max(now_ms, Ordering::Relaxed);
        let job_id = req.job_id;
        let course = req.spec.course.clone();
        let class = if req.action == JobAction::FullGrade {
            GradeClass::Full
        } else {
            GradeClass::Light
        };
        let mut g = self.state.lock();
        let round = g.round;
        match self.sched.offer(&course, job_id, req, class, now_ms, |r| {
            r.action = JobAction::CompileOnly;
        }) {
            Admission::Admitted { .. } => {
                g.enqueue_round.insert(job_id, round);
                drop(g);
                self.obs.phase(job_id, JobPhase::Queued, now_ms);
                Ok(job_id)
            }
            Admission::Shed { retry_after_s } => {
                drop(g);
                self.obs.phase(job_id, JobPhase::Failed, now_ms);
                Err(WbError::Overloaded { retry_after_s })
            }
        }
    }

    /// Enqueue a job unconditionally; returns its platform job id.
    ///
    /// Thin wrapper over [`ClusterV2::submit`] for callers that size
    /// their own load (tests, benches). Panics if admission control is
    /// configured tight enough to shed — such callers should use
    /// `submit` and handle [`WbError::Overloaded`].
    pub fn enqueue(&self, req: JobRequest, now_ms: u64) -> u64 {
        self.submit(req, now_ms)
            .expect("enqueue on a cluster with admission control enabled; use submit")
    }

    /// One scheduler round: every live worker syncs config and polls
    /// once — **concurrently**, one scoped thread per worker — then the
    /// autoscaler adjusts the fleet. Returns the number of jobs
    /// completed this round.
    ///
    /// Concurrency contract: no cluster lock is held while a worker
    /// executes a job. The fleet is snapshotted under the state lock,
    /// each worker runs config-sync / health-beat / poll on its own
    /// thread against its own interior locks (and the broker's), and
    /// completion bookkeeping is merged back under the state lock only
    /// after every thread has joined. Fleet throughput therefore scales
    /// with fleet size up to the host's core count.
    pub fn pump(&self, now_ms: u64) -> usize {
        self.pump_inner(now_ms, true)
    }

    /// The pre-concurrency pump: identical bookkeeping, but workers
    /// run one after another on the calling thread. Kept as the
    /// baseline for the `pump_scaling` experiment (and for callers
    /// that want deterministic single-threaded rounds).
    pub fn pump_serial(&self, now_ms: u64) -> usize {
        self.pump_inner(now_ms, false)
    }

    fn pump_inner(&self, now_ms: u64, concurrent: bool) -> usize {
        self.clock.fetch_max(now_ms, Ordering::Relaxed);
        // Workers in a partitioned zone are unreachable: they drop out
        // of the round (no config sync, no health beat, no poll) but
        // keep their fleet index, so lane pinning is stable across the
        // cut and heal.
        let cut = self.broker.partitioned_zone().map(Zone::from_broker);
        let (workers, round) = {
            let mut g = self.state.lock();
            g.round += 1;
            let reachable: Vec<(usize, Arc<WorkerNode>)> = g
                .workers
                .iter()
                .enumerate()
                .filter(|(_, w)| cut.is_none() || g.meta.get(&w.id()).map(|m| m.zone) != cut)
                .map(|(i, w)| (i, Arc::clone(w)))
                .collect();
            (reachable, g.round)
        };
        // Release one fleet-sized batch from the fair-share scheduler
        // into the broker, lane by lane: each shard drains its own
        // slice of the fleet's capacity (stealing from loaded siblings
        // when its backlog is short) into the matching broker lane.
        // The lane walk is rotated by round so leftover quota from the
        // `fleet % shards` remainder doesn't always favour lane 0, and
        // every shard's aging clock ticks even at quota zero.
        let n = self.shards;
        let fleet = workers.len();
        for k in 0..n {
            let lane = (round as usize + k) % n;
            let quota = fleet / n + usize::from(k < fleet % n);
            for (_, req) in self.sched.drain_stealing(lane, quota, now_ms) {
                let tags = req.spec.tags.to_wire();
                self.broker.enqueue_to(lane, req, tags, now_ms);
            }
        }
        let outcomes: Vec<JobOutcome> = if !concurrent || workers.len() <= 1 {
            workers
                .iter()
                .filter_map(|(i, w)| self.pump_worker(*i, w, now_ms))
                .collect()
        } else {
            // One scoped thread per live worker, exactly as
            // `minicuda::simt` runs blocks over SM threads. Each thread
            // writes into its own pre-sized slot, so no lock guards the
            // results and no thread ever blocks on a sibling.
            let mut slots: Vec<Option<JobOutcome>> = Vec::new();
            slots.resize_with(workers.len(), || None);
            crossbeam::thread::scope(|s| {
                for ((i, w), slot) in workers.iter().zip(slots.iter_mut()) {
                    s.spawn(move |_| {
                        *slot = self.pump_worker(*i, w, now_ms);
                    });
                }
            })
            .expect("pump worker thread panicked");
            slots.into_iter().flatten().collect()
        };
        let done = outcomes.len();
        self.merge_outcomes(outcomes);
        self.autoscale(now_ms);
        done
    }

    /// One worker's share of a round. Runs on the worker's own thread
    /// under the concurrent pump; touches only the worker's interior
    /// state, the config service, the metrics database, and the
    /// broker — never the cluster state lock.
    fn pump_worker(&self, idx: usize, w: &WorkerNode, now_ms: u64) -> Option<JobOutcome> {
        w.sync_config(&self.config);
        // Persist the worker's health beat to the replicated metrics
        // database (crashed workers emit nothing, which is exactly how
        // the dashboard notices them going quiet).
        if let Some(beat) = w.health(now_ms) {
            self.obs.bump(Counter::HealthBeats);
            let _ = self.metrics_db.insert(&HealthRecord {
                worker_id: beat.worker_id,
                at_ms: beat.at_ms,
                jobs_done: beat.jobs_done,
                restarts: beat.restarts,
            });
        }
        // The worker polls its pinned lane (stealing from siblings when
        // the lane is dry); each lane is a mirror, so the ack reaches
        // both zones and a failover cannot re-run completed jobs.
        w.poll_once(&self.broker.lane(idx % self.shards), now_ms)
    }

    /// Post-join completion bookkeeping, under the state lock but
    /// strictly after all job execution finished.
    fn merge_outcomes(&self, outcomes: Vec<JobOutcome>) {
        if outcomes.is_empty() {
            return;
        }
        let mut g = self.state.lock();
        let round = g.round;
        for outcome in outcomes {
            g.completed += 1;
            if let Some(at) = g.enqueue_round.remove(&outcome.job_id) {
                let wait = round.saturating_sub(at);
                self.obs.observe(Timer::QueueWaitRounds, wait);
                g.wait_rounds.push(wait);
            }
            g.results.insert(outcome.job_id, outcome);
        }
    }

    fn autoscale(&self, now_ms: u64) {
        // Decision and application share one critical section: the
        // fleet size the policy sees is the fleet the decision is
        // applied to. The earlier shape computed `desired` from a
        // snapshot, dropped the lock, and reacquired it to act — two
        // racing autoscales could then each apply a decision sized for
        // a fleet the other had already changed, overshooting the
        // policy bounds.
        let mut g = self.state.lock();
        let metrics = FleetMetrics {
            queue_depth: self.broker.depth(now_ms),
            sched_backlog: self.sched.total_backlog(),
            max_course_backlog: self.sched.max_course_backlog(),
            fleet_size: g.workers.len(),
            now_ms,
        };
        let target = self.scaler.lock().desired_mix(&metrics);
        self.obs.autoscale(g.workers.len(), target.total(), now_ms);
        self.apply_target(&mut g, target);
    }

    /// Grow and shrink the fleet toward `target`. Killed workers keep
    /// their roster slot (and count toward the fleet size) until
    /// revived or scaled in, so a chaos campaign's fleet doesn't
    /// silently regrow behind its back. Growth fills the on-demand
    /// deficit before buying spot; scale-in removes alive workers
    /// newest-first, spot before on-demand — and is exact: `target`
    /// already respects the policy floor, so no extra `> 1` clamp (a
    /// hardcoded floor of one both violated `Reactive { min }` and
    /// made the scaled-to-zero guard in `dispatch` unreachable).
    fn apply_target(&self, g: &mut FleetState, target: FleetTarget) {
        let of_class = |g: &FleetState, class: ReliabilityClass| {
            g.workers
                .iter()
                .filter(|w| g.meta.get(&w.id()).is_some_and(|m| m.class == class))
                .count()
        };
        while g.workers.len() < target.total() {
            let class = if of_class(g, ReliabilityClass::OnDemand) < target.on_demand {
                ReliabilityClass::OnDemand
            } else {
                ReliabilityClass::Spot
            };
            let zone = Zone::for_index(g.next_worker_id);
            self.spawn_locked(
                g,
                WorkerDesc {
                    zone,
                    capabilities: None,
                    reliability_class: class,
                },
            );
        }
        while g.workers.len() > target.total() {
            let removable = |class| {
                g.workers.iter().rposition(|w| {
                    g.meta
                        .get(&w.id())
                        .is_some_and(|m| m.class == class && !m.killed)
                })
            };
            let Some(pos) =
                removable(ReliabilityClass::Spot).or_else(|| removable(ReliabilityClass::OnDemand))
            else {
                break; // only killed workers left: hold their slots
            };
            let w = g.workers.remove(pos);
            g.meta.remove(&w.id());
        }
    }

    /// Boot a worker into the fleet under an already-held state lock —
    /// the one spawn path shared by the autoscaler and
    /// [`FleetControl::spawn_worker`], so the critical-section
    /// invariant above covers both.
    fn spawn_locked(&self, g: &mut FleetState, desc: WorkerDesc) -> u64 {
        let id = g.next_worker_id;
        g.next_worker_id += 1;
        let mut config = self.config.get();
        if let Some(caps) = desc.capabilities {
            // Same version as the server's: the override sticks until
            // the next fleet-wide publish bumps it.
            config.capabilities = caps;
        }
        // Spawned workers join the same cluster-wide cache as the
        // initial fleet.
        g.workers.push(Arc::new(Self::boot_worker(
            id,
            &self.device,
            &config,
            self.cache.as_ref(),
            self.shards,
            &self.obs,
        )));
        g.meta.insert(
            id,
            WorkerMeta {
                zone: desc.zone,
                class: desc.reliability_class,
                killed: false,
            },
        );
        id
    }

    /// Take a completed job's result.
    pub fn take_result(&self, job_id: u64) -> Option<JobOutcome> {
        self.state.lock().results.remove(&job_id)
    }

    /// Aggregate metrics snapshot from the shared recorder — counters,
    /// latency percentiles, recent events. Empty when the cluster was
    /// booted without tracing.
    pub fn metrics_snapshot(&self) -> wb_obs::MetricsSnapshot {
        self.obs.snapshot()
    }

    /// A job's lifecycle span (traced clusters only).
    pub fn span(&self, job_id: u64) -> Option<wb_obs::SpanView> {
        self.obs.span(job_id)
    }

    /// Every tracked span (traced clusters only).
    pub fn spans(&self) -> Vec<wb_obs::SpanView> {
        self.obs.spans()
    }
}

impl JobDispatcher for ClusterV2 {
    fn dispatch(&self, req: JobRequest, now_ms: u64) -> Result<JobOutcome, WbError> {
        let job_id = req.job_id;
        self.submit(req, now_ms)?;
        for round in 0..10_000u64 {
            self.pump(now_ms + round);
            if let Some(out) = self.take_result(job_id) {
                return Ok(out);
            }
            if self.queue_depth(now_ms + round) > 0 && self.fleet_size() == 0 {
                self.obs.phase(job_id, JobPhase::Failed, now_ms + round);
                return Err(WbError::infra("fleet scaled to zero with work queued"));
            }
        }
        self.obs.phase(job_id, JobPhase::Failed, now_ms + 10_000);
        Err(WbError::infra("job did not complete (no capable worker?)"))
    }

    // The queued path maps straight onto the cluster's native
    // admission/pump/result surface — this is how the semester replay
    // drives a shared cluster behind a `WebGpuServer`.

    fn submit_queued(&self, req: JobRequest, now_ms: u64) -> Result<u64, WbError> {
        self.submit(req, now_ms)
    }

    fn poll_queued(&self, job_id: u64) -> Option<JobOutcome> {
        self.take_result(job_id)
    }

    fn advance(&self, now_ms: u64) -> usize {
        self.pump(now_ms)
    }
}

impl FleetControl for ClusterV2 {
    fn spawn_worker(&self, desc: WorkerDesc) -> u64 {
        let mut g = self.state.lock();
        self.spawn_locked(&mut g, desc)
    }

    fn kill_worker(&self, id: u64) -> bool {
        let mut g = self.state.lock();
        let Some(w) = g.workers.iter().find(|w| w.id() == id).cloned() else {
            return false;
        };
        let Some(m) = g.meta.get_mut(&id) else {
            return false;
        };
        if m.killed || w.is_crashed() {
            return false;
        }
        m.killed = true;
        // The pull architecture's kill is a preemption: the node goes
        // dark at its next poll, taking any matching delivery with it;
        // the visibility timeout reclaims the job.
        w.preempt();
        true
    }

    fn revive_worker(&self, id: u64) -> bool {
        let mut g = self.state.lock();
        let Some(w) = g.workers.iter().find(|w| w.id() == id).cloned() else {
            return false;
        };
        let Some(m) = g.meta.get_mut(&id) else {
            return false;
        };
        if !m.killed && !w.is_crashed() {
            return false;
        }
        m.killed = false;
        w.recover();
        true
    }

    fn partition_zone(&self, zone: Zone) -> bool {
        let bz = zone.broker_zone();
        // Cutting the zone the broker is serving from forces a
        // failover; mark every pending span the same way
        // [`ClusterV2::broker_failover`] does, stamped with the
        // latest virtual time the cluster has seen.
        if self.broker.partitioned_zone().is_none() && self.broker.active_zone() == bz {
            let now = self.clock.load(Ordering::Relaxed);
            let g = self.state.lock();
            for &job_id in g.enqueue_round.keys() {
                self.obs.annotate(job_id, Annotation::Failover, now);
            }
        }
        self.broker.partition(bz)
    }

    fn heal_zone(&self, zone: Zone) -> bool {
        self.broker.heal(zone.broker_zone())
    }

    fn describe_fleet(&self) -> FleetView {
        let g = self.state.lock();
        let workers = g
            .workers
            .iter()
            .map(|w| {
                let m = g.meta.get(&w.id());
                WorkerInfo {
                    id: w.id(),
                    zone: m.map_or(Zone::Primary, |m| m.zone),
                    reliability_class: m.map_or(ReliabilityClass::OnDemand, |m| m.class),
                    capabilities: w.capabilities(),
                    alive: !w.is_crashed() && m.is_none_or(|m| !m.killed),
                    jobs_done: w.jobs_done(),
                }
            })
            .collect();
        FleetView {
            workers,
            partitioned: self.broker.partitioned_zone().map(Zone::from_broker),
        }
    }
}

impl ClusterV2 {
    /// Latest health record per worker, read from a fresh replica of
    /// the metrics database — the query the dashboard issues.
    pub fn latest_health(&self) -> Vec<HealthRecord> {
        let mut replica = wb_db::replica::Replica::new();
        let _ = replica.catch_up(&self.metrics_db);
        let mut latest: std::collections::HashMap<u64, HealthRecord> =
            std::collections::HashMap::new();
        for (_, rec) in replica.table().scan() {
            let slot = latest.entry(rec.worker_id).or_insert_with(|| rec.clone());
            if rec.at_ms >= slot.at_ms {
                *slot = rec;
            }
        }
        let mut out: Vec<HealthRecord> = latest.into_values().collect();
        out.sort_by_key(|r| r.worker_id);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use libwb::Dataset;
    use wb_sandbox::SyscallWhitelist;
    use wb_worker::{DatasetCase, JobAction, LabSpec};

    fn echo(job_id: u64) -> JobRequest {
        JobRequest {
            job_id,
            user: "alice".into(),
            source: r#"
                int main() {
                    int n;
                    float* a = wbImportVector(0, &n);
                    wbSolution(a, n);
                    return 0;
                }
            "#
            .to_string(),
            spec: LabSpec::cuda_test("echo"),
            datasets: vec![DatasetCase {
                name: "d0".into(),
                inputs: vec![Dataset::Vector(vec![2.0])],
                expected: Dataset::Vector(vec![2.0]),
            }],
            action: JobAction::FullGrade,
        }
    }

    #[test]
    fn dispatch_completes_jobs() {
        let c = ClusterV2::new(2, DeviceConfig::test_small(), AutoscalePolicy::Static(2));
        let out = c.dispatch(echo(1), 0).unwrap();
        assert!(out.compiled());
        assert_eq!(c.completed(), 1);
    }

    #[test]
    fn rush_of_identical_jobs_dedupes_cluster_wide() {
        // Twelve byte-identical submissions against a fleet of four
        // pumping concurrently: the cache must compile and grade once,
        // no matter which workers pick which jobs up.
        let c = ClusterV2::new(4, DeviceConfig::test_small(), AutoscalePolicy::Static(4));
        for j in 0..12 {
            c.enqueue(echo(j), 0);
        }
        for r in 0..10 {
            c.pump(r);
        }
        assert_eq!(c.completed(), 12);
        let m = c.cache_metrics().expect("cached by default");
        assert_eq!(m.compile.misses, 1, "one compile for twelve identical jobs");
        assert_eq!(m.grade.misses, 1, "one grade for twelve identical jobs");
        assert_eq!(m.compile.hits + m.compile.coalesced, 11);
        // Every job still got a full, correct outcome.
        for j in 0..12 {
            let out = c.take_result(j).expect("result recorded");
            assert!(out.compiled());
            assert_eq!(out.passed_count(), 1);
        }
    }

    #[test]
    fn uncached_baseline_runs_every_job_fresh() {
        let c = crate::ClusterBuilder::new(DeviceConfig::test_small())
            .fleet(2)
            .uncached()
            .build_v2();
        assert!(c.cache_metrics().is_none());
        for j in 0..4 {
            c.enqueue(echo(j), 0);
        }
        for r in 0..10 {
            c.pump(r);
        }
        assert_eq!(c.completed(), 4);
    }

    #[test]
    fn tagged_jobs_wait_for_capable_workers() {
        let c = ClusterV2::new(1, DeviceConfig::test_small(), AutoscalePolicy::Static(1));
        let mut req = echo(7);
        req.spec.tags = ["mpi".to_string()].into_iter().collect();
        req.spec.whitelist = SyscallWhitelist::mpi_profile();
        c.enqueue(req, 0);
        // Plain CUDA fleet never takes it.
        for r in 0..5 {
            assert_eq!(c.pump(r), 0);
        }
        assert_eq!(c.queue_depth(10), 1, "job still queued");
        // Push an MPI-capable config; drivers restart and accept.
        c.config.update(|cfg| {
            cfg.capabilities.insert("mpi".into());
        });
        let mut done = 0;
        for r in 10..20 {
            done += c.pump(r);
        }
        assert_eq!(done, 1);
        assert!(c.worker(0).unwrap().restarts() >= 1);
    }

    #[test]
    fn reactive_policy_grows_fleet_under_load() {
        let c = ClusterV2::new(
            1,
            DeviceConfig::test_small(),
            AutoscalePolicy::Reactive {
                jobs_per_worker: 2,
                min: 1,
                max: 8,
            },
        );
        for j in 0..12 {
            c.enqueue(echo(j), 0);
        }
        c.pump(0);
        assert!(
            c.fleet_size() > 1,
            "queue of 12 with 2 jobs/worker must scale out (now {})",
            c.fleet_size()
        );
        // Drain and let it scale back in.
        for r in 1..40 {
            c.pump(r);
        }
        assert_eq!(c.completed(), 12);
        assert_eq!(c.fleet_size(), 1, "idle fleet returns to min");
    }

    #[test]
    fn broker_failover_loses_nothing() {
        let c = ClusterV2::new(1, DeviceConfig::test_small(), AutoscalePolicy::Static(1));
        for j in 0..3 {
            c.enqueue(echo(j), 0);
        }
        c.broker_failover(0);
        let mut done = 0;
        for r in 0..20 {
            done += c.pump(r);
        }
        assert_eq!(done, 3, "mirrored jobs survive the failover");
    }

    #[test]
    fn wait_rounds_tracked() {
        let c = ClusterV2::new(1, DeviceConfig::test_small(), AutoscalePolicy::Static(1));
        for j in 0..4 {
            c.enqueue(echo(j), 0);
        }
        for r in 0..10 {
            c.pump(r);
        }
        assert!(c.mean_wait_rounds() >= 1.0, "later jobs waited in queue");
        assert_eq!(c.wait_samples(), 4, "every completion has a latency sample");
    }

    #[test]
    fn failover_does_not_rerun_completed_jobs() {
        // Regression: worker acks used to reach only the active zone's
        // broker, so the standby still held every "completed" job and a
        // failover re-delivered, re-executed, and double-counted them.
        let c = ClusterV2::new(1, DeviceConfig::test_small(), AutoscalePolicy::Static(1));
        c.enqueue(echo(1), 0);
        let mut done = 0;
        for r in 0..5 {
            done += c.pump(r);
        }
        assert_eq!(done, 1);
        assert_eq!(c.completed(), 1);
        c.broker_failover(5);
        for r in 5..15 {
            done += c.pump(r);
        }
        assert_eq!(done, 1, "the standby has nothing to redeliver");
        assert_eq!(c.completed(), 1, "no double count after failover");
        assert_eq!(
            c.worker(0).unwrap().jobs_done(),
            1,
            "the job ran exactly once"
        );
    }

    #[test]
    fn scale_in_respects_the_policy_floor() {
        let c = ClusterV2::new(
            4,
            DeviceConfig::test_small(),
            AutoscalePolicy::Reactive {
                jobs_per_worker: 2,
                min: 2,
                max: 8,
            },
        );
        // Plenty of idle rounds: the cooldown elapses and the fleet
        // shrinks — but never through the policy minimum.
        for r in 0..20 {
            c.pump(r);
            assert!(
                c.fleet_size() >= 2,
                "round {r}: fleet {} dropped below Reactive min 2",
                c.fleet_size()
            );
        }
        assert_eq!(c.fleet_size(), 2, "idle fleet settles at the floor");
    }

    #[test]
    fn concurrent_pumps_hold_the_fleet_inside_policy_bounds() {
        // Regression for the autoscale snapshot race: `desired` used to
        // be computed from a fleet snapshot taken outside the state
        // lock, so two racing autoscales could each apply a decision
        // sized for a fleet the other had already changed. Four threads
        // pump the same loaded cluster; the fleet must sit inside
        // [min, max] at every observation.
        let c = crate::ClusterBuilder::new(DeviceConfig::test_small())
            .fleet(2)
            .shards(4)
            .policy(AutoscalePolicy::Reactive {
                jobs_per_worker: 2,
                min: 2,
                max: 8,
            })
            .build_v2();
        for j in 0..64 {
            c.enqueue(echo(j), 0);
        }
        crossbeam::thread::scope(|s| {
            for t in 0..4u64 {
                let c = &c;
                s.spawn(move |_| {
                    for r in 0..30 {
                        c.pump(t * 1_000 + r);
                        let fleet = c.fleet_size();
                        assert!((2..=8).contains(&fleet), "fleet {fleet} escaped [2, 8]");
                    }
                });
            }
        })
        .expect("pump thread panicked");
        // Sequential idle rounds finish any stragglers a final
        // concurrent release left in the broker, then let the cooldown
        // elapse so the fleet settles back at the floor.
        for r in 0..60 {
            c.pump(10_000 + r);
        }
        assert_eq!(c.completed(), 64, "every admitted job completed");
        assert_eq!(c.fleet_size(), 2, "idle fleet settles at the floor");
    }

    #[test]
    fn killed_worker_strands_nothing_past_the_visibility_timeout() {
        // Kill through FleetControl mid-load: the preempted worker
        // takes one delivery dark; the timeout reclaims it and the
        // survivor finishes every job exactly once.
        let c = crate::ClusterBuilder::new(DeviceConfig::test_small())
            .fleet(2)
            .shards(1)
            .broker_tuning(5, 10)
            .build_v2();
        for j in 0..4 {
            c.enqueue(echo(j), 0);
        }
        assert!(c.kill_worker(1), "worker 1 exists and is alive");
        assert!(!c.kill_worker(1), "double kill reports false");
        assert!(!c.kill_worker(99), "unknown id reports false");
        let mut done = 0;
        for r in 0..30 {
            done += c.pump(r);
        }
        assert_eq!(done, 4, "every job completed despite the kill");
        assert_eq!(c.describe_fleet().alive(), 1);
        assert!(c.revive_worker(1));
        assert!(!c.revive_worker(1), "double revive reports false");
        assert_eq!(c.describe_fleet().alive(), 2);
    }

    #[test]
    fn spawned_worker_with_capability_override_takes_tagged_jobs() {
        let c = crate::ClusterBuilder::new(DeviceConfig::test_small())
            .fleet(1)
            .shards(1)
            .policy(AutoscalePolicy::Static(2))
            .build_v2();
        let id = c.spawn_worker(
            crate::fleet::WorkerDesc::spot(crate::fleet::Zone::Standby)
                .with_capabilities(["cuda", "mpi"].into()),
        );
        assert_eq!(id, 2);
        let view = c.describe_fleet();
        assert_eq!(view.total(), 2);
        assert_eq!(view.alive_of_class(ReliabilityClass::Spot), 1);
        assert!(view.workers[1].capabilities.contains("mpi"));
        let mut req = echo(7);
        req.spec.tags = ["mpi".to_string()].into_iter().collect();
        req.spec.whitelist = SyscallWhitelist::mpi_profile();
        c.enqueue(req, 0);
        let mut done = 0;
        for r in 0..10 {
            done += c.pump(r);
        }
        assert_eq!(done, 1, "only the spawned worker could take it");
        assert_eq!(c.fleet_size(), 2, "static target keeps both");
    }

    #[test]
    fn partitioned_zone_workers_sit_out_the_round() {
        let c = crate::ClusterBuilder::new(DeviceConfig::test_small())
            .fleet(2)
            .shards(1)
            .build_v2();
        // Worker 1 is primary, worker 2 standby. Cut the standby: only
        // the primary worker pumps; its beat arrives, the standby's
        // does not.
        assert!(c.partition_zone(crate::fleet::Zone::Standby));
        assert_eq!(
            c.describe_fleet().partitioned,
            Some(crate::fleet::Zone::Standby)
        );
        c.enqueue(echo(1), 0);
        c.enqueue(echo(2), 0);
        let mut done = 0;
        for r in 0..10 {
            done += c.pump(r);
        }
        assert_eq!(done, 2, "the primary worker drains the queue alone");
        assert_eq!(c.worker(1).unwrap().jobs_done(), 0, "standby sat out");
        assert!(c.heal_zone(crate::fleet::Zone::Standby));
        assert!(!c.heal_zone(crate::fleet::Zone::Standby), "already healed");
        c.enqueue(echo(3), 20);
        for r in 20..30 {
            done += c.pump(r);
        }
        assert_eq!(done, 3);
    }

    #[test]
    fn scaled_to_zero_fleet_is_reported_by_dispatch() {
        // With the hardcoded `> 1` scale-in clamp gone, a zero-minimum
        // policy really can drain the fleet — and dispatch's guard for
        // "work queued but nobody to run it" is reachable again.
        let c = ClusterV2::new(0, DeviceConfig::test_small(), AutoscalePolicy::Static(0));
        assert_eq!(c.fleet_size(), 0);
        let err = c.dispatch(echo(1), 0).unwrap_err().to_string();
        assert!(err.contains("scaled to zero"), "got: {err}");
    }
}

#[cfg(test)]
mod health_tests {
    use super::*;
    use libwb::Dataset;
    use wb_worker::{DatasetCase, JobAction, LabSpec};

    #[test]
    fn health_beats_flow_into_the_replicated_db() {
        let c = ClusterV2::new(2, DeviceConfig::test_small(), AutoscalePolicy::Static(2));
        c.enqueue(
            JobRequest {
                job_id: 1,
                user: "a".into(),
                source: "int main() { return 0; }".into(),
                spec: LabSpec::cuda_test("noop"),
                datasets: vec![DatasetCase {
                    name: "d0".into(),
                    inputs: vec![],
                    expected: Dataset::Scalar(0.0),
                }],
                action: JobAction::CompileOnly,
            },
            0,
        );
        for r in 0..4 {
            c.pump(r);
        }
        let health = c.latest_health();
        assert_eq!(health.len(), 2, "both workers beat");
        assert!(health.iter().any(|h| h.jobs_done >= 1));
        // A crashed worker stops appearing with fresh timestamps.
        c.worker(1).unwrap().crash();
        c.pump(100);
        let health = c.latest_health();
        let crashed = health.iter().find(|h| h.worker_id == 2).unwrap();
        assert!(crashed.at_ms < 100, "no fresh beat after the crash");
        let alive = health.iter().find(|h| h.worker_id == 1).unwrap();
        assert_eq!(alive.at_ms, 100);
    }
}
