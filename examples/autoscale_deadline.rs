//! Deadline-week autoscaling on the v2 architecture: replay a
//! Figure-1-shaped load through the queue cluster under three
//! provisioning policies and compare cost and queueing.
//!
//! ```sh
//! cargo run --release --example autoscale_deadline
//! ```

use wb_labs::LabScale;
use wb_worker::{JobAction, JobRequest};
use webgpu::cost::{CostMeter, CostModel};
use webgpu::sim::population::LoadModel;
use webgpu::{AutoscalePolicy, ClusterBuilder};

fn vecadd_request(job_id: u64) -> JobRequest {
    let lab = wb_labs::definition("vecadd", LabScale::Small).unwrap();
    JobRequest {
        job_id,
        user: format!("student{}", job_id % 97),
        source: wb_labs::solution("vecadd").unwrap().to_string(),
        spec: lab.spec,
        datasets: lab.datasets,
        action: JobAction::RunDataset(0),
    }
}

fn replay(policy: AutoscalePolicy, label: &str) {
    // One simulated week around a deadline, hour steps; jobs per hour
    // scale with the load model (scaled down 20× for runtime).
    let model = LoadModel::default();
    let series = model.hourly_series(1);
    let week2 = &series[7 * 24..14 * 24]; // the busiest week
    let cluster = ClusterBuilder::new(minicuda::DeviceConfig::test_small())
        .fleet(2)
        .policy(policy)
        .build_v2();
    let mut meter = CostMeter::new(CostModel::default());
    let mut job_id = 0u64;
    let mut total_wait_samples = 0f64;
    for (h, &active) in week2.iter().enumerate() {
        let now = h as u64 * 3_600_000;
        let jobs = (active as usize).div_ceil(20);
        for _ in 0..jobs {
            job_id += 1;
            cluster.enqueue(vecadd_request(job_id), now);
        }
        // Drain this hour's queue.
        let mut rounds = 0;
        while cluster.queue_depth(now + rounds) > 0 && rounds < 500 {
            cluster.pump(now + rounds);
            rounds += 1;
        }
        total_wait_samples += rounds as f64;
        let fleet = cluster.fleet_size();
        let busy = if jobs == 0 {
            0.0
        } else {
            (jobs as f64 / fleet as f64).min(1.0)
        };
        meter.record_hour(fleet, busy);
    }
    let report = meter.finish();
    println!(
        "{label:<22} jobs={job_id:>5} gpu-hours={:>7.0} peak-fleet={:>2} cost=${:>7.2} util={:>5.1}% mean-drain-rounds={:>5.1}",
        report.gpu_hours,
        report.peak_fleet,
        report.dollars,
        100.0 * report.utilization(),
        total_wait_samples / week2.len() as f64,
    );
}

fn main() {
    println!("=== One deadline week under three provisioning policies ===");
    replay(AutoscalePolicy::Static(8), "static (peak-sized)");
    replay(
        AutoscalePolicy::Reactive {
            jobs_per_worker: 2,
            min: 1,
            max: 8,
        },
        "reactive",
    );
    // Deadline Thursday of the replayed week: day 4, end of day.
    let deadline_ms = 5 * 24 * 3_600_000u64;
    replay(
        AutoscalePolicy::Scheduled {
            jobs_per_worker: 2,
            min: 1,
            max: 8,
            deadlines_ms: vec![deadline_ms],
            window_ms: 24 * 3_600_000,
            floor: 6,
        },
        "scheduled (paper-style)",
    );
    println!("\nThe static fleet pays for idle GPUs all week; the scaled");
    println!("policies follow the Wednesday rush — the shape of §II-C.");
}
