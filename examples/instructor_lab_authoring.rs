//! Instructor workflow (§IV-E): author a brand-new lab from scratch —
//! markdown description, skeleton, generated datasets, rubric, and
//! sandbox policy — deploy it, and validate it with a reference
//! solution, exactly the loop a TA runs before a lab goes live.
//!
//! ```sh
//! cargo run --example instructor_lab_authoring
//! ```

use libwb::{gen, CheckPolicy, Dataset};
use wb_sandbox::{Blacklist, ResourceLimits, SyscallWhitelist};
use wb_server::{DeviceKind, LabDefinition, Rubric, SubmitRequest, WbError, WebGpuServer};
use wb_worker::{DatasetCase, LabSpec};
use webgpu::ClusterBuilder;

/// The new lab: SAXPY (`y = a*x + y`).
fn author_saxpy() -> LabDefinition {
    // 1. Datasets: generate inputs and golden outputs.
    let mut datasets = Vec::new();
    for (k, n) in [33usize, 500].into_iter().enumerate() {
        let a = 2.5f32;
        let x = gen::random_vector(n, 900 + k as u64);
        let y = gen::random_vector(n, 910 + k as u64);
        let expected: Vec<f32> = x.iter().zip(&y).map(|(xi, yi)| a * xi + yi).collect();
        datasets.push(DatasetCase {
            name: format!("d{k}"),
            inputs: vec![Dataset::Scalar(a), Dataset::Vector(x), Dataset::Vector(y)],
            expected: Dataset::Vector(expected),
        });
    }

    // 2. Configuration: sandbox, limits, grading.
    LabDefinition {
        id: "saxpy".to_string(),
        title: "SAXPY".to_string(),
        description_md: "# SAXPY\n\nCompute `y = a * x + y` on the GPU.\n\n- `a` arrives via `wbImportScalar(0)`\n- vectors via `wbImportVector(1, &n)` and `wbImportVector(2, &n)`\n".to_string(),
        skeleton: "// SAXPY\n__global__ void saxpy(float a, float* x, float* y, int n) {\n    // TODO\n}\n\nint main() {\n    return 0;\n}\n".to_string(),
        datasets,
        questions: vec!["What is the arithmetic intensity of SAXPY?".to_string()],
        spec: LabSpec {
            lab_id: "saxpy".to_string(),
            course: "hpp".to_string(),
            dialect: minicuda::Dialect::Cuda,
            blacklist: Blacklist::standard(),
            whitelist: SyscallWhitelist::cuda_default(),
            limits: ResourceLimits::default(),
            check: CheckPolicy::default(),
            tags: Default::default(),
            toolchain: "cuda".to_string(),
            opt_level: minicuda::OptLevel::default(),
            analysis: minicuda::AnalysisPolicy::default(),
        },
        rubric: Rubric {
            compile_points: 10.0,
            dataset_points: 80.0,
            question_points: 10.0,
            keyword_points: vec![],
        },
        deadline_ms: 7 * 24 * 3600 * 1000,
    }
}

const REFERENCE: &str = r#"
__global__ void saxpy(float a, float* x, float* y, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) { y[i] = a * x[i] + y[i]; }
}

int main() {
    int n;
    float a = wbImportScalar(0);
    float* hostX = wbImportVector(1, &n);
    float* hostY = wbImportVector(2, &n);

    float* dX; float* dY;
    cudaMalloc(&dX, n * sizeof(float));
    cudaMalloc(&dY, n * sizeof(float));
    cudaMemcpy(dX, hostX, n * sizeof(float), cudaMemcpyHostToDevice);
    cudaMemcpy(dY, hostY, n * sizeof(float), cudaMemcpyHostToDevice);

    saxpy<<<(n + 127) / 128, 128>>>(a, dX, dY, n);

    cudaMemcpy(hostY, dY, n * sizeof(float), cudaMemcpyDeviceToHost);
    wbSolution(hostY, n);
    return 0;
}
"#;

fn main() {
    let cluster = ClusterBuilder::new(minicuda::DeviceConfig::default())
        .fleet(1)
        .build_v1();
    let srv = WebGpuServer::new(Box::new(cluster));
    srv.register_instructor("ta", "pw").unwrap();
    let ta = srv.login("ta", "pw", DeviceKind::Desktop, 0).unwrap();

    // Author and deploy.
    let lab = author_saxpy();
    println!(
        "authored lab `{}` with {} datasets",
        lab.id,
        lab.datasets.len()
    );
    srv.deploy_lab(ta, lab).unwrap();
    println!("deployed labs: {:?}", srv.lab_ids());

    // Validate with the reference solution before opening to students
    // (the TA submits as a scratch account).
    srv.register_student("ta-scratch", "pw").unwrap();
    let scratch = srv
        .login("ta-scratch", "pw", DeviceKind::Desktop, 1)
        .unwrap();
    srv.save_code(scratch, "saxpy", REFERENCE, 1_000).unwrap();
    let sub = srv
        .submit(&SubmitRequest::full_grade(scratch, "saxpy").at(2_000))
        .unwrap();
    println!(
        "reference run: compiled={} datasets {}/{} score={:.1}",
        sub.compiled,
        sub.passed,
        sub.total,
        sub.score.unwrap_or(0.0)
    );
    assert_eq!(sub.passed, sub.total, "reference must be perfect");

    // And prove the sandbox config bites: a hostile submission dies.
    srv.save_code(scratch, "saxpy", "int main() { asm(\"x\"); }", 40_000)
        .unwrap();
    let err = srv
        .submit(&SubmitRequest::compile_only(scratch, "saxpy").at(41_000))
        .unwrap_err();
    let WbError::CompileError { report } = &err else {
        panic!("blacklisted source must be a typed compile error, got {err:?}");
    };
    println!(
        "hostile submission rejected: {:?}",
        report.lines().next().unwrap_or("")
    );
    println!("lab `saxpy` is ready for students.");
}
