//! Simulate a full MOOC offering: the Heterogeneous Parallel
//! Programming course with a (scaled-down) cohort on the v1 cluster —
//! the completion funnel of Table I and the per-lab pass rates the
//! teaching staff watched.
//!
//! ```sh
//! cargo run --release --example mooc_semester
//! ```

use webgpu::sim::population::{simulate_cohort, CohortParams};
use webgpu::{course, CourseRun};

fn main() {
    // Part 1: the Table I funnel at full enrollment (pure population
    // model — no per-job execution needed at 36k students).
    println!("=== Completion funnel (Table I model) ===");
    println!(
        "{:<6} {:>10} {:>9} {:>12} {:>11} {:>12}",
        "Year", "Registered", "Started", "Completions", "Rate", "Certificates"
    );
    for (params, seed) in [
        (CohortParams::year_2013(), 13),
        (CohortParams::year_2014(), 14),
        (CohortParams::year_2015(), 15),
    ] {
        let s = simulate_cohort(&params, seed);
        println!(
            "{:<6} {:>10} {:>9} {:>12} {:>10.2}% {:>12}",
            s.year,
            s.registered,
            s.started,
            s.completions,
            100.0 * s.completion_rate(),
            if s.certificates == 0 {
                "-".to_string()
            } else {
                s.certificates.to_string()
            }
        );
    }

    // Part 2: a scaled-down cohort actually running every HPP lab
    // through the platform (real compilation, execution, grading).
    println!("\n=== HPP course run (20 students, v1 cluster, 4 GPUs) ===");
    let cfg = CourseRun {
        course_id: "hpp".to_string(),
        students: 20,
        weekly_continue: 0.82,
        buggy_fraction: 0.3,
        seed: 2015,
    };
    let report = course::run_course_v1(&cfg, 4);
    println!(
        "registered={} completions={} jobs={}",
        report.registered, report.completions, report.jobs
    );
    println!("weekly active: {:?}", report.weekly_active);
    println!(
        "{:<16} {:>10} {:>8} {:>11}",
        "lab", "submitters", "perfect", "mean score"
    );
    for lab in &report.labs {
        println!(
            "{:<16} {:>10} {:>8} {:>11.1}",
            lab.lab_id, lab.submitters, lab.perfect, lab.mean_score
        );
    }
}
