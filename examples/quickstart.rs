//! Quickstart: boot a WebGPU platform, deploy a lab, and walk one
//! student through edit → compile → run → submit.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use wb_labs::LabScale;
use wb_server::{DeviceKind, SubmitRequest, WebGpuServer};
use webgpu::ClusterBuilder;

fn main() {
    // A two-GPU worker pool behind the original push architecture.
    let cluster = ClusterBuilder::new(minicuda::DeviceConfig::default())
        .fleet(2)
        .build_v1();
    let srv = WebGpuServer::new(Box::new(cluster));

    // Accounts: one instructor, one student.
    srv.register_instructor("prof", "secret").unwrap();
    srv.register_student("alice", "hunter2").unwrap();
    let staff = srv.login("prof", "secret", DeviceKind::Desktop, 0).unwrap();
    let alice = srv
        .login("alice", "hunter2", DeviceKind::Desktop, 0)
        .unwrap();

    // Deploy the Vector Addition lab from the Table II catalog.
    let lab = wb_labs::definition("vecadd", LabScale::Small).unwrap();
    srv.deploy_lab(staff, lab).unwrap();

    println!("=== Lab manual (rendered from markdown) ===");
    println!("{}", srv.lab_description_html("vecadd").unwrap());

    // The student opens the editor: the skeleton appears.
    println!("=== Skeleton ===");
    println!("{}", srv.current_code(alice, "vecadd").unwrap());

    // First attempt: compile the skeleton.
    let attempt = srv
        .submit(&SubmitRequest::compile_only(alice, "vecadd").at(10_000))
        .unwrap();
    println!(
        "Skeleton compile: compiled={} trace_id={} report={}",
        attempt.compiled,
        attempt.trace_id,
        attempt.report.lines().next().unwrap_or("")
    );

    // The student writes the real solution and runs dataset 0.
    srv.save_code(
        alice,
        "vecadd",
        wb_labs::solution("vecadd").unwrap(),
        60_000,
    )
    .unwrap();
    let run = srv
        .submit(&SubmitRequest::run_dataset(alice, "vecadd", 0).at(120_000))
        .unwrap();
    println!("=== Attempt against dataset 0 ===");
    println!("{}", run.report);

    // Submit for grading.
    let sub = srv
        .submit(&SubmitRequest::full_grade(alice, "vecadd").at(600_000))
        .unwrap();
    println!(
        "Submission: compiled={} datasets {}/{} score={:.1}",
        sub.compiled,
        sub.passed,
        sub.total,
        sub.score.unwrap_or(0.0)
    );

    // The instructor checks the roster.
    let roster = srv.roster(staff, "vecadd").unwrap();
    for row in roster {
        println!(
            "roster: {} <{}> submissions={} program={:.1} total={:.1}",
            row.user, row.email, row.submissions, row.program_grade, row.total_grade
        );
    }
}
