//! Chaos campaigns end to end: a partition of the *active* broker
//! zone mid-campaign forces a failover under live load, and spot/mpi
//! worker churn must never strand capability-tagged jobs. Both
//! scenarios run the full [`webgpu::chaos`] audit — exactly-once
//! completion, span integrity, broker-book reconciliation — through
//! the same [`webgpu::FleetControl`] surface the benches use.

use std::sync::Arc;

use wb_labs::LabScale;
use wb_obs::Recorder;
use wb_worker::{JobAction, JobRequest};
use webgpu::{
    run_campaign, AutoscalePolicy, ChaosConfig, ClusterBuilder, FleetControl, WorkerDesc, Zone,
};

fn campaign_job(job_id: u64, tagged: bool) -> JobRequest {
    let lab = wb_labs::definition("vecadd", LabScale::Small).unwrap();
    let mut req = JobRequest {
        job_id,
        user: format!("u{job_id}"),
        source: wb_labs::solution("vecadd").unwrap().to_string(),
        spec: lab.spec,
        datasets: lab.datasets,
        action: JobAction::RunDataset(0),
    };
    if tagged {
        req.spec.tags.insert("mpi".into());
    }
    req
}

#[test]
fn partition_of_active_zone_mid_campaign_forces_failover() {
    // Two workers against a heavy arrival rate: a backlog is pending
    // when the active (primary) zone is cut, so the failover has jobs
    // to carry over — and to mark with `Failover` annotations.
    let obs = Arc::new(Recorder::traced());
    let cluster = ClusterBuilder::new(minicuda::DeviceConfig::test_small())
        .fleet(2)
        .policy(AutoscalePolicy::Static(2))
        .shards(1)
        .traced(Arc::clone(&obs))
        .broker_tuning(5, 50)
        .build_v2();
    let cfg = ChaosConfig {
        rounds: 16,
        ms_per_round: 50,
        arrivals_per_round: 4,
        partition_at: Some((5, Zone::Primary)),
        heal_at: Some(11),
        drain_rounds: 200,
        ..ChaosConfig::default()
    };
    let report = run_campaign(&cluster, &obs, &cfg, campaign_job);
    report.assert_clean();
    assert_eq!(report.partitions, 1);
    assert_eq!(report.heals, 1);
    assert!(
        report.failovers >= 1,
        "cutting the active zone fails the broker over: {report:?}"
    );
    assert!(
        report.failover_marked_spans >= 1,
        "jobs pending at the failover carry the span mark"
    );
    assert_eq!(report.completed, report.admitted);
    assert_eq!(report.jobs_lost(), 0);
    assert_eq!(report.dead_lettered, 0);
    assert_eq!(
        report.books_delta, 0,
        "broker books reconcile after the cycle"
    );
    assert!(cluster.describe_fleet().partitioned.is_none());
}

#[test]
fn spot_mpi_churn_does_not_strand_tagged_jobs() {
    // Only the two spot workers advertise `mpi`, and heavy preemption
    // pressure (MTTF 4 rounds) keeps killing them. Tagged jobs must
    // still complete once replacements boot — the heterogeneous-churn
    // failure mode the harness exists to catch.
    let obs = Arc::new(Recorder::traced());
    let cluster = ClusterBuilder::new(minicuda::DeviceConfig::test_small())
        .fleet(2)
        .policy(AutoscalePolicy::Static(4))
        .shards(1)
        .traced(Arc::clone(&obs))
        .broker_tuning(5, 50)
        .build_v2();
    let mpi_caps: wb_queue::CapabilitySet = ["cuda", "mpi"].into();
    for zone in Zone::ALL {
        cluster.spawn_worker(WorkerDesc::spot(zone).with_capabilities(mpi_caps.clone()));
    }
    assert_eq!(cluster.describe_fleet().total(), 4);

    let cfg = ChaosConfig {
        rounds: 20,
        ms_per_round: 50,
        arrivals_per_round: 2,
        tagged_every: 3,
        mttf_rounds_spot: 4,
        revive_after_rounds: 3,
        min_alive: 2,
        drain_rounds: 150,
        ..ChaosConfig::default()
    };
    let report = run_campaign(&cluster, &obs, &cfg, campaign_job);
    report.assert_clean();
    assert!(report.tagged_jobs > 0);
    assert_eq!(report.stranded_tagged, 0);
    assert_eq!(report.completed, report.admitted);
    assert!(
        report.kills >= 1,
        "MTTF 4 over 20 rounds preempts at least one spot worker"
    );
    assert_eq!(
        report.revives, report.kills,
        "every kill got a replacement boot"
    );
}
