//! Property-based chaos: *any* seeded kill/revive schedule — whatever
//! MTTF, revive delay, tagging cadence, and kill-stream seed proptest
//! draws — preserves exactly-once completion, strands no tagged job,
//! and reconciles the broker books. The campaigns are deliberately
//! small (a few rounds, a cheap echo kernel) so the property runs in
//! CI time; the full-size schedules live in the `churn` bench.

use proptest::prelude::*;
use std::sync::Arc;

use libwb::Dataset;
use wb_obs::Recorder;
use wb_worker::{DatasetCase, JobAction, JobRequest, LabSpec, WorkerConfig};
use webgpu::{run_campaign, ChaosConfig, ClusterBuilder, Zone};

/// A minimal job that grades clean on a healthy cluster: echo one
/// vector back. Tagged arrivals ask for `mpi`, which the whole fleet
/// advertises here — what's under test is churn bookkeeping, not
/// capability routing.
fn echo_job(job_id: u64, tagged: bool) -> JobRequest {
    let mut spec = LabSpec::cuda_test("chaos-prop");
    spec.course = "hpp".to_string();
    if tagged {
        spec.tags.insert("mpi".into());
    }
    JobRequest {
        job_id,
        user: format!("u{job_id}"),
        source: r#"
            int main() {
                int n;
                float* a = wbImportVector(0, &n);
                wbSolution(a, n);
                return 0;
            }
        "#
        .to_string(),
        spec,
        datasets: vec![DatasetCase {
            name: "d0".into(),
            inputs: vec![Dataset::Vector(vec![1.0, 2.0])],
            expected: Dataset::Vector(vec![1.0, 2.0]),
        }],
        action: JobAction::FullGrade,
    }
}

fn mpi_image() -> WorkerConfig {
    WorkerConfig {
        capabilities: ["cuda", "mpi"].into(),
        ..WorkerConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8,
        ..ProptestConfig::default()
    })]

    /// v2: however the schedule falls, every admitted job completes
    /// exactly once and no tagged job is stranded.
    #[test]
    fn any_seeded_schedule_preserves_exactly_once_on_v2(
        seed in any::<u64>(),
        rounds in 6u64..14,
        mttf in 2u64..8,
        revive_after in 1u64..4,
        tagged_every in 0u64..4,
        forced_round in 0u64..6,
    ) {
        let obs = Arc::new(Recorder::traced());
        let cluster = ClusterBuilder::new(minicuda::DeviceConfig::test_small())
            .fleet(3)
            .shards(1)
            .traced(Arc::clone(&obs))
            .broker_tuning(5, 50)
            .worker_config(mpi_image())
            .build_v2();
        let cfg = ChaosConfig {
            seed,
            rounds,
            ms_per_round: 50,
            arrivals_per_round: 2,
            tagged_every,
            mttf_rounds_on_demand: mttf,
            revive_after_rounds: revive_after,
            forced_kills: vec![(forced_round, Zone::Primary)],
            min_alive: 1,
            drain_rounds: 120,
            ..ChaosConfig::default()
        };
        let report = run_campaign(&cluster, &obs, &cfg, echo_job);
        prop_assert!(
            report.is_clean(),
            "violations under seed {seed:#x}: {:?}",
            report.violations
        );
        prop_assert_eq!(report.completed, report.admitted);
        prop_assert_eq!(report.jobs_lost(), 0);
        prop_assert_eq!(report.stranded_tagged, 0);
        prop_assert_eq!(report.dead_lettered, 0);
        prop_assert_eq!(report.books_delta, 0);
    }

    /// v1 (single-AZ, push dispatch): the same property holds — and
    /// the same seed replays to the same campaign.
    #[test]
    fn any_seeded_schedule_preserves_exactly_once_on_v1(
        seed in any::<u64>(),
        rounds in 5u64..10,
        mttf in 3u64..8,
    ) {
        let run = || {
            let obs = Arc::new(Recorder::traced());
            let cluster = ClusterBuilder::new(minicuda::DeviceConfig::test_small())
                .fleet(3)
                .shards(1)
                .traced(Arc::clone(&obs))
                .build_v1();
            let cfg = ChaosConfig {
                seed,
                rounds,
                ms_per_round: 50,
                arrivals_per_round: 1,
                mttf_rounds_on_demand: mttf,
                revive_after_rounds: 2,
                min_alive: 1,
                drain_rounds: 60,
                ..ChaosConfig::default()
            };
            run_campaign(&cluster, &obs, &cfg, echo_job)
        };
        let a = run();
        prop_assert!(a.is_clean(), "violations: {:?}", a.violations);
        prop_assert_eq!(a.completed, a.admitted);
        let b = run();
        prop_assert_eq!(a.admitted, b.admitted, "same seed, same campaign");
        prop_assert_eq!(a.kills, b.kills);
        prop_assert_eq!(a.completed, b.completed);
    }
}
