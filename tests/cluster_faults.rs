//! Fault-tolerance integration (experiment S4 in DESIGN.md):
//! worker crashes, health-check eviction, broker failover, config
//! pushes — "designed to be a fault tolerant system" (§III).
//!
//! Every fault is injected through [`webgpu::FleetControl`] — the
//! same surface the chaos harness and the autoscaler use — instead of
//! poking worker handles directly.

use wb_labs::LabScale;
use wb_worker::{JobAction, JobRequest};
use webgpu::{AutoscalePolicy, ClusterBuilder, FleetControl};

fn vecadd_request(job_id: u64) -> JobRequest {
    let lab = wb_labs::definition("vecadd", LabScale::Small).unwrap();
    JobRequest {
        job_id,
        user: "alice".into(),
        source: wb_labs::solution("vecadd").unwrap().to_string(),
        spec: lab.spec,
        datasets: lab.datasets,
        action: JobAction::RunDataset(0),
    }
}

#[test]
fn v1_survives_a_mid_course_worker_crash() {
    let c = ClusterBuilder::new(minicuda::DeviceConfig::test_small())
        .fleet(3)
        .build_v1();
    for j in 0..3 {
        assert!(c.submit(&vecadd_request(j), 0).is_ok());
    }
    // One node dies.
    let ids: Vec<u64> = c.describe_fleet().workers.iter().map(|w| w.id).collect();
    assert!(c.kill_worker(ids[1]));
    assert!(!c.kill_worker(ids[1]), "already dead");
    assert_eq!(c.describe_fleet().alive(), 2);
    // Every subsequent job still completes (retried onto live nodes).
    for j in 3..9 {
        let out = c.submit(&vecadd_request(j), 0).unwrap();
        assert!(out.datasets[0].passed());
    }
    assert!(c.dispatch_failures() > 0);
    // The health sweep eventually removes it from the pool.
    c.health_sweep(0);
    let evicted = c.health_sweep(webgpu::v1::HEALTH_TIMEOUT_MS + 1);
    assert_eq!(evicted.len(), 1);
    assert_eq!(c.pool_size(), 2);
}

#[test]
fn v1_recovered_worker_rejoins_before_eviction() {
    let c = ClusterBuilder::new(minicuda::DeviceConfig::test_small())
        .fleet(2)
        .build_v1();
    c.health_sweep(0);
    let victim = c.describe_fleet().workers[0].id;
    assert!(c.kill_worker(victim));
    // Recovers before the timeout window closes.
    assert!(c.revive_worker(victim));
    assert!(!c.revive_worker(victim), "already alive");
    assert!(c.health_sweep(webgpu::v1::HEALTH_TIMEOUT_MS / 2).is_empty());
    assert_eq!(c.pool_size(), 2);
    assert!(c.submit(&vecadd_request(1), 0).is_ok());
}

#[test]
fn v2_jobs_survive_broker_zone_failure() {
    let c = ClusterBuilder::new(minicuda::DeviceConfig::test_small())
        .fleet(2)
        .policy(AutoscalePolicy::Static(2))
        .build_v2();
    for j in 0..4 {
        c.enqueue(vecadd_request(j), 0);
    }
    // Zone failure before any work happens.
    c.broker_failover(0);
    let mut done = 0;
    for r in 0..30 {
        done += c.pump(r);
    }
    assert_eq!(done, 4, "all mirrored jobs completed after failover");
}

#[test]
fn v2_worker_crash_leaves_job_for_the_fleet() {
    // Short visibility timeout: a killed pull-worker takes any
    // delivery in hand dark with it, and the reclaim clock has to fit
    // inside the pump budget.
    let c = ClusterBuilder::new(minicuda::DeviceConfig::test_small())
        .fleet(2)
        .policy(AutoscalePolicy::Static(2))
        .broker_tuning(2, 5)
        .build_v2();
    let victim = c.describe_fleet().workers[0].id;
    assert!(c.kill_worker(victim));
    c.enqueue(vecadd_request(1), 0);
    let mut done = 0;
    for r in 0..10 {
        done += c.pump(r);
    }
    assert_eq!(done, 1, "the live worker took the job");
    assert_eq!(c.describe_fleet().alive(), 1);
}

#[test]
fn v2_config_push_retargets_the_whole_fleet() {
    let c = ClusterBuilder::new(minicuda::DeviceConfig::test_small())
        .fleet(3)
        .policy(AutoscalePolicy::Static(3))
        .build_v2();
    // An MPI-tagged job sits until a config push adds the capability.
    let lab = wb_labs::definition("mpi-stencil", LabScale::Small).unwrap();
    let req = JobRequest {
        job_id: 99,
        user: "alice".into(),
        source: wb_labs::solution("mpi-stencil").unwrap().to_string(),
        spec: lab.spec,
        datasets: lab.datasets,
        action: JobAction::RunDataset(0),
    };
    c.enqueue(req, 0);
    for r in 0..3 {
        assert_eq!(c.pump(r), 0);
    }
    c.config.update(|cfg| {
        cfg.capabilities = ["cuda", "mpi", "multi-gpu"].into();
        cfg.image = "webgpu/full".to_string();
    });
    let mut done = 0;
    for r in 3..10 {
        done += c.pump(r);
    }
    assert_eq!(done, 1);
    // Every worker restarted exactly once for the config change.
    for i in 0..3 {
        assert_eq!(c.worker(i).unwrap().restarts(), 1);
    }
    // The completed job actually passed (the MPI lab ran 2 ranks).
    let out = c.take_result(99).unwrap();
    assert!(out.datasets[0].passed(), "{:?}", out.datasets[0].error);
}

#[test]
fn v2_deadline_policy_prescales_and_drains() {
    // The paper scaled up the day before each deadline; the scheduled
    // policy automates it.
    let deadline = 1_000_000u64;
    let c = ClusterBuilder::new(minicuda::DeviceConfig::test_small())
        .fleet(1)
        .policy(AutoscalePolicy::Scheduled {
            jobs_per_worker: 2,
            min: 1,
            max: 12,
            deadlines_ms: vec![deadline],
            window_ms: 100_000,
            floor: 6,
        })
        .build_v2();
    // Far from the deadline: the fleet idles at the minimum.
    c.pump(10);
    assert_eq!(c.fleet_size(), 1);
    // Inside the pre-deadline window the floor kicks in with no queue.
    c.pump(deadline - 50_000);
    assert_eq!(c.fleet_size(), 6, "pre-scaled the day before");
    // After the deadline the fleet drains back (cooldown = 3 rounds).
    for r in 0..6 {
        c.pump(deadline + 1_000 + r);
    }
    assert_eq!(c.fleet_size(), 1);
}
