//! Concurrency stress: the v2 fleet pumped from several scheduler
//! threads at once, with a mixed-tag job load. Every job must complete
//! exactly once, every completion must carry a latency sample, and the
//! broker's books must reconcile — the invariants the concurrent pump
//! rewrite is required to preserve.

use std::sync::atomic::{AtomicU64, Ordering};

use wb_labs::LabScale;
use wb_worker::{JobAction, JobRequest};
use webgpu::{AutoscalePolicy, ClusterBuilder};

const FLEET: usize = 8;
const JOBS: u64 = 100;
const PUMP_THREADS: usize = 4;

fn vecadd_request(job_id: u64) -> JobRequest {
    let lab = wb_labs::definition("vecadd", LabScale::Small).unwrap();
    JobRequest {
        job_id,
        user: "stress".into(),
        source: wb_labs::solution("vecadd").unwrap().to_string(),
        spec: lab.spec,
        datasets: lab.datasets,
        action: JobAction::RunDataset(0),
    }
}

#[test]
fn concurrent_pump_completes_every_job_exactly_once() {
    let c = ClusterBuilder::new(minicuda::DeviceConfig::test_small())
        .fleet(FLEET)
        .policy(AutoscalePolicy::Static(FLEET))
        .build_v2();
    // The whole fleet advertises mpi, so tagged jobs route like any
    // other — what's stressed here is the bookkeeping, not routing.
    c.config.update(|cfg| {
        cfg.capabilities.insert("mpi".into());
    });
    for j in 0..JOBS {
        let mut req = vecadd_request(j);
        if j % 5 == 0 {
            req.spec.tags.insert("mpi".into());
        }
        c.enqueue(req, 0);
    }

    // Four scheduler threads share one virtual clock and pump the same
    // fleet concurrently until everything drains.
    let clock = AtomicU64::new(0);
    crossbeam::thread::scope(|s| {
        for _ in 0..PUMP_THREADS {
            s.spawn(|_| {
                while c.completed() < JOBS {
                    let t = clock.fetch_add(1, Ordering::Relaxed);
                    assert!(t < 50_000, "fleet stopped making progress");
                    c.pump(t);
                }
            });
        }
    })
    .expect("pump thread panicked");

    // Exactly-once completion.
    assert_eq!(c.completed(), JOBS);
    let per_worker: u64 = (0..)
        .map_while(|i| c.worker(i))
        .map(|w| w.jobs_done())
        .sum();
    assert_eq!(per_worker, JOBS, "worker jobs_done sums to completed");
    let mut results = 0;
    for j in 0..JOBS {
        if c.take_result(j).is_some() {
            results += 1;
        }
    }
    assert_eq!(results, JOBS, "one result per job");

    // Every completion recorded its queueing delay (the baseline is
    // written before the broker enqueue, so no sample can be dropped).
    assert_eq!(c.wait_samples() as u64, JOBS);

    // Broker books reconcile: nothing lost, nothing run twice.
    let m = c.broker_metrics();
    assert_eq!(m.enqueued, JOBS);
    assert_eq!(m.dead_lettered, 0);
    assert_eq!(m.enqueued, m.acked + m.dead_lettered);
    assert_eq!(c.queue_depth(100_000), 0);
    assert_eq!(c.in_flight(100_000), 0);
}

#[test]
fn concurrent_pump_survives_failover_mid_load() {
    let c = ClusterBuilder::new(minicuda::DeviceConfig::test_small())
        .fleet(4)
        .policy(AutoscalePolicy::Static(4))
        .build_v2();
    for j in 0..24 {
        c.enqueue(vecadd_request(j), 0);
    }
    // Drain half, fail over, drain the rest: completed work must not
    // be re-executed, queued work must not be lost.
    let mut t = 0u64;
    while c.completed() < 12 {
        c.pump(t);
        t += 1;
        assert!(t < 10_000);
    }
    c.broker_failover(0);
    while c.completed() < 24 {
        c.pump(t);
        t += 1;
        assert!(t < 10_000);
    }
    assert_eq!(c.completed(), 24, "every job completed exactly once");
    let per_worker: u64 = (0..)
        .map_while(|i| c.worker(i))
        .map(|w| w.jobs_done())
        .sum();
    assert_eq!(per_worker, 24, "failover re-ran nothing");
}
