//! Cross-shard control-plane invariants: a multi-course load spread
//! over an explicitly multi-lane cluster (the local default is one
//! lane per host core, so these tests pin `shards(4)` to exercise the
//! sharded paths everywhere). Every admitted job must complete exactly
//! once no matter which lane released it or which worker stole it,
//! the recorder's per-course books must reconcile across shard
//! boundaries, and work-stealing must keep the whole fleet busy even
//! when every job hashes to one lane.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use wb_labs::LabScale;
use wb_obs::Recorder;
use wb_worker::{JobAction, JobRequest};
use webgpu::{shard_for_course, AutoscalePolicy, ClusterBuilder};

const SHARDS: usize = 4;
const FLEET: usize = 8;
const JOBS: u64 = 120;
const PUMP_THREADS: usize = 4;

/// Six courses: enough that every one of the four lanes is somebody's
/// home, with at least one lane shared by two courses.
const COURSES: [&str; 6] = ["hpp", "ece408", "cs100", "pmpp", "gpu101", "hpc-ta"];

fn vecadd_request(job_id: u64, course: &str) -> JobRequest {
    let lab = wb_labs::definition("vecadd", LabScale::Small).unwrap();
    let mut spec = lab.spec;
    spec.course = course.to_string();
    JobRequest {
        job_id,
        user: "xshard".into(),
        source: wb_labs::solution("vecadd").unwrap().to_string(),
        spec,
        datasets: lab.datasets,
        action: JobAction::RunDataset(0),
    }
}

#[test]
fn adversarial_course_mix_completes_exactly_once_across_shards() {
    // The hash must spread six courses over more than one lane —
    // otherwise this test silently degenerates to single-shard.
    let lanes: std::collections::BTreeSet<usize> = COURSES
        .iter()
        .map(|c| shard_for_course(c, SHARDS))
        .collect();
    assert!(lanes.len() > 1, "course mix must span lanes, got {lanes:?}");

    let obs = Arc::new(Recorder::traced());
    let c = ClusterBuilder::new(minicuda::DeviceConfig::test_small())
        .fleet(FLEET)
        .shards(SHARDS)
        .policy(AutoscalePolicy::Static(FLEET))
        .traced(Arc::clone(&obs))
        .build_v2();
    let mut per_course: HashMap<&str, u64> = HashMap::new();
    for j in 0..JOBS {
        let course = COURSES[j as usize % COURSES.len()];
        *per_course.entry(course).or_default() += 1;
        c.enqueue(vecadd_request(j, course), 0);
    }

    // Four scheduler threads share one virtual clock and pump the same
    // fleet concurrently until everything drains.
    let clock = AtomicU64::new(0);
    crossbeam::thread::scope(|s| {
        for _ in 0..PUMP_THREADS {
            s.spawn(|_| {
                while c.completed() < JOBS {
                    let t = clock.fetch_add(1, Ordering::Relaxed);
                    assert!(t < 50_000, "fleet stopped making progress");
                    c.pump(t);
                }
            });
        }
    })
    .expect("pump thread panicked");

    // Exactly-once completion, across every lane boundary.
    assert_eq!(c.completed(), JOBS);
    let per_worker: u64 = (0..)
        .map_while(|i| c.worker(i))
        .map(|w| w.jobs_done())
        .sum();
    assert_eq!(per_worker, JOBS, "worker jobs_done sums to completed");
    let mut results = 0;
    for j in 0..JOBS {
        if c.take_result(j).is_some() {
            results += 1;
        }
    }
    assert_eq!(results, JOBS, "one result per job");
    assert_eq!(c.wait_samples() as u64, JOBS, "one latency sample per job");

    // Broker books reconcile after lane-wise aggregation: nothing
    // lost in a lane, nothing run twice.
    let m = c.broker_metrics();
    assert_eq!(m.enqueued, JOBS);
    assert_eq!(m.dead_lettered, 0);
    assert_eq!(m.enqueued, m.acked + m.dead_lettered);
    assert_eq!(c.queue_depth(100_000), 0);
    assert_eq!(c.in_flight(100_000), 0);

    // Per-course fairness books survive the shard split: each course's
    // scheduler dequeues equal its admissions, whichever lane (home or
    // thief) released them.
    for (course, expected) in &per_course {
        assert_eq!(
            obs.scoped(&format!("sched/dequeued/{course}")),
            *expected,
            "course {course} dequeues reconcile across lanes"
        );
    }

    // Span integrity: every job's trace is present, closed, and
    // ordered, no matter which lane carried it.
    for j in 0..JOBS {
        let span = obs
            .span(j)
            .unwrap_or_else(|| panic!("job {j} left no span"));
        assert!(span.is_complete(), "job {j}: span must close: {span:?}");
        assert!(span.is_ordered(), "job {j}: span out of order: {span:?}");
    }
}

#[test]
fn work_stealing_keeps_the_whole_fleet_busy_on_one_hot_course() {
    // Every job hashes to one lane. Without stealing, that lane's
    // fleet-share (fleet / shards = 1 job per pump) bounds throughput
    // and 48 jobs need ~48 rounds; with stealing, the three idle lanes
    // pull from the hot one and each round still releases a full
    // fleet-wide wave.
    const HOT_JOBS: u64 = 48;
    let c = ClusterBuilder::new(minicuda::DeviceConfig::test_small())
        .fleet(4)
        .shards(SHARDS)
        .policy(AutoscalePolicy::Static(4))
        .build_v2();
    for j in 0..HOT_JOBS {
        c.enqueue(vecadd_request(j, "hpp"), 0);
    }
    let mut rounds = 0u64;
    while c.completed() < HOT_JOBS {
        c.pump(rounds);
        rounds += 1;
        assert!(
            rounds <= 20,
            "stealing keeps waves fleet-wide: 48 jobs on a 4-worker \
             fleet must finish in ~12 rounds, not {rounds}"
        );
    }
    assert_eq!(c.completed(), HOT_JOBS);
}

#[test]
fn failover_mid_load_loses_nothing_across_lanes() {
    // Half the load completes, then every lane fails over to its
    // standby zone at once: completed work must not re-run (acks
    // reached both zones of the issuing lane) and queued work must
    // survive (each lane's standby mirrors its primary).
    let c = ClusterBuilder::new(minicuda::DeviceConfig::test_small())
        .fleet(4)
        .shards(SHARDS)
        .policy(AutoscalePolicy::Static(4))
        .build_v2();
    for j in 0..24 {
        c.enqueue(vecadd_request(j, COURSES[j as usize % COURSES.len()]), 0);
    }
    let mut t = 0u64;
    while c.completed() < 12 {
        c.pump(t);
        t += 1;
        assert!(t < 10_000);
    }
    c.broker_failover(t);
    while c.completed() < 24 {
        c.pump(t);
        t += 1;
        assert!(t < 10_000);
    }
    assert_eq!(c.completed(), 24, "every job completed exactly once");
    let per_worker: u64 = (0..)
        .map_while(|i| c.worker(i))
        .map(|w| w.jobs_done())
        .sum();
    assert_eq!(per_worker, 24, "failover re-ran nothing");
    // Broker metrics are per-active-zone, so totals reset at failover;
    // what must hold lane-wise is that nothing is left behind.
    assert_eq!(c.queue_depth(100_000), 0, "no lane kept a stranded job");
    assert_eq!(c.in_flight(100_000), 0);
    assert_eq!(c.broker_metrics().dead_lettered, 0);
}
