//! End-to-end integration: a student's full journey through the
//! platform — register, open a lab, iterate on code, run datasets,
//! submit, get graded, and appear on the instructor roster — on both
//! cluster architectures.

use std::sync::Arc;
use wb_labs::LabScale;
use wb_server::{DeviceKind, JobDispatcher, SubmitRequest, WebGpuServer};
use webgpu::{AutoscalePolicy, ClusterBuilder, ClusterV2};

fn server_on(dispatcher: Box<dyn JobDispatcher>) -> (WebGpuServer, u64, u64) {
    let srv = WebGpuServer::new(dispatcher);
    srv.register_instructor("prof", "pw").unwrap();
    srv.register_student("alice", "pw").unwrap();
    let staff = srv.login("prof", "pw", DeviceKind::Desktop, 0).unwrap();
    let alice = srv.login("alice", "pw", DeviceKind::Desktop, 0).unwrap();
    let lab = wb_labs::definition("vecadd", LabScale::Small).unwrap();
    srv.deploy_lab(staff, lab).unwrap();
    (srv, staff, alice)
}

fn student_journey(srv: &WebGpuServer, staff: u64, alice: u64) {
    // 1. Read the lab manual.
    let html = srv.lab_description_html("vecadd").unwrap();
    assert!(html.contains("<h1>Vector Addition</h1>"));

    // 2. The editor opens with the skeleton.
    let code = srv.current_code(alice, "vecadd").unwrap();
    assert!(code.contains("TODO"));

    // 3. First try: the skeleton itself — compiles but fails datasets.
    let view = srv
        .submit(&SubmitRequest::compile_only(alice, "vecadd").at(10_000))
        .unwrap();
    assert!(view.compiled);

    // 4. Iterate: save the real solution, run one dataset.
    let solution = wb_labs::solution("vecadd").unwrap();
    srv.save_code(alice, "vecadd", solution, 60_000).unwrap();
    let run = srv
        .submit(&SubmitRequest::run_dataset(alice, "vecadd", 0).at(120_000))
        .unwrap();
    assert!(run.all_passed(), "{}", run.report);
    assert!(run.report.contains("correct"));

    // 5. Answer the questions and submit for grading.
    srv.answer_questions(alice, "vecadd", vec!["n flops".into(), "two reads".into()])
        .unwrap();
    let sub = srv
        .submit(&SubmitRequest::full_grade(alice, "vecadd").at(600_000))
        .unwrap();
    assert!(sub.compiled);
    assert_eq!(sub.passed, sub.total);
    let score = sub.score.expect("full grades carry a score");
    assert!((score - 90.0).abs() < 1e-9, "rubric: 10 + 80");

    // 6. History shows the revision; attempts show the runs.
    assert_eq!(srv.history(alice, "vecadd").unwrap().len(), 1);
    assert!(srv.attempts(alice, "vecadd").unwrap().len() >= 2);

    // 7. The instructor grades the questions and reads the roster.
    srv.grade_questions(staff, "alice", "vecadd", 10.0, Some("nice".into()))
        .unwrap();
    let roster = srv.roster(staff, "vecadd").unwrap();
    assert_eq!(roster.len(), 1);
    assert!((roster[0].total_grade - 100.0).abs() < 1e-9);
}

#[test]
fn full_journey_on_v1_push_cluster() {
    let cluster = ClusterBuilder::new(minicuda::DeviceConfig::test_small())
        .fleet(2)
        .build_v1();
    let (srv, staff, alice) = server_on(Box::new(cluster));
    student_journey(&srv, staff, alice);
}

#[test]
fn full_journey_on_v2_queue_cluster() {
    let cluster = Arc::new(
        ClusterBuilder::new(minicuda::DeviceConfig::test_small())
            .fleet(2)
            .policy(AutoscalePolicy::Static(2))
            .build_v2(),
    );
    struct Shim(Arc<ClusterV2>);
    impl JobDispatcher for Shim {
        fn dispatch(
            &self,
            req: wb_worker::JobRequest,
            now_ms: u64,
        ) -> Result<wb_worker::JobOutcome, wb_server::WbError> {
            self.0.dispatch(req, now_ms)
        }
    }
    let (srv, staff, alice) = server_on(Box::new(Shim(cluster)));
    student_journey(&srv, staff, alice);
}

#[test]
fn every_table2_lab_reference_solution_grades_perfectly_through_the_server() {
    // The Table II matrix, end to end: deploy all 15 labs and submit
    // each reference solution through the web tier.
    let cluster = ClusterBuilder::new(minicuda::DeviceConfig::test_small())
        .fleet(2)
        .build_v1();
    let srv = WebGpuServer::new(Box::new(cluster));
    srv.register_instructor("prof", "pw").unwrap();
    srv.register_student("ref", "pw").unwrap();
    let staff = srv.login("prof", "pw", DeviceKind::Desktop, 0).unwrap();
    let student = srv.login("ref", "pw", DeviceKind::Desktop, 0).unwrap();

    for (k, id) in wb_labs::lab_ids().into_iter().enumerate() {
        let lab = wb_labs::definition(id, LabScale::Small).unwrap();
        let max_auto = lab.rubric.compile_points
            + lab.rubric.dataset_points
            + lab
                .rubric
                .keyword_points
                .iter()
                .map(|(_, p)| p)
                .sum::<f64>();
        srv.deploy_lab(staff, lab).unwrap();
        let solution = wb_labs::solution(id).unwrap();
        // Space submissions out in time so the rate limiter is happy.
        let now = (k as u64 + 1) * 3_600_000;
        srv.save_code(student, id, solution, now).unwrap();
        let sub = srv
            .submit(&SubmitRequest::full_grade(student, id).at(now + 1_000))
            .unwrap();
        assert!(sub.compiled, "{id} must compile");
        assert_eq!(sub.passed, sub.total, "{id} must pass all datasets");
        let score = sub.score.expect("graded");
        assert!(
            (score - max_auto).abs() < 1e-9,
            "{id}: score {score} != max auto-gradable {max_auto}"
        );
    }
}

#[test]
fn mobile_login_statistic_flows_to_the_database() {
    // §II-B: ~2% of logins come from tablets/phones; the servers track
    // it end to end.
    let cluster = ClusterBuilder::new(minicuda::DeviceConfig::test_small())
        .fleet(1)
        .build_v1();
    let srv = WebGpuServer::new(Box::new(cluster));
    for i in 0..50 {
        let name = format!("u{i}");
        srv.register_student(&name, "pw").unwrap();
        let device = if i % 50 == 0 {
            DeviceKind::Phone
        } else {
            DeviceKind::Desktop
        };
        srv.login(&name, "pw", device, i).unwrap();
    }
    let frac = srv.state.mobile_login_fraction();
    assert!((frac - 0.02).abs() < 1e-9);
}

#[test]
fn full_journey_on_the_openedx_frontend() {
    // WebGPU 2.0's student path: the OpenEdx XBlock enqueues to the
    // broker; a small fleet polls; datasets round-trip the blob store.
    use wb_db::BlobStore;
    use wb_queue::Broker;
    use wb_server::EdxFrontend;
    use wb_worker::{WorkerConfig, WorkerNode};

    let broker = Arc::new(Broker::new(60_000, 3));
    let workers = (1..=2)
        .map(|id| {
            Arc::new(WorkerNode::boot(
                id,
                minicuda::DeviceConfig::test_small(),
                &WorkerConfig::default(),
            ))
        })
        .collect::<Vec<_>>();

    // The instructor uploads the lab datasets to the bucket; the
    // deployment fetches them back (what the worker-side would do).
    let store = BlobStore::new();
    let lab = wb_labs::definition("vecadd", LabScale::Small).unwrap();
    EdxFrontend::upload_datasets(&store, "vecadd", &lab.datasets);
    let fetched = EdxFrontend::fetch_datasets(&store, "vecadd").unwrap();
    assert_eq!(fetched.len(), lab.datasets.len());
    for (a, b) in fetched.iter().zip(&lab.datasets) {
        assert_eq!(a.inputs, b.inputs);
        assert_eq!(a.expected, b.expected);
    }

    let edx = EdxFrontend::new(broker, workers);
    let (srv, staff, alice) = server_on(Box::new(edx));
    student_journey(&srv, staff, alice);
}
