//! Grading-pipeline integration: rubric composition, attempt views,
//! peer review over dropout, and the instructor override path.

use wb_labs::LabScale;
use wb_server::{peer, DeviceKind, SubmitRequest, WbError, WebGpuServer};
use webgpu::ClusterBuilder;

fn server() -> (WebGpuServer, u64) {
    let cluster = ClusterBuilder::new(minicuda::DeviceConfig::test_small())
        .fleet(2)
        .build_v1();
    let srv = WebGpuServer::new(Box::new(cluster));
    srv.register_instructor("prof", "pw").unwrap();
    let staff = srv.login("prof", "pw", DeviceKind::Desktop, 0).unwrap();
    (srv, staff)
}

#[test]
fn partial_credit_tracks_passed_datasets() {
    let (srv, staff) = server();
    srv.deploy_lab(staff, wb_labs::definition("scan", LabScale::Small).unwrap())
        .unwrap();
    srv.register_student("bob", "pw").unwrap();
    let bob = srv.login("bob", "pw", DeviceKind::Desktop, 0).unwrap();

    // Bob's scan forgets the offset pass: single-block datasets pass,
    // the multi-block one fails.
    let buggy = wb_labs::solution("scan")
        .unwrap()
        .replace("addOffsets<<<blocks, BLOCK>>>(dOut, dSums, n);", "");
    srv.save_code(bob, "scan", &buggy, 1_000).unwrap();
    let sub = srv
        .submit(&SubmitRequest::full_grade(bob, "scan").at(2_000))
        .unwrap();
    assert!(sub.compiled);
    assert!(sub.passed >= 1, "single-block datasets pass");
    assert!(sub.passed < sub.total, "the long dataset fails");
    // Score is strictly between compile-only and perfect.
    let lab = wb_labs::definition("scan", LabScale::Small).unwrap();
    let per = lab.rubric.dataset_points / sub.total as f64;
    let expected = lab.rubric.compile_points + per * sub.passed as f64 + 5.0; // the __syncthreads keyword bonus still applies
    let score = sub.score.expect("graded");
    assert!((score - expected).abs() < 1e-9, "{score} vs {expected}");
}

#[test]
fn keyword_points_require_the_technique() {
    let (srv, staff) = server();
    srv.deploy_lab(
        staff,
        wb_labs::definition("tiled-matmul", LabScale::Small).unwrap(),
    )
    .unwrap();
    srv.register_student("carol", "pw").unwrap();
    let carol = srv.login("carol", "pw", DeviceKind::Desktop, 0).unwrap();

    // Submitting the *untiled* kernel to the tiled lab: correct output,
    // but no __shared__/__syncthreads keywords — and the rubric shows it.
    srv.save_code(
        carol,
        "tiled-matmul",
        wb_labs::solution("matmul").unwrap(),
        1_000,
    )
    .unwrap();
    let untiled = srv
        .submit(&SubmitRequest::full_grade(carol, "tiled-matmul").at(2_000))
        .unwrap();
    assert_eq!(untiled.passed, untiled.total, "correct, just not tiled");

    srv.save_code(
        carol,
        "tiled-matmul",
        wb_labs::solution("tiled-matmul").unwrap(),
        4_000_000,
    )
    .unwrap();
    let tiled = srv
        .submit(&SubmitRequest::full_grade(carol, "tiled-matmul").at(4_100_000))
        .unwrap();
    let (tiled_score, untiled_score) = (tiled.score.unwrap(), untiled.score.unwrap());
    assert!(
        tiled_score > untiled_score,
        "tiled {tiled_score} must out-score untiled {untiled_score}"
    );
    assert!(
        (tiled_score - untiled_score - 10.0).abs() < 1e-9,
        "both keywords"
    );
}

#[test]
fn override_beats_auto_grade_on_the_roster() {
    let (srv, staff) = server();
    srv.deploy_lab(
        staff,
        wb_labs::definition("vecadd", LabScale::Small).unwrap(),
    )
    .unwrap();
    srv.register_student("dave", "pw").unwrap();
    let dave = srv.login("dave", "pw", DeviceKind::Desktop, 0).unwrap();
    srv.save_code(dave, "vecadd", "int main( {", 1_000).unwrap();
    let sub = srv
        .submit(&SubmitRequest::full_grade(dave, "vecadd").at(2_000))
        .unwrap();
    assert!(!sub.compiled, "full grades record compile failures as 0s");
    assert_eq!(sub.score, Some(0.0));
    // The instructor decides the attempt deserves credit anyway.
    let ids = srv.state.submissions.find("by_lab", "vecadd").unwrap();
    srv.override_grade(staff, ids[0], 42.0).unwrap();
    let roster = srv.roster(staff, "vecadd").unwrap();
    assert!((roster[0].program_grade - 42.0).abs() < 1e-9);
}

#[test]
fn peer_review_starvation_scales_with_dropout() {
    // §IV-D quantified: the fraction of active students receiving a
    // completed review falls as the active fraction falls.
    let cohort: Vec<String> = (0..60).map(|i| format!("s{i}")).collect();
    let mut received = Vec::new();
    for active_n in [60usize, 30, 12, 6] {
        let st = wb_server::ServerState::new();
        peer::assign_reviews(&st, "mp3", &cohort, 3, 99);
        let active: Vec<String> = cohort[..active_n].to_vec();
        for s in &active {
            let ids = st
                .peer_reviews
                .find("by_reviewer_lab", &format!("{s}/mp3"))
                .unwrap();
            for id in ids {
                let r = st.peer_reviews.get(id).unwrap();
                peer::complete_review(&st, "mp3", s, &r.reviewee, "done");
            }
        }
        received.push(peer::received_review_fraction(&st, "mp3", &active));
    }
    assert!(
        received.windows(2).all(|w| w[0] >= w[1] - 1e-9),
        "coverage degrades with dropout: {received:?}"
    );
    assert!(received[0] > 0.9, "full cohort nearly fully covered");
    assert!(
        *received.last().unwrap() < 0.8,
        "10% activity starves reviews: {received:?}"
    );
}

#[test]
fn rate_limited_student_sees_retry_hint() {
    let (srv, staff) = server();
    srv.deploy_lab(
        staff,
        wb_labs::definition("vecadd", LabScale::Small).unwrap(),
    )
    .unwrap();
    srv.register_student("eve", "pw").unwrap();
    let eve = srv.login("eve", "pw", DeviceKind::Desktop, 0).unwrap();
    srv.save_code(eve, "vecadd", wb_labs::solution("vecadd").unwrap(), 0)
        .unwrap();
    let mut limited = None;
    for k in 0..5 {
        if let Err(e) = srv.submit(&SubmitRequest::compile_only(eve, "vecadd").at(k)) {
            limited = Some(e);
            break;
        }
    }
    let err = limited.expect("burst exhausted");
    assert!(err.to_string().contains("retry in"));
}

#[test]
fn grades_publish_to_the_coursera_gradebook() {
    use wb_server::{gradebook, CourseraGradebook};
    let (srv, staff) = server();
    srv.deploy_lab(
        staff,
        wb_labs::definition("vecadd", LabScale::Small).unwrap(),
    )
    .unwrap();
    srv.register_student("fred", "pw").unwrap();
    let fred = srv.login("fred", "pw", DeviceKind::Desktop, 0).unwrap();
    // Two submissions: a failure then the real thing.
    srv.save_code(fred, "vecadd", "int main( {", 1_000).unwrap();
    srv.submit(&SubmitRequest::full_grade(fred, "vecadd").at(2_000))
        .unwrap();
    srv.save_code(
        fred,
        "vecadd",
        wb_labs::solution("vecadd").unwrap(),
        100_000,
    )
    .unwrap();
    srv.submit(&SubmitRequest::full_grade(fred, "vecadd").at(101_000))
        .unwrap();

    let gb = CourseraGradebook::new();
    let n = srv.publish_grades(staff, "vecadd", &gb, 200_000).unwrap();
    assert_eq!(n, 2, "both submissions post");
    // Coursera keeps the best.
    assert!((gb.best("fred", "vecadd").unwrap() - 90.0).abs() < 1e-9);
    // Students cannot publish.
    assert!(srv.publish_grades(fred, "vecadd", &gb, 1).is_err());
    // CSV export for a campus LMS.
    let csv = gradebook::render_csv(&gb);
    assert!(csv.contains("fred,vecadd,90.0"));
}

#[test]
fn failing_attempts_carry_automated_hints() {
    // §VIII future work, implemented: a buggy run comes back with the
    // hint a TA would have given.
    let (srv, staff) = server();
    srv.deploy_lab(
        staff,
        wb_labs::definition("vecadd", LabScale::Small).unwrap(),
    )
    .unwrap();
    srv.register_student("gina", "pw").unwrap();
    let gina = srv.login("gina", "pw", DeviceKind::Desktop, 0).unwrap();
    let buggy = wb_labs::solution("vecadd").unwrap().replace(
        "if (i < n) { out[i] = a[i] + b[i]; }",
        "out[i] = a[i] + b[i];",
    );
    srv.save_code(gina, "vecadd", &buggy, 1_000).unwrap();
    let err = srv
        .submit(&SubmitRequest::run_dataset(gina, "vecadd", 2).at(2_000))
        .unwrap_err();
    let WbError::RuntimeError { report } = &err else {
        panic!("unguarded write faults at runtime, got {err:?}");
    };
    assert!(report.contains("Hint:"), "{report}");
    assert!(report.contains("if (i < n)"), "{report}");

    // A clean run carries no hints.
    srv.save_code(gina, "vecadd", wb_labs::solution("vecadd").unwrap(), 60_000)
        .unwrap();
    let view = srv
        .submit(&SubmitRequest::run_dataset(gina, "vecadd", 0).at(61_000))
        .unwrap();
    assert!(view.all_passed());
    assert!(!view.report.contains("Hint:"));
}
