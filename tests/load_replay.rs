//! Load-replay integration: drive the v2 cluster with real grading
//! jobs shaped by the Figure-1 load model, snapshot the dashboard,
//! and check the elasticity invariants end to end.

use wb_labs::LabScale;
use wb_worker::{JobAction, JobRequest};
use webgpu::dashboard::Snapshot;
use webgpu::sim::population::LoadModel;
use webgpu::{AutoscalePolicy, ClusterBuilder};

fn job(job_id: u64) -> JobRequest {
    let lab = wb_labs::definition("vecadd", LabScale::Small).unwrap();
    JobRequest {
        job_id,
        user: format!("s{}", job_id % 13),
        source: wb_labs::solution("vecadd").unwrap().to_string(),
        spec: lab.spec,
        datasets: lab.datasets,
        action: JobAction::RunDataset(0),
    }
}

#[test]
fn v2_cluster_tracks_a_deadline_day() {
    // Midday hours of the busiest Wednesday, scaled down 10×.
    let model = LoadModel::default();
    let series = model.hourly_series(7);
    let wednesday = 10 * 24; // day 10 is the peak Wednesday
    let cluster = ClusterBuilder::new(minicuda::DeviceConfig::test_small())
        .fleet(1)
        .policy(AutoscalePolicy::Reactive {
            jobs_per_worker: 2,
            min: 1,
            max: 6,
        })
        .build_v2();

    let mut job_id = 0u64;
    let mut fleet_sizes = Vec::new();
    for h in 8..20 {
        let active = series[wednesday + h] as usize;
        let jobs = active.div_ceil(10);
        let now = (h as u64 - 8) * 3_600_000;
        for _ in 0..jobs {
            job_id += 1;
            cluster.enqueue(job(job_id), now);
        }
        // Pump until this hour's queue drains, recording the fleet
        // high-water mark (the fleet scales back in once idle, so the
        // post-drain size would hide the rush).
        let mut round = 0;
        let mut high_water = cluster.fleet_size();
        while cluster.queue_depth(now + round) > 0 && round < 200 {
            cluster.pump(now + round);
            high_water = high_water.max(cluster.fleet_size());
            round += 1;
        }
        fleet_sizes.push(high_water);
    }

    assert_eq!(cluster.completed(), job_id, "every submission graded");
    // The fleet actually moved with the load.
    let max_fleet = *fleet_sizes.iter().max().unwrap();
    assert!(
        max_fleet > 1,
        "rush hours scaled the fleet out: {fleet_sizes:?}"
    );

    // The dashboard agrees with the cluster.
    let snap = Snapshot::capture(&cluster, 12 * 3_600_000);
    assert_eq!(snap.completed, job_id);
    assert_eq!(snap.queue_depth, 0);
    assert_eq!(snap.broker.acked, job_id);
    let text = snap.render();
    assert!(text.contains("jobs completed"));
    assert!(!text.contains("DOWN"));
}

#[test]
fn dashboard_detects_a_quiet_crash() {
    // A worker that crashes between deadlines shows up on the
    // dashboard before any student notices.
    let cluster = ClusterBuilder::new(minicuda::DeviceConfig::test_small())
        .fleet(3)
        .policy(AutoscalePolicy::Static(3))
        .build_v2();
    cluster.worker(2).unwrap().crash();
    let snap = Snapshot::capture(&cluster, 0);
    let down: Vec<u64> = snap
        .workers
        .iter()
        .filter(|w| !w.alive)
        .map(|w| w.id)
        .collect();
    assert_eq!(down.len(), 1);
    assert!(snap.render().contains("DOWN"));
}
