//! Deadline-rush integration: the Wednesday surge replayed through a
//! traced cluster with a tight admission budget. Every admitted job
//! must complete exactly once with a complete, ordered span; overflow
//! must brown out (full-grade downgraded to compile-only, annotated)
//! and then shed (`WbError::Overloaded` with a finite retry hint,
//! annotated) — and the recorder's books must agree with what the
//! harness saw at the submission boundary.

use std::collections::BTreeMap;
use std::sync::Arc;

use wb_obs::{Annotation, Recorder};
use wb_server::WbError;
use webgpu::{ClusterBuilder, Platform, RushScenario, SchedConfig};

const FLEET: usize = 2;
const ROUNDS: usize = 4;
const SURGE: usize = 8;
const BUDGET: usize = 4;

fn rush_cluster(obs: Arc<Recorder>) -> impl Platform {
    ClusterBuilder::new(minicuda::DeviceConfig::test_small())
        .fleet(FLEET)
        .scheduler(SchedConfig {
            backlog_budget: BUDGET,
            ..SchedConfig::default()
        })
        .traced(obs)
        .build_v2()
}

#[test]
fn every_admitted_rush_job_completes_exactly_once_with_an_annotated_span() {
    let obs = Arc::new(Recorder::traced());
    let c = rush_cluster(Arc::clone(&obs));
    let scenario = RushScenario::wednesday(ROUNDS, SURGE);

    // admitted job id -> course; shed job ids with their retry hints.
    let mut admitted: BTreeMap<u64, String> = BTreeMap::new();
    let mut shed: Vec<u64> = Vec::new();
    let mut tick = 0u64;
    for round in 0..scenario.rounds {
        for req in scenario.arrivals(round) {
            let id = req.job_id;
            let course = req.spec.course.clone();
            match c.submit_job(req, tick) {
                Ok(_) => {
                    admitted.insert(id, course);
                }
                Err(WbError::Overloaded { retry_after_s }) => {
                    assert!(
                        retry_after_s.is_finite() && retry_after_s > 0.0,
                        "job {id}: shed without a usable retry hint ({retry_after_s})"
                    );
                    shed.push(id);
                }
                Err(e) => panic!("job {id}: unexpected submit error {e}"),
            }
        }
        tick += 1;
        c.pump(tick);
    }
    while c.completed() < admitted.len() as u64 {
        tick += 1;
        c.pump(tick);
        assert!(tick < 10_000, "admitted jobs stopped completing");
    }

    // The surge actually tripped both bands.
    assert!(
        !shed.is_empty(),
        "an 8x surge into budget {BUDGET} must shed"
    );
    let snap = c.metrics_snapshot();
    assert!(
        snap.counter("sched_brown_outs") > 0,
        "the band never browned out"
    );

    // Exactly-once completion, with a complete ordered span per job.
    let mut brown_spans = 0u64;
    for (&id, course) in &admitted {
        let out = c
            .take_result(id)
            .unwrap_or_else(|| panic!("admitted job {id} ({course}) has no outcome"));
        assert!(out.compiled(), "job {id}: reference solutions compile");
        assert!(c.take_result(id).is_none(), "job {id} completed twice");
        let span = obs
            .span(id)
            .unwrap_or_else(|| panic!("job {id} left no span"));
        assert!(span.is_complete(), "job {id}: span must close: {span:?}");
        assert!(span.is_ordered(), "job {id}: span out of order: {span:?}");
        assert_eq!(
            span.phases
                .iter()
                .filter(|(p, _, _)| p.is_terminal())
                .count(),
            1,
            "job {id}: exactly one terminal phase"
        );
        if span.has(Annotation::BrownOut) {
            brown_spans += 1;
        }
        assert!(!span.has(Annotation::Shed), "admitted job {id} marked shed");
    }
    assert_eq!(c.completed(), admitted.len() as u64);

    // Shed jobs never ran, and each carries the shed mark on its span.
    for &id in &shed {
        assert!(
            c.take_result(id).is_none(),
            "shed job {id} produced a result"
        );
        let span = obs
            .span(id)
            .unwrap_or_else(|| panic!("shed job {id} left no span"));
        assert!(
            span.has(Annotation::Shed),
            "job {id}: shed unannotated: {span:?}"
        );
    }

    // The recorder's books agree with the submission boundary.
    assert_eq!(snap.counter("sched_admitted"), admitted.len() as u64);
    assert_eq!(snap.counter("sched_shed"), shed.len() as u64);
    assert_eq!(snap.counter("sched_brown_outs"), brown_spans);
    assert_eq!(snap.counter("sched_dequeues"), admitted.len() as u64);

    // Fair share reached every course: each one's scoped dequeue tally
    // covers everything it got admitted.
    let mut per_course: BTreeMap<&str, u64> = BTreeMap::new();
    for course in admitted.values() {
        *per_course.entry(course.as_str()).or_insert(0) += 1;
    }
    for (course, n) in per_course {
        assert_eq!(
            obs.scoped(&format!("sched/dequeued/{course}")),
            n,
            "course {course}: dequeues drifted from admissions"
        );
    }
}
