//! Security integration (experiment S5): the two-layer sandbox under
//! adversarial submissions, end to end through the worker pipeline.

use minicuda::DeviceConfig;
use wb_labs::LabScale;
use wb_sandbox::{Blacklist, ScanMode};
use wb_worker::{execute_job, JobAction, JobRequest};

fn request_with(source: &str) -> JobRequest {
    let lab = wb_labs::definition("vecadd", LabScale::Small).unwrap();
    JobRequest {
        job_id: 1,
        user: "mallory".into(),
        source: source.to_string(),
        spec: lab.spec,
        datasets: lab.datasets,
        action: JobAction::FullGrade,
    }
}

#[test]
fn inline_asm_rejected_at_compile_time() {
    let out = execute_job(
        &request_with("int main() { asm(\"syscall\"); return 0; }"),
        &DeviceConfig::test_small(),
        0,
        0,
    );
    let err = out.compile_error.expect("blacklist fires");
    assert!(err.contains("asm"));
    assert!(out.datasets.is_empty(), "nothing executed");
}

#[test]
fn blacklist_fires_even_inside_comments() {
    // The paper documents this false positive as an accepted trade-off.
    let out = execute_job(
        &request_with("// I promise not to use asm\nint main() { return 0; }"),
        &DeviceConfig::test_small(),
        0,
        0,
    );
    assert!(out.compile_error.is_some());
}

#[test]
fn preprocessed_scan_mode_is_the_documented_alternative() {
    let raw = Blacklist::standard();
    let pre = Blacklist::standard().with_mode(ScanMode::Preprocessed);
    let commented = "// asm in a comment only\nint main() { return 0; }";
    let real = "int main() { asm(\"x\"); return 0; }";
    assert!(!raw.permits(commented), "raw scan: false positive");
    assert!(
        pre.permits(commented),
        "preprocessed scan: no false positive"
    );
    assert!(
        !raw.permits(real) && !pre.permits(real),
        "both catch real use"
    );
}

#[test]
fn non_whitelisted_call_killed_at_runtime() {
    // MPI calls are not in the vecadd lab's whitelist: seccomp-style
    // kill with a security diagnostic, reported per dataset.
    let source = r#"
        int main() {
            int r = wbMPI_rank();
            return 0;
        }
    "#;
    let out = execute_job(&request_with(source), &DeviceConfig::test_small(), 0, 0);
    assert!(out.compiled(), "compiles fine — dies at runtime");
    for d in &out.datasets {
        let err = d.error.as_ref().expect("killed");
        assert_eq!(err.phase, minicuda::Phase::Security);
    }
}

#[test]
fn runaway_kernel_hits_the_time_limit() {
    let source = r#"
        __global__ void spin() { int x = 0; while (1) { x = x + 1; } }
        int main() { spin<<<4, 64>>>(); return 0; }
    "#;
    let mut req = request_with(source);
    req.spec.limits = wb_sandbox::ResourceLimits::strict();
    let out = execute_job(&req, &DeviceConfig::test_small(), 0, 0);
    assert!(out.compiled());
    for d in &out.datasets {
        assert_eq!(
            d.error.as_ref().expect("timed out").phase,
            minicuda::Phase::Limit
        );
    }
}

#[test]
fn runaway_host_loop_hits_the_time_limit() {
    let source = "int main() { while (1) { int x = 0; } return 0; }";
    let mut req = request_with(source);
    req.spec.limits = wb_sandbox::ResourceLimits::strict();
    let out = execute_job(&req, &DeviceConfig::test_small(), 0, 0);
    for d in &out.datasets {
        assert_eq!(d.error.as_ref().unwrap().phase, minicuda::Phase::Limit);
    }
}

#[test]
fn memory_bomb_hits_the_device_memory_cap() {
    let source = r#"
        int main() {
            float* p;
            while (1) { cudaMalloc(&p, 1024 * 1024 * 1024); }
            return 0;
        }
    "#;
    let out = execute_job(&request_with(source), &DeviceConfig::test_small(), 0, 0);
    for d in &out.datasets {
        let err = d.error.as_ref().expect("must fail");
        assert!(
            err.message.contains("out of device memory"),
            "unexpected: {err}"
        );
    }
}

#[test]
fn oversized_source_rejected_before_any_work() {
    let huge = format!("int main() {{ return 0; }} // {}", "x".repeat(400 * 1024));
    let out = execute_job(&request_with(&huge), &DeviceConfig::test_small(), 0, 0);
    assert!(out.compile_error.expect("size gate").contains("at most"));
}

#[test]
fn log_flood_is_truncated_not_fatal() {
    let source = r#"
        int main() {
            for (int i = 0; i < 100000; i++) {
                wbLog(TRACE, "spam spam spam spam spam spam", i);
            }
            int n;
            float* a = wbImportVector(0, &n);
            wbSolution(a, n);
            return 0;
        }
    "#;
    // Use the echo-style identity so the solution still matches d0's
    // inputs (vecadd expects a sum, so run dataset comparison will
    // fail, but the run itself must complete with a truncated log).
    let mut req = request_with(source);
    req.action = JobAction::RunDataset(0);
    let out = execute_job(&req, &DeviceConfig::test_small(), 0, 0);
    let d = &out.datasets[0];
    assert!(d.error.is_none(), "{:?}", d.error);
    assert!(d.log_text.contains("truncated"));
}

#[test]
fn sandbox_escape_attempts_are_contained_to_the_job_dir() {
    use wb_sandbox::JobDir;
    let mut dir = JobDir::create(77, 1024);
    assert!(dir.write("/etc/cron.d/backdoor", b"evil").is_err());
    assert!(dir.write("../../job-76/solution.cu", b"steal").is_err());
    assert!(dir.read("/proc/self/environ").is_err());
    // Normal use still works and the owner is unprivileged.
    dir.write("solution.cu", b"int main(){}").unwrap();
    assert_ne!(dir.uid(), 0);
}

#[test]
fn worker_isolation_keeps_database_out_of_reach() {
    // §III-D: "a user able to thwart our security measures would be
    // confined to the worker node and cannot access critical data
    // found on the database." Structurally: the JobRequest/JobOutcome
    // envelope is the worker's entire interface — it contains no
    // database handles. This test asserts the boundary by running a
    // hostile job and checking the server state afterwards.
    use wb_server::{DeviceKind, SubmitRequest, WebGpuServer};
    use webgpu::ClusterBuilder;
    let cluster = ClusterBuilder::new(DeviceConfig::test_small()).build_v1();
    let srv = WebGpuServer::new(Box::new(cluster));
    srv.register_instructor("prof", "pw").unwrap();
    let staff = srv.login("prof", "pw", DeviceKind::Desktop, 0).unwrap();
    srv.deploy_lab(
        staff,
        wb_labs::definition("vecadd", LabScale::Small).unwrap(),
    )
    .unwrap();
    srv.register_student("mallory", "pw").unwrap();
    let m = srv.login("mallory", "pw", DeviceKind::Desktop, 0).unwrap();
    let users_before = srv.state.users.len();
    srv.save_code(
        m,
        "vecadd",
        "int main() { while (1) { int x = 0; } return 0; }",
        0,
    )
    .unwrap();
    let _ = srv.submit(&SubmitRequest::full_grade(m, "vecadd").at(1_000));
    assert_eq!(srv.state.users.len(), users_before, "user table untouched");
}
