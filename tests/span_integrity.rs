//! Span integrity, end to end: every job that flows through a traced
//! v2 cluster must leave exactly one complete, causally ordered
//! lifecycle span — `Queued → Dispatched → … → Graded/Failed` — with
//! the annotations the run actually earned (cache hits on duplicate
//! sources, failover marks on jobs that lived through a zone switch).
//! This is the contract that makes the `trace_id` on a
//! `SubmissionOutcome` trustworthy.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use wb_labs::LabScale;
use wb_obs::{Annotation, JobPhase, Recorder};
use wb_worker::{JobAction, JobRequest};
use webgpu::{AutoscalePolicy, ClusterBuilder};

const FLEET: usize = 8;
const JOBS: u64 = 96;
const PUMP_THREADS: usize = 4;

fn vecadd_request(job_id: u64, variant: u64) -> JobRequest {
    let lab = wb_labs::definition("vecadd", LabScale::Small).unwrap();
    // A trailing comment makes distinct compile keys without changing
    // behaviour; reusing a variant makes byte-identical duplicates the
    // cluster-wide cache will serve.
    let source = format!(
        "{}\n// variant {variant}\n",
        wb_labs::solution("vecadd").unwrap()
    );
    JobRequest {
        job_id,
        user: "tracer".into(),
        source,
        spec: lab.spec,
        datasets: lab.datasets,
        action: JobAction::RunDataset(0),
    }
}

#[test]
fn every_job_leaves_one_complete_ordered_span() {
    let obs = Arc::new(Recorder::traced());
    let c = ClusterBuilder::new(minicuda::DeviceConfig::test_small())
        .fleet(FLEET)
        .policy(AutoscalePolicy::Static(FLEET))
        .traced(Arc::clone(&obs))
        .build_v2();
    c.config.update(|cfg| {
        cfg.capabilities.insert("mpi".into());
    });
    // 16 source variants over 96 jobs: most jobs are duplicates and
    // must be served by the cache (and say so in their spans).
    for j in 0..JOBS {
        let mut req = vecadd_request(j, j % 16);
        if j % 5 == 0 {
            req.spec.tags.insert("mpi".into());
        }
        c.enqueue(req, j);
    }

    let clock = AtomicU64::new(1_000);
    crossbeam::thread::scope(|s| {
        for _ in 0..PUMP_THREADS {
            s.spawn(|_| {
                while c.completed() < JOBS {
                    let t = clock.fetch_add(1, Ordering::Relaxed);
                    assert!(t < 50_000, "fleet stopped making progress");
                    c.pump(t);
                }
            });
        }
    })
    .expect("pump thread panicked");
    assert_eq!(c.completed(), JOBS);

    let mut cache_served = 0u64;
    let mut cache_annotations = 0u64;
    for j in 0..JOBS {
        let span = c.span(j).unwrap_or_else(|| panic!("job {j} has a span"));
        assert!(
            span.is_complete(),
            "job {j}: span must open Queued and end in one terminal: {span:?}"
        );
        assert!(
            span.is_ordered(),
            "job {j}: phases must advance in causal order: {span:?}"
        );
        assert_eq!(
            span.terminal(),
            Some(JobPhase::Graded),
            "job {j}: a passing run terminates Graded"
        );
        assert_eq!(
            span.phases
                .iter()
                .filter(|(p, _, _)| p.is_terminal())
                .count(),
            1,
            "job {j}: exactly one terminal phase"
        );
        if span.has(Annotation::CacheHit) || span.has(Annotation::Coalesced) {
            cache_served += 1;
        }
        cache_annotations += span
            .annotations
            .iter()
            .filter(|(a, _, _)| matches!(a, Annotation::CacheHit | Annotation::Coalesced))
            .count() as u64;
    }
    // 96 jobs over 16 variants: at least 80 lookups were satisfied
    // without fresh work, and each one is annotated on its span.
    assert!(
        cache_served >= JOBS - 16,
        "expected >= {} cache-served spans, saw {cache_served}",
        JOBS - 16
    );

    // The aggregate books agree with the spans.
    let snap = c.metrics_snapshot();
    assert!(snap.enabled);
    assert_eq!(snap.counter("jobs_queued"), JOBS);
    assert_eq!(snap.counter("jobs_completed"), JOBS);
    assert_eq!(snap.counter("jobs_failed"), 0);
    assert_eq!(snap.queue_wait_rounds.count, JOBS);
    // The compile timer wraps the cache lookup, so every job times it;
    // the hit/coalesced counters agree with the per-span annotations.
    assert_eq!(snap.compile_micros.count, JOBS);
    // Each compile/grade lookup served from the cache is one
    // annotation; the aggregate counters agree with the spans.
    assert_eq!(
        snap.counter("cache_hits") + snap.counter("cache_coalesced"),
        cache_annotations
    );
}

#[test]
fn failover_and_cache_annotations_land_on_the_right_spans() {
    let obs = Arc::new(Recorder::traced());
    let c = ClusterBuilder::new(minicuda::DeviceConfig::test_small())
        .fleet(2)
        .policy(AutoscalePolicy::Static(2))
        .traced(Arc::clone(&obs))
        .build_v2();
    for j in 0..12 {
        c.enqueue(vecadd_request(j, j), 0);
    }
    // Drain half, fail the zone over, drain the rest.
    let mut t = 0u64;
    while c.completed() < 6 {
        c.pump(t);
        t += 1;
        assert!(t < 10_000);
    }
    c.broker_failover(t);
    let still_queued: Vec<u64> = (0..12)
        .filter(|&j| c.span(j).is_some_and(|s| s.terminal().is_none()))
        .collect();
    while c.completed() < 12 {
        c.pump(t);
        t += 1;
        assert!(t < 10_000);
    }

    let survivors: u64 = (0..12)
        .filter(|&j| c.span(j).is_some_and(|s| s.has(Annotation::Failover)))
        .count() as u64;
    assert!(
        survivors >= 1,
        "jobs pending at the failover carry the mark (queued then: {still_queued:?})"
    );
    for j in 0..12 {
        let span = c.span(j).unwrap();
        assert!(span.is_complete() && span.is_ordered(), "job {j}: {span:?}");
        // Completed-before-failover jobs must NOT be marked.
        if !span.has(Annotation::Failover) {
            continue;
        }
        assert_eq!(
            span.terminal(),
            Some(JobPhase::Graded),
            "job {j} survived the failover and still graded"
        );
    }
    assert_eq!(c.metrics_snapshot().counter("failovers"), survivors);
}
